#!/usr/bin/env python
"""Large-scale grid deployment on the Grid'5000 model.

A miniature of the paper's Sec. 5.4: first measure the platform with the
NetPIPE probe (intra- vs inter-cluster), then run BT class B across several
sites under Pcl with site-local checkpoint servers, and show why Vcl cannot
be launched at this scale at all (the dispatcher's select() wall).

Run:  python examples/grid_deployment.py
"""

from repro.apps import BT
from repro.harness import execute, get_profile
from repro.net import grid5000
from repro.net.topology import Endpoint
from repro.runtime import Dispatcher, ScaleLimitError
from repro.sim import Simulator
from repro.tools import run_netpipe, summarize


def main() -> None:
    profile = get_profile("quick")

    # --- 1. platform measurement ------------------------------------------
    sim = Simulator(seed=1)
    grid = grid5000(sim)
    orsay = grid.clusters["orsay"].nodes
    rennes = grid.clusters["rennes"].nodes
    intra = summarize(run_netpipe(sim, grid, Endpoint(orsay[0], 0),
                                  Endpoint(orsay[1], 0), sizes=[8, 1 << 20]))
    inter = summarize(run_netpipe(sim, grid, Endpoint(orsay[2], 0),
                                  Endpoint(rennes[0], 0), sizes=[8, 1 << 20]))
    print("NetPIPE on the Grid'5000 model:")
    print(f"  intra-cluster: {intra['latency'] * 1e6:7.1f} us latency, "
          f"{intra['bandwidth'] / 1e6:6.1f} MB/s")
    print(f"  inter-cluster: {inter['latency'] * 1e6:7.1f} us latency, "
          f"{inter['bandwidth'] / 1e6:6.1f} MB/s")
    print(f"  ratios: {inter['latency'] / intra['latency']:.0f}x latency, "
          f"{intra['bandwidth'] / inter['bandwidth']:.0f}x bandwidth "
          "(paper: ~100x and ~20x)\n")

    # --- 2. why the grid runs are Pcl-only --------------------------------
    n_procs = 144
    try:
        Dispatcher().validate(400)
    except ScaleLimitError as error:
        print(f"Vcl at 400 processes: REFUSED - {error}\n")

    # --- 3. the Pcl grid run ----------------------------------------------
    bench = BT(klass="B", scale=profile.time_scale)
    base = execute(bench, n_procs, None, profile, network="grid5000",
                   n_servers=4, name="grid-base")
    ckpt = execute(bench, n_procs, "pcl", profile, network="grid5000",
                   n_servers=4, period=60.0, name="grid-ckpt")
    print(f"BT.B at {n_procs} processes across Grid'5000 sites:")
    print(f"  no checkpoints : {base.completion:8.2f} s")
    print(f"  pcl @ 60s      : {ckpt.completion:8.2f} s "
          f"({ckpt.waves} waves, "
          f"+{100 * (ckpt.completion / base.completion - 1):.1f}%)")


if __name__ == "__main__":
    main()
