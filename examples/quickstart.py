#!/usr/bin/env python
"""Quickstart: run a NAS benchmark under blocking checkpointing, kill a
process mid-run, and watch the system roll back and finish.

This is the 60-second tour of the library:

1. build a simulator and a Gigabit-Ethernet cluster deployment,
2. run BT class A under the Pcl (blocking) protocol with a checkpoint
   wave every 2 simulated seconds,
3. kill rank 3's task at t=6s — its sockets close, the FTPM notices,
   every rank rolls back to the last committed wave and execution resumes,
4. print what happened.

Run:  python examples/quickstart.py
"""

from repro.apps import BT
from repro.runtime import DeploymentSpec, build_run
from repro.sim import Simulator


def main() -> None:
    sim = Simulator(seed=42)

    # BT class A, shortened to 10% of its iterations so this demo is instant.
    bench = BT(klass="A", scale=0.1)
    n_procs = 16

    spec = DeploymentSpec(
        n_procs=n_procs,
        protocol="pcl",            # blocking coordinated checkpointing
        channel="ft_sock",         # MPICH2's TCP channel with ckpt hooks
        network="gige",
        n_servers=2,               # two checkpoint servers
        period=2.0,                # seconds between checkpoint waves
        image_bytes=bench.image_bytes(n_procs) * 0.1,
    )
    run = build_run(sim, spec, bench.make_app(n_procs), name="quickstart")
    run.start()
    run.schedule_task_kill(rank=3, at=6.0)

    completion = sim.run_until_complete(run.completed, limit=1e6)

    print(f"workload           : {bench.describe(n_procs)}")
    print(f"completion time    : {completion:.2f} simulated seconds")
    print(f"checkpoint waves   : {run.stats.waves_completed}")
    print(f"failures / restarts: {run.stats.failures} / {run.stats.restarts}")
    print(f"recovery time      : {run.stats.recovery_seconds:.2f}s")
    print(f"blocked time (sum) : {run.stats.blocked_seconds:.2f}s")
    print(f"images stored      : {run.stats.image_bytes_stored / 1e6:.1f} MB")
    for ctx in run.job.contexts:
        assert ctx.state["iteration"] == bench.iterations(), "rank lost work!"
    print(f"all {n_procs} ranks completed every iteration despite the failure")


if __name__ == "__main__":
    main()
