#!/usr/bin/env python
"""Blocking vs non-blocking checkpointing on a commodity cluster.

A miniature of the paper's Sec. 5.2 study: BT class B on a Gigabit-Ethernet
cluster, sweeping the checkpoint period for both protocols and comparing
against checkpoint-free baselines of both MPI implementations.  Prints the
overhead table and the qualitative conclusions.

Run:  python examples/cluster_checkpoint_study.py [n_procs]
"""

import sys

from repro.apps import BT
from repro.harness import execute, get_profile


def main() -> None:
    n_procs = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    profile = get_profile("quick")
    bench = BT(klass="B", scale=profile.time_scale)
    periods = (10.0, 30.0, 120.0)

    print(f"workload: {bench.describe(n_procs)} on GigE, 2 ckpt servers")
    print(f"{'config':<24}{'time [s]':>10}{'waves':>7}{'overhead':>10}")
    print("-" * 51)

    baselines = {}
    for channel, label in (("ft_sock", "mpich2 (no ckpt)"),
                           ("ch_v", "mpich-v (no ckpt)")):
        result = execute(bench, n_procs, None, profile, channel=channel,
                         n_servers=2, name=f"study-base-{channel}")
        baselines[channel] = result.completion
        print(f"{label:<24}{result.completion:>10.2f}{'-':>7}{'-':>10}")

    for protocol in ("pcl", "vcl"):
        base = baselines["ft_sock" if protocol == "pcl" else "ch_v"]
        for period in periods:
            result = execute(bench, n_procs, protocol, profile, n_servers=2,
                             period=period, name=f"study-{protocol}-{period}")
            overhead = 100.0 * (result.completion - base) / base
            label = f"{protocol} @ {period:g}s"
            print(f"{label:<24}{result.completion:>10.2f}"
                  f"{result.waves:>7}{overhead:>9.1f}%")

    print()
    print("expected shape (paper Sec. 5.2): pcl degrades sharply at the")
    print("shortest period; at long periods both protocols cost only a")
    print("small constant overhead.")


if __name__ == "__main__":
    main()
