#!/usr/bin/env python
"""High-speed networks: where does non-blocking checkpointing win?

A miniature of the paper's Fig. 7: CG (latency-bound) on a Myrinet cluster,
comparing the three implementations — Pcl over ft-sock (Ethernet emulation),
Pcl over Nemesis/GM (native Myrinet) and Vcl (ch_v daemons) — and locating
the checkpoint frequency beyond which Vcl's flat wave cost beats
Pcl/Nemesis's linear one.

Run:  python examples/myrinet_crossover.py
"""

from repro.apps import CG
from repro.harness import execute, get_profile
from repro.tools import linear_fit


IMPLEMENTATIONS = (
    ("pcl-socket ", "pcl", "ft_sock"),
    ("pcl-nemesis", "pcl", "nemesis"),
    ("vcl        ", "vcl", "ch_v"),
)


def main() -> None:
    profile = get_profile("quick")
    bench = CG(klass="C", scale=profile.time_scale)
    n_procs = 16
    periods = (8.0, 20.0, 60.0)

    print(f"workload: {bench.describe(n_procs)} on Myrinet")
    fits = {}
    for label, protocol, channel in IMPLEMENTATIONS:
        base = execute(bench, n_procs, None, profile, network="myrinet",
                       channel=channel, n_servers=2, name=f"x-{channel}-base")
        xs, ys = [0.0], [base.completion]
        for period in periods:
            result = execute(bench, n_procs, protocol, profile,
                             network="myrinet", channel=channel, n_servers=2,
                             period=period, name=f"x-{channel}-{period}")
            xs.append(float(result.waves))
            ys.append(result.completion)
        fit = linear_fit(xs, ys)
        fits[label] = fit
        points = "  ".join(f"({int(x)}w, {y:.1f}s)" for x, y in zip(xs, ys))
        print(f"{label}: {points}")
        print(f"{label}: {fit.slope:+.2f} s/wave from {fit.intercept:.1f}s "
              f"(r2={fit.r2:.2f})")

    nemesis, vcl = fits["pcl-nemesis"], fits["vcl        "]
    if nemesis.slope > vcl.slope:
        crossover = (vcl.intercept - nemesis.intercept) / \
            (nemesis.slope - vcl.slope)
        print(f"\nvcl overtakes pcl-nemesis beyond ~{crossover:.1f} waves per "
              "run — i.e. only at very aggressive checkpoint frequencies,")
        print("matching the paper's 'a checkpoint wave every 15 s or less'.")


if __name__ == "__main__":
    main()
