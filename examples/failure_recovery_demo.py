#!/usr/bin/env python
"""Anatomy of a failure: a traced kill/rollback/restart timeline.

Runs a communication-heavy ring application under the *non-blocking* (Vcl)
protocol with tracing enabled, kills one task, and prints the full event
timeline: waves, local checkpoints, message logging, failure detection,
image restores and the replayed channel state.

Run:  python examples/failure_recovery_demo.py
"""

import operator

from repro.ft import CheckpointServer, FTRun, VclProtocol
from repro.mpi import ChVChannel
from repro.net import ClusterNetwork
from repro.net.topology import Endpoint
from repro.sim import Simulator, Tracer


def ring_app(ctx):
    for i in range(40):
        yield from ctx.compute(0.05)
        right = (ctx.rank + 1) % ctx.size
        request = ctx.isend(right, tag=1, data=i, nbytes=200_000)
        value = yield from ctx.recv((ctx.rank - 1) % ctx.size, tag=1)
        yield from request.wait()
        ctx.update(lambda s, v=value: s.__setitem__(
            "received", s.get("received", 0) + 1))
        total = yield from ctx.allreduce(1, operator.add, nbytes=8)
        ctx.update(lambda s, t=total: s.__setitem__("sum", t))


def main() -> None:
    tracer = Tracer(categories=[
        "ft.wave_started", "ft.wave_completed", "ft.local_checkpoint",
        "ft.image_stored", "ft.failure", "ft.failure_detected",
        "ft.restarted",
    ])
    sim = Simulator(seed=9, trace=tracer)
    size = 4
    net = ClusterNetwork(sim, n_nodes=size + 2)
    compute = net.nodes[:size]
    for node in net.nodes[size:]:
        node.service = True
    endpoints = [Endpoint(node, 0) for node in compute]
    server = CheckpointServer(sim, net, net.nodes[size], name="cs0")
    scheduler_node = net.nodes[size + 1]

    def protocol_factory(job, run):
        return VclProtocol(job, run.server_map, period=0.8, stats=run.stats,
                           local_images=run.local_images, fork_latency=0.05,
                           scheduler_node=scheduler_node)

    run = FTRun(sim, net, endpoints, ring_app, ChVChannel, protocol_factory,
                [server], name="demo")
    run.start()
    run.schedule_task_kill(rank=2, at=2.1)
    completion = sim.run_until_complete(run.completed, limit=1e5)

    print("timeline:")
    for record in tracer.records:
        fields = " ".join(f"{k}={v}" for k, v in record.fields
                          if k not in ("protocol",))
        print(f"  t={record.time:8.3f}  {record.category:<22} {fields}")
    print()
    print(f"completed in {completion:.2f}s with {run.stats.failures} failure,"
          f" {run.stats.waves_completed} committed waves,"
          f" {run.stats.logged_messages} logged in-transit messages")
    for ctx in run.job.contexts:
        assert ctx.state["received"] == 40 and ctx.state["sum"] == size
    print("every rank received all 40 ring messages exactly once — the")
    print("logged channel state was replayed, none re-sent, none lost.")


if __name__ == "__main__":
    main()
