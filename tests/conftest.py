"""Suite-wide fixtures: every test runs under the online invariant monitors.

The ``monitored_engine`` autouse fixture patches ``Simulator`` so each
simulator any test constructs gets the full :mod:`repro.verify` monitor set
attached, raising :class:`~repro.verify.InvariantViolation` at the first
protocol-invariant breach; end-of-run completeness checks fire at teardown.
Mark a test ``@pytest.mark.unmonitored`` to opt out (tests that break the
protocols on purpose attach their own bus and assert the violation).
"""

import pytest

from repro.sim.engine import Simulator
from repro.verify import MonitorBus, all_monitors


@pytest.fixture(autouse=True)
def monitored_engine(request, monkeypatch):
    """Every shipped protocol-invariant monitor, on for every simulator."""
    if request.node.get_closest_marker("unmonitored"):
        yield []
        return
    buses = []
    unpatched = Simulator.__init__

    def monitored_init(self, *args, **kwargs):
        unpatched(self, *args, **kwargs)
        bus = MonitorBus(all_monitors(), raise_on_violation=True)
        bus.attach(self)
        buses.append(bus)

    monkeypatch.setattr(Simulator, "__init__", monitored_init)
    yield buses
    # End-of-stream completeness checks (e.g. every logged message replayed)
    # raise here if the run ended in a state no correct protocol can reach.
    for bus in buses:
        bus.finish()
