"""Repeat-run determinism: same seed, same bytes.

The harness' claim to reproducibility is literal: running an experiment
twice with the same ``REPRO_SEED`` must yield byte-identical result JSON
and byte-identical traces — no wall-clock, object-identity or global
counter leakage into the simulation.  (Connection ids and job uids are
per-simulator counters for exactly this reason.)

The default tests run one small configuration twice.  Set
``REPRO_DETERMINISM=full`` to additionally double-run a whole smoke-profile
figure and compare its complete JSON document.
"""

import json
import os

import pytest

from repro.apps import BT
from repro.harness import get_experiment, get_profile
from repro.harness.runner import execute, monitor_ledger
from repro.mpi import FtSockChannel
from repro.runtime import DeploymentSpec, build_run
from repro.sim import Simulator
from repro.sim.trace import Tracer, dump_jsonl


def _small_execute(seed, procs_per_node=None):
    profile = get_profile("smoke", seed=seed)
    bench = BT(klass="B", scale=profile.time_scale)
    with monitor_ledger() as ledger:
        result = execute(bench, 4, "pcl", profile, period=30.0,
                         procs_per_node=procs_per_node,
                         name="determinism-probe")
    return result, ledger.verdicts


@pytest.mark.parametrize("procs_per_node", [None, 2])
def test_execute_twice_same_seed_is_byte_identical(procs_per_node):
    first, verdicts_a = _small_execute(seed=123, procs_per_node=procs_per_node)
    second, verdicts_b = _small_execute(seed=123, procs_per_node=procs_per_node)
    assert first.completion == second.completion  # exact, not approx
    assert json.dumps(first.row(), sort_keys=True) == \
        json.dumps(second.row(), sort_keys=True)
    assert json.dumps(verdicts_a, sort_keys=True) == \
        json.dumps(verdicts_b, sort_keys=True)
    assert first.waves == second.waves
    assert first.stats.logged_bytes == second.stats.logged_bytes
    assert first.stats.blocked_seconds == second.stats.blocked_seconds


@pytest.mark.parametrize("procs_per_node", [None, 2])
@pytest.mark.parametrize("protocol", ["pcl", "vcl", "dcl"])
def test_full_trace_twice_same_seed_is_byte_identical(tmp_path, protocol,
                                                      procs_per_node):
    """Two full-trace runs of one figure-style deployment: every record —
    times, pipe names, job uids, packet seqs — must match byte for byte.
    ``procs_per_node=2`` covers the shared-node regime that used to
    livelock Pcl (see tests/chaos/test_livelock_regression.py)."""
    paths = []
    for attempt in ("a", "b"):
        sim = Simulator(seed=123, trace=Tracer(enabled=True))
        bench = BT(klass="B", scale=0.05)
        spec = DeploymentSpec(
            n_procs=4, protocol=protocol, period=1.5,
            procs_per_node=procs_per_node,
            image_bytes=bench.image_bytes(4) * 0.05,
        )
        run = build_run(sim, spec, bench.make_app(4), name="trace-probe")
        run.start()
        sim.run_until_complete(run.completed, limit=1e8)
        path = str(tmp_path / f"{protocol}-{attempt}.jsonl")
        assert dump_jsonl(sim.trace.records, path) > 0
        paths.append(path)
    with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
        assert a.read() == b.read()


def test_chaos_scenario_trace_twice_same_seed_is_byte_identical(tmp_path):
    """A full chaos scenario — kill, rollback, restart, with the engine
    watchdog armed — must also be byte-reproducible: the watchdog observes
    every pop but emits nothing unless it trips."""
    from repro.sim import Watchdog

    paths = []
    for attempt in ("a", "b"):
        sim = Simulator(seed=5, trace=Tracer(enabled=True),
                        watchdog=Watchdog())
        bench = BT(klass="B", scale=0.05)
        spec = DeploymentSpec(
            n_procs=4, protocol="pcl", period=1.5, procs_per_node=2,
            image_bytes=bench.image_bytes(4) * 0.05,
        )
        run = build_run(sim, spec, bench.make_app(4), name="chaos-probe")
        run.start()
        run.schedule_task_kill(1, 1.7)
        sim.run_until_complete(run.completed, limit=1e8)
        assert run.stats.restarts == 1
        path = str(tmp_path / f"chaos-{attempt}.jsonl")
        assert dump_jsonl(sim.trace.records, path) > 0
        paths.append(path)
    with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
        assert a.read() == b.read()


def test_chaos_scenario_result_twice_is_identical():
    """Verdict-level determinism: the chaos runner's JSON row for the same
    scenario is identical across runs (what makes campaign artifacts
    diffable)."""
    from repro.chaos import Scenario, run_scenario

    scenario = Scenario(protocol="vcl", channel="ch_v", procs_per_node=2,
                        kill="node", victim=1, kill_time=1.7, seed=9)
    rows = [json.dumps(run_scenario(scenario).to_dict(), sort_keys=True)
            for _ in range(2)]
    assert rows[0] == rows[1]


def test_failure_recovery_trace_twice_same_seed_is_byte_identical(tmp_path):
    """Determinism must survive a kill + rollback: respawn, image fetch and
    replay schedules all come from seeded streams."""
    from tests.ft.conftest import build_ft_run
    from tests.ft.test_vcl_replay_order import seq_stream_app

    paths = []
    for attempt in ("a", "b"):
        sim = Simulator(seed=31, trace=Tracer(enabled=True))
        run, _ = build_ft_run(sim, seq_stream_app(n_msgs=40), size=2,
                              protocol="vcl", period=0.12, image_bytes=1e6,
                              fork_latency=0.005)
        run.start()
        run.schedule_task_kill(1, 0.43)
        sim.run_until_complete(run.completed, limit=1e5)
        assert run.stats.restarts == 1
        path = str(tmp_path / f"recovery-{attempt}.jsonl")
        assert dump_jsonl(sim.trace.records, path) > 0
        paths.append(path)
    with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
        assert a.read() == b.read()


def test_server_kill_replicated_restart_trace_is_byte_identical(tmp_path):
    """The storage-resilience machinery — replicated uploads with a quorum
    gate, a server kill, restart-time replica retries with seeded backoff —
    must be byte-reproducible like every other failure path."""
    from repro.sim import Watchdog

    paths = []
    for attempt in ("a", "b"):
        sim = Simulator(seed=5, trace=Tracer(enabled=True),
                        watchdog=Watchdog())
        bench = BT(klass="B", scale=0.05)
        spec = DeploymentSpec(
            n_procs=4, protocol="pcl", period=1.5, procs_per_node=2,
            image_bytes=bench.image_bytes(4) * 0.05,
            n_servers=2, ckpt_replication=2,
        )
        run = build_run(sim, spec, bench.make_app(4), name="storage-probe")
        run.start()
        run.schedule_server_kill(0, 2.4)
        run.schedule_node_kill(1, 2.8)
        sim.run_until_complete(run.completed, limit=1e8)
        assert run.stats.restarts == 1
        path = str(tmp_path / f"storage-{attempt}.jsonl")
        assert dump_jsonl(sim.trace.records, path) > 0
        paths.append(path)
    with open(paths[0], "rb") as a, open(paths[1], "rb") as b:
        assert a.read() == b.read()


@pytest.mark.skipif(os.environ.get("REPRO_DETERMINISM") != "full",
                    reason="set REPRO_DETERMINISM=full for the figure sweep")
@pytest.mark.parametrize("experiment_id", ["fig5", "fig6", "fig7",
                                           "protocol_race"])
def test_smoke_figure_twice_same_seed_is_byte_identical(experiment_id):
    runner = get_experiment(experiment_id)
    seed = int(os.environ.get("REPRO_SEED", "0"))
    documents = []
    for _ in range(2):
        result = runner(get_profile("smoke", seed=seed))
        documents.append(json.dumps(result.as_dict(), sort_keys=True))
    assert documents[0] == documents[1]
