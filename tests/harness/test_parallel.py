"""Process-pool execution: identical results, scoped monitor verdicts.

The parallelism contract is strict: a grid or campaign run under ``--jobs
N`` must be *indistinguishable* from the sequential run — same rows, same
order, same monitor verdicts — because every run owns an independent,
self-seeded simulator.  These tests pin that equivalence on real (small)
workloads, plus the ledger scoping that replaced the old module-global
verdict accumulator.
"""

import json
import os

import pytest

from repro.apps import BT
from repro.harness import get_profile
from repro.harness.parallel import (
    JOBS_ENV,
    execute_grid,
    pool_imap,
    pool_map,
    resolve_jobs,
)
from repro.harness.runner import execute, monitor_ledger


# ------------------------------------------------------------ job resolution
def test_resolve_jobs_explicit_wins():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == 1  # floored
    assert resolve_jobs(-2) == 1


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "4")
    assert resolve_jobs() == 4
    assert resolve_jobs(2) == 2  # explicit beats env
    monkeypatch.setenv(JOBS_ENV, "banana")
    with pytest.raises(ValueError):
        resolve_jobs()
    monkeypatch.delenv(JOBS_ENV)
    assert resolve_jobs() == 1


# ----------------------------------------------------------------- pool map
def test_pool_map_sequential_and_parallel_agree():
    items = list(range(-6, 7))
    assert pool_map(abs, items, jobs=1) == [abs(i) for i in items]
    assert pool_map(abs, items, jobs=3) == [abs(i) for i in items]


def test_pool_imap_preserves_order():
    items = [5, -1, 3, -8, 0]
    assert list(pool_imap(abs, items, jobs=2)) == [5, 1, 3, 8, 0]


# ------------------------------------------------------------ ledger scoping
def _probe_kwargs(name):
    profile = get_profile("smoke", seed=123)
    return dict(bench=BT(klass="B", scale=profile.time_scale), n_procs=4,
                protocol="pcl", profile=profile, period=30.0, name=name)


def test_monitor_ledger_scoped_and_nested():
    with monitor_ledger() as outer:
        execute(**_probe_kwargs("outer-run"))
        with monitor_ledger() as inner:
            execute(**_probe_kwargs("inner-run"))
        execute(**_probe_kwargs("outer-again"))
    # inner block captured only its own run; the outer ledger never saw it
    assert set(inner.verdicts) == {"inner-run"}
    assert set(outer.verdicts) == {"outer-run", "outer-again"}


def test_no_ledger_no_leak():
    """Runs outside any ledger leave nothing behind for the next ledger."""
    execute(**_probe_kwargs("unscoped-run"))
    with monitor_ledger() as ledger:
        pass
    assert ledger.verdicts == {}


# ---------------------------------------------------- grid/pool equivalence
def _grid_fingerprint(results):
    return json.dumps(
        [dict(r.row(), monitors_ok=r.monitors_ok, events=r.meta["events"])
         for r in results],
        sort_keys=True)


def test_execute_grid_parallel_identical_to_sequential():
    tasks = [_probe_kwargs("grid-a"), _probe_kwargs("grid-b")]

    with monitor_ledger() as seq_ledger:
        seq = execute_grid(tasks, jobs=1)
    with monitor_ledger() as par_ledger:
        par = execute_grid(tasks, jobs=2)

    assert _grid_fingerprint(seq) == _grid_fingerprint(par)
    # worker verdicts were re-recorded into the parent's ledger, in order
    assert list(par_ledger.verdicts) == list(seq_ledger.verdicts) \
        == ["grid-a", "grid-b"]
    assert json.dumps(seq_ledger.verdicts, sort_keys=True) == \
        json.dumps(par_ledger.verdicts, sort_keys=True)


def test_execute_grid_parallel_identical_for_dcl():
    """The drain protocol's runs pickle and re-seed like the others."""
    tasks = [dict(_probe_kwargs(f"dcl-grid-{i}"), protocol="dcl")
             for i in ("a", "b")]
    seq = execute_grid(tasks, jobs=1)
    par = execute_grid(tasks, jobs=2)
    assert _grid_fingerprint(seq) == _grid_fingerprint(par)


def test_protocol_race_parallel_identical_to_sequential(monkeypatch):
    """The three-way figure is grid-built, so --jobs fans it out; the
    resulting document must be byte-identical to the sequential one."""
    from repro.harness import get_experiment

    runner = get_experiment("protocol_race")
    documents = []
    for jobs in ("1", "4"):
        monkeypatch.setenv(JOBS_ENV, jobs)
        result = runner(get_profile("smoke", seed=0))
        documents.append(json.dumps(result.as_dict(), sort_keys=True))
    monkeypatch.delenv(JOBS_ENV)
    assert documents[0] == documents[1]


def test_campaign_parallel_identical_to_sequential():
    from repro.chaos.runner import run_campaign
    from repro.chaos.spec import CampaignSpec, Scenario

    campaign = CampaignSpec(
        scenarios=[
            Scenario(protocol="pcl", channel="ft_sock", procs_per_node=2,
                     kill="task", victim=1, kill_time=1.7, seed=0),
            Scenario(protocol="pcl", channel="ft_sock", seed=0),
            Scenario(protocol="dcl", channel="ft_sock", procs_per_node=2,
                     kill="node", victim=1, kill_time=1.7, seed=0),
        ],
        name="mini",
    )
    seq_progress, par_progress = [], []
    seq = run_campaign(campaign, jobs=1,
                       progress=lambda r: seq_progress.append(r.scenario.label))
    par = run_campaign(campaign, jobs=2,
                       progress=lambda r: par_progress.append(r.scenario.label))
    assert seq_progress == par_progress == [s.label for s in campaign]
    a = json.dumps([r.to_dict() for r in seq.results], sort_keys=True)
    b = json.dumps([r.to_dict() for r in par.results], sort_keys=True)
    assert a == b
    # the out-of-band events field survives the pool round-trip too
    assert [r.events for r in seq.results] == [r.events for r in par.results]
    assert all(r.events > 0 for r in seq.results)
