"""Unit tests for the results-comparison tool."""

import json
import os

import pytest

from repro.tools.compare import compare_dirs, load_results, render_diff


def write_result(directory, figure, profile="quick", ys=(10.0, 20.0),
                 checks=None):
    os.makedirs(directory, exist_ok=True)
    data = {
        "figure": figure,
        "title": figure,
        "x_label": "x",
        "y_label": "y",
        "profile": profile,
        "series": [{"label": "main", "xs": [1.0, 2.0], "ys": list(ys),
                    "meta": {}}],
        "checks": checks if checks is not None else {"ok": True},
        "notes": [],
    }
    path = os.path.join(directory, f"{figure}_{profile}.json")
    with open(path, "w") as handle:
        json.dump(data, handle)


def test_load_results_prefers_bigger_profile(tmp_path):
    d = str(tmp_path)
    write_result(d, "fig5", profile="smoke", ys=(1.0, 1.0))
    write_result(d, "fig5", profile="quick", ys=(2.0, 2.0))
    loaded = load_results(d)
    assert loaded["fig5"]["series"][0]["ys"] == [2.0, 2.0]


def test_compare_detects_point_changes(tmp_path):
    a, b = str(tmp_path / "a"), str(tmp_path / "b")
    write_result(a, "fig5", ys=(10.0, 20.0))
    write_result(b, "fig5", ys=(11.0, 20.0))
    diffs = compare_dirs(a, b)
    assert len(diffs) == 1
    assert diffs[0].max_relative_change == pytest.approx(0.1)
    assert not diffs[0].regressed
    text = render_diff(diffs[0])
    assert "+10.0%" in text


def test_compare_detects_check_regressions(tmp_path):
    a, b = str(tmp_path / "a"), str(tmp_path / "b")
    write_result(a, "fig5", checks={"ok": True})
    write_result(b, "fig5", checks={"ok": False})
    diffs = compare_dirs(a, b)
    assert diffs[0].regressed
    assert "PASS->FAIL" in render_diff(diffs[0])


def test_compare_unchanged(tmp_path):
    a, b = str(tmp_path / "a"), str(tmp_path / "b")
    write_result(a, "fig5")
    write_result(b, "fig5")
    diffs = compare_dirs(a, b)
    assert "unchanged" in render_diff(diffs[0])


def test_compare_disjoint_dirs(tmp_path):
    a, b = str(tmp_path / "a"), str(tmp_path / "b")
    write_result(a, "fig5")
    write_result(b, "fig6")
    assert compare_dirs(a, b) == []
