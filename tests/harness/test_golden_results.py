"""Golden-results sweep: every checked-in smoke result is reproducible.

``results/*_smoke.json`` are the committed smoke-profile figure documents
(seed 0).  Re-running each experiment must reproduce its file **byte for
byte** — series, shape checks, monitor verdicts, everything.  A diff here
means a simulation-behaviour change shipped without regenerating the
goldens (``python -m repro.harness all --profile smoke --save-dir
results``) — which is exactly the drift this sweep exists to catch.

The sweep is marked ``golden`` so it can be deselected for fast local
iteration with ``-m "not golden"``; CI always runs it.
"""

import glob
import json
import os

import pytest

from repro.harness import get_experiment, get_profile

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "results")
GOLDEN_PATHS = sorted(glob.glob(os.path.join(RESULTS_DIR, "*_smoke.json")))


def _figure_id(path):
    return os.path.basename(path)[:-len("_smoke.json")]


def test_sweep_covers_every_committed_smoke_result():
    assert len(GOLDEN_PATHS) >= 12, \
        "golden smoke results missing from results/"


@pytest.mark.golden
@pytest.mark.parametrize("path", GOLDEN_PATHS, ids=_figure_id)
def test_smoke_result_is_byte_identical(path, monkeypatch):
    # goldens are generated metrics-off; don't let the environment leak in
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    with open(path) as handle:
        golden_text = handle.read()
    golden = json.loads(golden_text)
    assert golden["profile"] == "smoke"
    result = get_experiment(golden["figure"])(get_profile("smoke", seed=0))
    regenerated = json.dumps(result.as_dict(), indent=2)
    assert result.all_checks_pass, \
        f"{golden['figure']}: shape checks failed on regeneration"
    assert regenerated == golden_text, (
        f"{golden['figure']}: regenerated document differs from the "
        f"committed golden — if the simulation change is intentional, "
        f"regenerate results/ (see the module docstring)"
    )
