"""Unit tests for the harness plumbing: profiles, reports, CLI, tools."""

import json
import os

import pytest

from repro.harness import (
    EXPERIMENT_IDS,
    FigureResult,
    PROFILES,
    Series,
    get_experiment,
    get_profile,
    render,
    save_json,
)
from repro.harness.experiments_md import PAPER_CLAIMS, build_markdown
from repro.tools.ascii_plot import ascii_plot


# ---------------------------------------------------------------- profiles
def test_profiles_exist():
    assert set(PROFILES) == {"paper", "quick", "smoke"}
    assert PROFILES["paper"].time_scale == 1.0
    assert PROFILES["quick"].time_scale < 1.0


def test_get_profile_with_seed():
    profile = get_profile("quick", seed=42)
    assert profile.seed == 42
    assert get_profile("quick").seed == 0


def test_get_profile_unknown():
    with pytest.raises(ValueError):
        get_profile("gigantic")


def test_scaled_period():
    assert get_profile("paper").scaled_period(30.0) == 30.0
    quick = get_profile("quick")
    assert quick.scaled_period(30.0) == pytest.approx(30.0 * quick.time_scale)


# -------------------------------------------------------------- experiments
def test_every_experiment_resolves():
    for experiment_id in EXPERIMENT_IDS:
        assert callable(get_experiment(experiment_id))


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        get_experiment("fig99")


def test_every_experiment_has_a_paper_claim():
    assert set(PAPER_CLAIMS) == set(EXPERIMENT_IDS)


def test_every_experiment_has_a_benchmark_file():
    bench_dir = os.path.join(os.path.dirname(__file__), "..", "..",
                             "benchmarks")
    for experiment_id in EXPERIMENT_IDS:
        path = os.path.join(bench_dir, f"test_{experiment_id}.py")
        assert os.path.exists(path), f"missing benchmark for {experiment_id}"


# ------------------------------------------------------------------ report
def _result():
    return FigureResult(
        figure_id="figX",
        title="Demo",
        x_label="n",
        y_label="seconds",
        series=[
            Series("a", [1.0, 2.0, 4.0], [10.0, 11.0, 13.0]),
            Series("b", [1.0, 4.0], [9.0, 9.5]),
        ],
        checks={"goes up": True, "stays sane": False},
        notes=["hello"],
        profile="smoke",
    )


def test_render_contains_everything():
    text = render(_result())
    assert "figX" in text and "Demo" in text
    assert "check [PASS] goes up" in text
    assert "check [FAIL] stays sane" in text
    assert "note: hello" in text
    assert "13.000" in text
    assert "-" in text  # missing b value at x=2


def test_all_checks_pass_property():
    result = _result()
    assert not result.all_checks_pass
    result.checks["stays sane"] = True
    assert result.all_checks_pass


def test_save_json_roundtrip(tmp_path):
    path = save_json(_result(), directory=str(tmp_path))
    with open(path) as handle:
        data = json.load(handle)
    assert data["figure"] == "figX"
    assert data["checks"]["goes up"] is True
    assert len(data["series"]) == 2


# ---------------------------------------------------------- experiments_md
def test_build_markdown_from_results(tmp_path):
    save_json(_result(), directory=str(tmp_path))
    markdown = build_markdown(str(tmp_path))
    assert "EXPERIMENTS" in markdown
    assert "shape checks pass" in markdown
    # unknown figure id figX is not in the claims registry, so only the
    # claim sections appear; every known claim is present
    for experiment_id in PAPER_CLAIMS:
        assert f"## {experiment_id}" in markdown


def test_build_markdown_prefers_larger_profile(tmp_path):
    small = _result()
    small.figure_id = "fig5"
    small.profile = "smoke"
    small.checks = {"x": False}
    save_json(small, directory=str(tmp_path))
    big = _result()
    big.figure_id = "fig5"
    big.profile = "quick"
    big.checks = {"x": True}
    save_json(big, directory=str(tmp_path))
    markdown = build_markdown(str(tmp_path))
    assert "profile `quick`" in markdown


# -------------------------------------------------------------- ascii plot
def test_ascii_plot_renders_markers():
    text = ascii_plot([("a", [0, 1, 2], [0.0, 1.0, 2.0]),
                       ("b", [0, 1, 2], [2.0, 1.0, 0.0])])
    assert "*" in text and "o" in text
    assert "a" in text and "b" in text


def test_ascii_plot_flat_series():
    text = ascii_plot([("flat", [0, 1], [5.0, 5.0])])
    assert "flat" in text


def test_ascii_plot_empty():
    assert ascii_plot([]) == "(no data)\n"


def test_ascii_plot_validates_size():
    with pytest.raises(ValueError):
        ascii_plot([("a", [0], [0])], width=4, height=2)


# -------------------------------------------- scale_limit 10k extension
def test_scale_limit_extension_gated_by_profile():
    """Non-smoke profiles extend the scale_limit sweep through the FTPM
    10,000-rank ceiling and run an actual 10k-rank wave; the smoke profile
    keeps the original seven sizes so the committed golden stays
    byte-identical (the golden sweep itself pins the bytes)."""
    from repro.harness.figures import scale_limit

    extended = scale_limit.run(get_profile("quick", seed=0))
    xs = extended.series[0].xs
    assert 10_000.0 in xs and 10_001.0 in xs
    assert extended.checks["ftpm admits every size up to its 10000 ceiling"]
    assert extended.checks["ftpm refuses beyond the 10000 ceiling"]
    assert extended.checks["ftpm actually runs a 10000-rank wave"]
    assert all(extended.checks.values())

    smoke = scale_limit.run(get_profile("smoke", seed=0))
    assert max(smoke.series[0].xs) == 1024.0
    assert not any("10000" in name for name in smoke.checks)
