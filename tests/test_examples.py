"""The examples must at least import cleanly, and the quickstart (plus the
traced failure demo) must run end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "cluster_checkpoint_study",
    "myrinet_crossover",
    "grid_deployment",
    "failure_recovery_demo",
])
def test_example_imports(name):
    module = load(name)
    assert callable(module.main)


def test_quickstart_runs(capsys):
    load("quickstart").main()
    out = capsys.readouterr().out
    assert "failures / restarts: 1 / 1" in out
    assert "despite the failure" in out


def test_failure_recovery_demo_runs(capsys):
    load("failure_recovery_demo").main()
    out = capsys.readouterr().out
    assert "ft.failure_detected" in out
    assert "replayed" in out
