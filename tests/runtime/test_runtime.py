"""Tests of the runtime environments: ssh, dispatcher, FTPM, database."""

import pytest

from repro.runtime import (
    Dispatcher,
    FTPM,
    ProcessDatabase,
    ScaleLimitError,
    SELECT_FD_LIMIT,
    SOCKETS_PER_PROCESS,
    SshSpawner,
)


# ------------------------------------------------------------------- ssh
def test_sequential_ssh_delays():
    ssh = SshSpawner(concurrency=1, per_spawn=0.5)
    assert ssh.delays(3) == [0.5, 1.0, 1.5]
    assert ssh.total_time(3) == 1.5


def test_parallel_ssh_delays():
    ssh = SshSpawner(concurrency=4, per_spawn=1.0)
    assert ssh.delays(6) == [1.0, 1.0, 1.0, 1.0, 2.0, 2.0]


def test_ssh_zero_processes():
    assert SshSpawner().total_time(0) == 0.0


def test_ssh_validation():
    with pytest.raises(ValueError):
        SshSpawner(concurrency=0)
    with pytest.raises(ValueError):
        SshSpawner(per_spawn=-1.0)


def test_parallel_much_faster_than_sequential():
    n = 256
    sequential = SshSpawner(concurrency=1).total_time(n)
    parallel = SshSpawner(concurrency=32).total_time(n)
    assert parallel <= sequential / 16


# ------------------------------------------------------------ dispatcher
def test_dispatcher_select_limit():
    dispatcher = Dispatcher()
    limit = dispatcher.max_processes()
    # the paper: "this precludes tests with more than 300 processes"
    assert 300 <= limit <= SELECT_FD_LIMIT // SOCKETS_PER_PROCESS
    dispatcher.validate(limit)  # ok
    with pytest.raises(ScaleLimitError):
        dispatcher.validate(400)


def test_dispatcher_spawns_sequentially():
    dispatcher = Dispatcher()
    delays = dispatcher.spawn_delays(4)
    assert delays == sorted(delays)
    assert len(set(delays)) == 4


# ------------------------------------------------------------------ ftpm
def test_ftpm_scales_past_dispatcher():
    ftpm = FTPM()
    ftpm.validate(1024)  # the paper's design target
    with pytest.raises(ScaleLimitError):
        ftpm.validate(ftpm.max_processes() + 1)


def test_ftpm_publishes_business_cards():
    ftpm = FTPM()
    ftpm.spawn_delays(8)
    assert len(ftpm.database) == 8
    card = ftpm.database.lookup(3)
    assert card.rank == 3
    ftpm.respawn_lead_time()
    assert len(ftpm.database) == 0


# -------------------------------------------------------------- database
def test_database_wave_tracking():
    db = ProcessDatabase()
    db.record_wave(3)
    db.record_wave(1)  # stale
    assert db.last_successful_wave == 3


def test_database_image_locations():
    db = ProcessDatabase()
    db.record_image_location(0, "cs1")
    assert db.image_location(0) == "cs1"
    assert db.image_location(9) is None
    assert db.lookups == 2
