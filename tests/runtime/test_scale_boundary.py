"""The dispatcher's select() wall, probed exactly at the boundary.

Paper Sec. 5.4: 3 sockets per MPI process plus the dispatcher's own
descriptors, multiplexed with select() (fd set capped at 1024) — which
"precludes tests with more than 300 processes".  The modeled maximum is
(1024 - 16) // 3 = 336: validation must admit 336 ranks and reject 337
with the modeled error, not an off-by-one in either direction.
"""

import pytest

from repro.runtime import Dispatcher, ScaleLimitError
from repro.runtime.dispatcher import (
    RESERVED_FDS,
    SELECT_FD_LIMIT,
    SOCKETS_PER_PROCESS,
)


def test_modeled_maximum_is_336():
    dispatcher = Dispatcher()
    assert dispatcher.max_processes() == (1024 - 16) // 3 == 336
    # consistency with the constants the fd-budget monitor consumes
    budget = dispatcher.fd_budget()
    assert budget == {
        "fd_limit": SELECT_FD_LIMIT,
        "sockets_per_process": SOCKETS_PER_PROCESS,
        "reserved_fds": RESERVED_FDS,
        "max_processes": 336,
    }


def test_validate_admits_the_largest_fitting_count():
    dispatcher = Dispatcher()
    dispatcher.validate(336)  # fills the budget exactly: 16 + 336*3 = 1024
    assert RESERVED_FDS + 336 * SOCKETS_PER_PROCESS <= SELECT_FD_LIMIT


def test_validate_rejects_one_past_the_budget():
    dispatcher = Dispatcher()
    with pytest.raises(ScaleLimitError) as err:
        dispatcher.validate(337)
    message = str(err.value)
    assert "337 processes" in message
    assert "select()" in message


def test_enforcement_knob_lets_oversubscription_through():
    """The repro.verify break knob: with enforcement off, validate() passes
    and catching the oversubscription becomes the fd-budget monitor's job
    (see tests/verify/test_deliberate_breaks.py)."""
    Dispatcher(enforce_fd_limit=False).validate(337)
