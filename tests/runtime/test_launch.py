"""Tests of the high-level deployment builder."""

import pytest

from repro.mpi import ChVChannel, FtSockChannel, NemesisChannel
from repro.net import ETHERNET_OVER_MYRINET, GIGABIT_ETHERNET, MYRINET_GM
from repro.net.grid import GridNetwork
from repro.runtime import DeploymentSpec, Dispatcher, FTPM, ScaleLimitError, build_run
from repro.ft import InstantLauncher
from repro.sim import Simulator

from tests.ft.conftest import assert_ring_result, ring_app_factory


def test_spec_validation():
    with pytest.raises(ValueError):
        DeploymentSpec(4, protocol="magic")
    with pytest.raises(ValueError):
        DeploymentSpec(4, channel="smoke")
    with pytest.raises(ValueError):
        DeploymentSpec(4, network="tokenring")
    with pytest.raises(ValueError):
        DeploymentSpec(4, n_servers=0)


def test_build_pcl_cluster_run_completes():
    sim = Simulator(seed=5)
    spec = DeploymentSpec(4, protocol="pcl", period=1.0, image_bytes=1e6,
                          fork_latency=0.01)
    run = build_run(sim, spec, ring_app_factory(iters=20, work=0.2))
    run.start()
    sim.run_until_complete(run.completed, limit=5000)
    assert run.stats.waves_completed >= 1
    assert_ring_result(run, iters=20)


def test_build_vcl_run_gets_dispatcher_and_scheduler():
    sim = Simulator(seed=5)
    spec = DeploymentSpec(4, protocol="vcl", period=1.0, image_bytes=1e6,
                          fork_latency=0.01)
    run = build_run(sim, spec, ring_app_factory(iters=10, work=0.2))
    assert isinstance(run.launcher, Dispatcher)
    run.start()
    sim.run_until_complete(run.completed, limit=5000)
    assert run.stats.waves_completed >= 1


def test_pcl_gets_ftpm_and_none_gets_instant():
    sim = Simulator(seed=5)
    run = build_run(sim, DeploymentSpec(2, protocol="pcl"), ring_app_factory(2))
    assert isinstance(run.launcher, FTPM)
    run2 = build_run(sim, DeploymentSpec(2, protocol=None), ring_app_factory(2))
    assert isinstance(run2.launcher, InstantLauncher)


def test_vcl_scale_limit_enforced_at_start():
    sim = Simulator(seed=5)
    spec = DeploymentSpec(400, protocol="vcl", n_compute_nodes=200,
                          procs_per_node=2)
    run = build_run(sim, spec, ring_app_factory(iters=1))
    with pytest.raises(ScaleLimitError):
        run.start()


def test_myrinet_fabric_follows_channel():
    sim = Simulator(seed=5)
    run_gm = build_run(sim, DeploymentSpec(2, network="myrinet",
                                           channel="nemesis"),
                       ring_app_factory(2), name="gm")
    assert run_gm.net.fabric is MYRINET_GM
    run_eth = build_run(sim, DeploymentSpec(2, network="myrinet",
                                            channel="ft_sock"),
                        ring_app_factory(2), name="eth")
    assert run_eth.net.fabric is ETHERNET_OVER_MYRINET
    run_gige = build_run(sim, DeploymentSpec(2, network="gige",
                                             channel="nemesis"),
                         ring_app_factory(2), name="g")
    assert run_gige.net.fabric is GIGABIT_ETHERNET


def test_service_nodes_not_used_for_placement():
    sim = Simulator(seed=5)
    spec = DeploymentSpec(4, n_servers=2, protocol="vcl")
    run = build_run(sim, spec, ring_app_factory(2))
    service = {n.name for n in run.net.nodes if n.service}
    assert len(service) == 3  # 2 servers + scheduler
    used = {ep.node.name for ep in run.endpoints}
    assert not (service & used)


def test_dual_processor_placement():
    sim = Simulator(seed=5)
    spec = DeploymentSpec(8, procs_per_node=2, protocol=None)
    run = build_run(sim, spec, ring_app_factory(2))
    assert len({ep.node.name for ep in run.endpoints}) == 4


def test_grid_deployment_spreads_servers_and_prefers_local():
    sim = Simulator(seed=5)
    spec = DeploymentSpec(80, network="grid5000", n_servers=4, protocol="pcl")
    run = build_run(sim, spec, ring_app_factory(2))
    assert isinstance(run.net, GridNetwork)
    server_sites = {s.node.cluster for s in run.servers}
    assert len(server_sites) == 4
    # ranks placed in bordeaux/lille should use a server at their own site
    # when one exists there
    for rank, endpoint in enumerate(run.endpoints):
        server = run.server_map[rank]
        if endpoint.node.cluster in server_sites:
            assert server.node.cluster == endpoint.node.cluster


def test_grid_run_completes():
    sim = Simulator(seed=5)
    spec = DeploymentSpec(6, network="grid5000", n_servers=2, protocol="pcl",
                          period=2.0, image_bytes=1e6, fork_latency=0.01)
    run = build_run(sim, spec, ring_app_factory(iters=10, work=0.3))
    run.start()
    sim.run_until_complete(run.completed, limit=5000)
    assert_ring_result(run, iters=10)
