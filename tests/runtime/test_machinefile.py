"""Tests of the extended machinefile format."""

import pytest

from repro.runtime import parse_machinefile


GOOD = """
# Orsay deployment
node001:2
node002:2 ckpt=cs1
node003
cs1 role=server
cs2 role=server
sched role=scheduler
"""


def test_parse_good_machinefile():
    mf = parse_machinefile(GOOD)
    assert [e.hostname for e in mf.compute] == ["node001", "node002", "node003"]
    assert mf.compute[0].slots == 2
    assert mf.compute[2].slots == 1
    assert [e.hostname for e in mf.servers] == ["cs1", "cs2"]
    assert mf.scheduler.hostname == "sched"
    assert mf.total_slots == 5


def test_explicit_server_assignment():
    mf = parse_machinefile(GOOD)
    assert mf.server_for(1) == "cs1"   # explicit
    assert mf.server_for(0) == "cs1"   # round robin index 0
    assert mf.server_for(2) == "cs1"   # round robin index 2 % 2 = 0


def test_rank_server_map_block_placement():
    mf = parse_machinefile(GOOD)
    mapping = mf.rank_server_map(5)
    # slot-0 pass: node001, node002, node003; slot-1 pass: node001, node002
    assert mapping[0] == "cs1"  # node001 -> rr(0)
    assert mapping[1] == "cs1"  # node002 explicit
    assert mapping[4] == "cs1"  # node002 slot 1, explicit
    assert len(mapping) == 5


def test_rank_server_map_too_many_ranks():
    mf = parse_machinefile(GOOD)
    with pytest.raises(ValueError):
        mf.rank_server_map(6)


def test_comments_and_blank_lines_ignored():
    mf = parse_machinefile("\n# only a comment\n\nhost1\ncs role=server\n")
    assert len(mf.compute) == 1


@pytest.mark.parametrize("bad,match", [
    ("node:x\n", "bad slot count"),
    ("node:0\n", "slots"),
    ("node opt\n", "bad option"),
    ("node role=wizard\n", "unknown role"),
    ("node foo=bar\n", "unknown option"),
    ("s1 role=scheduler\ns2 role=scheduler\n", "duplicate scheduler"),
    ("node ckpt=nowhere\n", "unknown checkpoint server"),
])
def test_malformed_lines_rejected(bad, match):
    with pytest.raises(ValueError, match=match):
        parse_machinefile(bad)


def test_no_servers_declared():
    mf = parse_machinefile("host1\n")
    with pytest.raises(ValueError, match="no checkpoint servers"):
        mf.server_for(0)
