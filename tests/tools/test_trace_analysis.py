"""Unit tests for :func:`repro.tools.trace_analysis.overhead_breakdown`.

The legacy ``stats=`` interface must keep working; the ``metrics=``
interface must source waves and the per-phase decomposition from a
:mod:`repro.obs` snapshot.
"""

import pytest

from repro.ft.protocol import FTStats
from repro.obs import MetricsRegistry
from repro.tools import overhead_breakdown


def _snapshot(waves=4, phases=None):
    registry = MetricsRegistry()
    registry.count("ft.waves_completed", float(waves), protocol="pcl")
    for phase, seconds in (phases or {}).items():
        registry.observe("ft.wave_phase_seconds", seconds,
                         protocol="pcl", phase=phase)
    return registry.snapshot()


def test_breakdown_requires_a_source():
    with pytest.raises(ValueError):
        overhead_breakdown(110.0, 100.0)


def test_breakdown_legacy_stats_interface():
    stats = FTStats()
    stats.waves_completed = 5
    breakdown = overhead_breakdown(completion=110.0, baseline=100.0,
                                   stats=stats)
    assert breakdown["overhead_seconds"] == pytest.approx(10.0)
    assert breakdown["overhead_percent"] == pytest.approx(10.0)
    assert breakdown["overhead_per_wave"] == pytest.approx(2.0)
    assert breakdown["waves"] == 5
    assert "phase_seconds" not in breakdown


def test_breakdown_from_metrics_snapshot():
    snapshot = _snapshot(waves=4, phases={"markers": 1.0, "flush": 6.0,
                                          "stream": 2.0, "commit": 1.0})
    breakdown = overhead_breakdown(completion=110.0, baseline=100.0,
                                   metrics=snapshot)
    assert breakdown["waves"] == 4
    assert breakdown["overhead_per_wave"] == pytest.approx(2.5)
    assert breakdown["phase_seconds"] == pytest.approx(
        {"markers": 1.0, "flush": 6.0, "stream": 2.0, "commit": 1.0})
    assert breakdown["phase_share"]["flush"] == pytest.approx(0.6)
    assert sum(breakdown["phase_share"].values()) == pytest.approx(1.0)


def test_breakdown_metrics_folds_phase_labels_across_protocols():
    registry = MetricsRegistry()
    registry.count("ft.waves_completed", 2.0, protocol="pcl")
    registry.count("ft.waves_completed", 3.0, protocol="vcl")
    registry.observe("ft.wave_phase_seconds", 1.5, protocol="pcl",
                     phase="flush")
    registry.observe("ft.wave_phase_seconds", 0.5, protocol="vcl",
                     phase="flush")
    breakdown = overhead_breakdown(10.0, 5.0, metrics=registry.snapshot())
    assert breakdown["waves"] == 5
    assert breakdown["phase_seconds"]["flush"] == pytest.approx(2.0)


def test_breakdown_stats_wave_count_wins_when_both_given():
    stats = FTStats()
    stats.waves_completed = 7
    snapshot = _snapshot(waves=4, phases={"flush": 2.0})
    breakdown = overhead_breakdown(110.0, 100.0, stats=stats,
                                   metrics=snapshot)
    assert breakdown["waves"] == 7
    assert breakdown["phase_seconds"] == {"flush": 2.0}


def test_breakdown_zero_baseline_and_zero_waves():
    snapshot = _snapshot(waves=0)
    breakdown = overhead_breakdown(5.0, 0.0, metrics=snapshot)
    assert breakdown["overhead_percent"] == 0.0
    assert breakdown["overhead_per_wave"] == 0.0
