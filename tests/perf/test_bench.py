"""The repro.perf subsystem: workloads, baseline policy, CLI.

The perf suite is a *measured claim* like every figure: these tests pin
that the workloads are deterministic in their work (events are exactly
reproducible even though wall time is not), that the regression policy
fires on real slowdowns and nothing else, and that the CLI exit codes are
what CI keys on.
"""

import json

import pytest

from repro.perf import (
    SUITES,
    WORKLOADS,
    compare_to_baseline,
    load_baseline,
    run_suite,
    run_workload,
    suite_report,
)
from repro.perf.bench import BenchResult
from repro.perf.workloads import flow_churn, suite_params


# -------------------------------------------------------------- workloads
def test_workload_registry_matches_suites():
    for suite, params in SUITES.items():
        assert set(params) <= set(WORKLOADS), suite
    with pytest.raises(KeyError):
        suite_params("nope")


def test_flow_churn_deterministic_work():
    """Same parameters -> exactly the same useful events and engine pops
    (the numerator of events/sec is wall-clock-free)."""
    a = flow_churn(churn=60, persistent=8, cancel_every=5)
    b = flow_churn(churn=60, persistent=8, cancel_every=5)
    assert a.events == b.events
    assert a.pops == b.pops
    assert a.events > 0


def test_flow_churn_exercises_cancellation():
    run = flow_churn(churn=60, persistent=8, cancel_every=5)
    # every 5th churn flow is cancelled: completions < flows started
    assert run.extra["churn"] == 60
    assert run.events < 60 + 8 + 1


def test_run_workload_measures_and_keeps_best():
    walls = iter([0.0, 5.0, 5.0, 7.0, 7.0, 8.0])  # 3 repeats: 5s, 2s, 1s
    result = run_workload("flow_churn",
                          {"churn": 10, "persistent": 2, "cancel_every": 3},
                          repeat=3, clock=lambda: next(walls))
    assert result.wall == 1.0
    assert result.events_per_sec == pytest.approx(result.events / 1.0)


# ------------------------------------------------------- regression policy
def _results(**eps):
    return {name: BenchResult(name=name, wall=1.0, events=int(v), pops=int(v),
                              events_per_sec=float(v))
            for name, v in eps.items()}


def _baseline(**eps):
    return {"workloads": {name: {"events_per_sec": float(v)}
                          for name, v in eps.items()}}


def test_compare_flags_regressions_beyond_tolerance():
    baseline = _baseline(flow_churn=1000.0, netpipe=2000.0)
    ok = compare_to_baseline(_results(flow_churn=800.0, netpipe=1500.0),
                             baseline, tolerance=0.30)
    assert ok == []
    bad = compare_to_baseline(_results(flow_churn=600.0, netpipe=1500.0),
                              baseline, tolerance=0.30)
    assert len(bad) == 1 and "flow_churn" in bad[0]


def test_compare_ignores_missing_and_extra_workloads():
    baseline = _baseline(flow_churn=1000.0, ghost=9e9)
    results = _results(flow_churn=950.0, newcomer=1.0)
    assert compare_to_baseline(results, baseline) == []


def test_suite_report_shape_and_speedup():
    results = _results(flow_churn=2000.0)
    report = suite_report(results, "smoke", 3,
                          kernel_before={"flow_churn":
                                         {"events_per_sec": 500.0}})
    assert report["schema"] == "repro.perf/1"
    assert report["workloads"]["flow_churn"]["events_per_sec"] == 2000.0
    assert report["meta"]["flow_churn_speedup_vs_before"] == 4.0
    assert report["kernel_before"]["flow_churn"]["events_per_sec"] == 500.0


def test_load_baseline_missing_returns_none(tmp_path):
    assert load_baseline(str(tmp_path / "nope.json")) is None
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"workloads": {}}))
    assert load_baseline(str(path)) == {"workloads": {}}


# ------------------------------------------------------------------- CLI
def test_cli_help_and_regression_exit_codes(tmp_path):
    from repro.perf.__main__ import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0

    args = ["--only", "flow_churn", "--repeat", "1"]
    baseline = tmp_path / "bench.json"

    # no baseline: measure-only, exit 0
    assert main(args + ["--baseline", str(baseline)]) == 0

    # --update writes a baseline the same run then passes against
    assert main(args + ["--baseline", str(baseline), "--update"]) == 0
    assert baseline.exists()
    assert main(args + ["--baseline", str(baseline)]) == 0

    # an absurdly fast fake baseline must fail the check
    doc = json.loads(baseline.read_text())
    doc["workloads"]["flow_churn"]["events_per_sec"] = 1e12
    baseline.write_text(json.dumps(doc))
    assert main(args + ["--baseline", str(baseline)]) == 1
