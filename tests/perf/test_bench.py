"""The repro.perf subsystem: workloads, baseline policy, CLI.

The perf suite is a *measured claim* like every figure: these tests pin
that the workloads are deterministic in their work (events are exactly
reproducible even though wall time is not), that the regression policy
fires on real slowdowns and nothing else, and that the CLI exit codes are
what CI keys on.
"""

import json

import pytest

from repro.perf import (
    SUITES,
    WORKLOADS,
    compare_to_baseline,
    load_baseline,
    run_suite,
    run_workload,
    suite_report,
)
from repro.perf.bench import BenchResult, compare_counts
from repro.perf.workloads import flow_churn, scale_10k, suite_params


# -------------------------------------------------------------- workloads
def test_workload_registry_matches_suites():
    for suite, params in SUITES.items():
        assert set(params) <= set(WORKLOADS), suite
    with pytest.raises(KeyError):
        suite_params("nope")


def test_flow_churn_deterministic_work():
    """Same parameters -> exactly the same useful events and engine pops
    (the numerator of events/sec is wall-clock-free)."""
    a = flow_churn(churn=60, persistent=8, cancel_every=5)
    b = flow_churn(churn=60, persistent=8, cancel_every=5)
    assert a.events == b.events
    assert a.pops == b.pops
    assert a.events > 0


def test_flow_churn_exercises_cancellation():
    run = flow_churn(churn=60, persistent=8, cancel_every=5)
    # every 5th churn flow is cancelled: completions < flows started
    assert run.extra["churn"] == 60
    assert run.events < 60 + 8 + 1


def test_every_baseline_workload_is_exercised_by_a_suite():
    """Every workload recorded in the committed BENCH_engine.json is still
    runnable via ``--suite smoke`` or ``--suite full`` — a renamed or
    dropped workload must take its baseline entry with it, or the count
    gate silently stops covering it."""
    from repro.perf.bench import DEFAULT_BASELINE

    baseline = load_baseline(DEFAULT_BASELINE)
    assert baseline is not None, "committed baseline missing"
    recorded = set(baseline.get("workloads", {}))
    assert recorded, "committed baseline records no workloads"
    for suite in ("smoke", "full"):
        missing = recorded - set(suite_params(suite))
        assert not missing, (
            f"baseline workloads {sorted(missing)} not exercised by "
            f"--suite {suite}"
        )
    # and the converse: the registry itself is fully suite-covered
    for suite in ("smoke", "full"):
        assert set(suite_params(suite)) == set(WORKLOADS)


def test_scale_10k_workload_deterministic_and_scaled_down_runnable():
    """The 10k-rank wave is parameterised, so tier-1 can pin its machinery
    at a CI-friendly size; the bench suites run it at the full 10,000."""
    a = scale_10k(n_procs=64, rounds=1)
    b = scale_10k(n_procs=64, rounds=1)
    assert a.events == b.events > 0
    assert a.extra["n_procs"] == 64
    for suite in ("smoke", "full"):
        assert suite_params(suite)["scale_10k"]["n_procs"] == 10_000


def test_run_workload_measures_and_keeps_best():
    walls = iter([0.0, 5.0, 5.0, 7.0, 7.0, 8.0])  # 3 repeats: 5s, 2s, 1s
    result = run_workload("flow_churn",
                          {"churn": 10, "persistent": 2, "cancel_every": 3},
                          repeat=3, clock=lambda: next(walls))
    assert result.wall == 1.0
    assert result.events_per_sec == pytest.approx(result.events / 1.0)


# ------------------------------------------------------- regression policy
def _results(**eps):
    return {name: BenchResult(name=name, wall=1.0, events=int(v), pops=int(v),
                              events_per_sec=float(v))
            for name, v in eps.items()}


def _baseline(**eps):
    return {"workloads": {name: {"events_per_sec": float(v)}
                          for name, v in eps.items()}}


def test_compare_flags_regressions_beyond_tolerance():
    baseline = _baseline(flow_churn=1000.0, netpipe=2000.0)
    ok = compare_to_baseline(_results(flow_churn=800.0, netpipe=1500.0),
                             baseline, tolerance=0.30)
    assert ok == []
    bad = compare_to_baseline(_results(flow_churn=600.0, netpipe=1500.0),
                              baseline, tolerance=0.30)
    assert len(bad) == 1 and "flow_churn" in bad[0]


def test_compare_ignores_missing_and_extra_workloads():
    baseline = _baseline(flow_churn=1000.0, ghost=9e9)
    results = _results(flow_churn=950.0, newcomer=1.0)
    assert compare_to_baseline(results, baseline) == []


def _counted_results(**counts):
    return {name: BenchResult(name=name, wall=1.0, events=ev, pops=pop,
                              events_per_sec=float(ev))
            for name, (ev, pop) in counts.items()}


def _counted_baseline(**counts):
    return {"workloads": {name: {"events_per_sec": float(ev),
                                 "events": ev, "pops": pop}
                          for name, (ev, pop) in counts.items()},
            "meta": {"suite": "full"}}


def test_compare_counts_flags_any_deterministic_drift():
    """The secondary gate is exact: a single event or pop of drift fails,
    independent of wall time."""
    baseline = _counted_baseline(bt_wave=(1000, 2000), netpipe=(50, 50))
    assert compare_counts(
        _counted_results(bt_wave=(1000, 2000), netpipe=(50, 50)),
        baseline) == []
    drifted = compare_counts(
        _counted_results(bt_wave=(1001, 2000), netpipe=(50, 51)),
        baseline)
    assert len(drifted) == 2
    assert any("bt_wave" in m and "1001 events" in m for m in drifted)
    assert any("netpipe" in m and "51 engine pops" in m for m in drifted)


def test_compare_counts_ignores_missing_and_uncounted():
    """Workloads absent from the run, and baseline entries predating the
    count fields, are skipped — the gate never invents a failure."""
    baseline = _counted_baseline(bt_wave=(1000, 2000))
    baseline["workloads"]["legacy"] = {"events_per_sec": 1.0}
    assert compare_counts(_counted_results(legacy=(7, 7)), baseline) == []


def test_suite_report_shape_and_speedup():
    results = _results(flow_churn=2000.0)
    report = suite_report(results, "smoke", 3,
                          kernel_before={"flow_churn":
                                         {"events_per_sec": 500.0}})
    assert report["schema"] == "repro.perf/1"
    assert report["workloads"]["flow_churn"]["events_per_sec"] == 2000.0
    assert report["meta"]["flow_churn_speedup_vs_before"] == 4.0
    assert report["kernel_before"]["flow_churn"]["events_per_sec"] == 500.0


def test_load_baseline_missing_returns_none(tmp_path):
    assert load_baseline(str(tmp_path / "nope.json")) is None
    path = tmp_path / "bench.json"
    path.write_text(json.dumps({"workloads": {}}))
    assert load_baseline(str(path)) == {"workloads": {}}


# ------------------------------------------------------------------- CLI
def test_cli_help_and_regression_exit_codes(tmp_path):
    from repro.perf.__main__ import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0

    args = ["--only", "flow_churn", "--repeat", "1"]
    baseline = tmp_path / "bench.json"

    # no baseline: measure-only, exit 0
    assert main(args + ["--baseline", str(baseline)]) == 0

    # --update writes a baseline the same run then passes against
    assert main(args + ["--baseline", str(baseline), "--update"]) == 0
    assert baseline.exists()
    assert main(args + ["--baseline", str(baseline)]) == 0

    # an absurdly fast fake baseline must fail the check
    doc = json.loads(baseline.read_text())
    doc["workloads"]["flow_churn"]["events_per_sec"] = 1e12
    baseline.write_text(json.dumps(doc))
    assert main(args + ["--baseline", str(baseline)]) == 1


def test_cli_wall_advisory_demotes_timing_but_not_counts(tmp_path, capsys):
    """``--wall-advisory``: wall-clock noise alone cannot fail the job,
    but the deterministic events/pops gate still does."""
    from repro.perf.__main__ import main

    args = ["--suite", "smoke", "--only", "flow_churn", "--repeat", "1"]
    baseline = tmp_path / "bench.json"
    assert main(args + ["--baseline", str(baseline), "--update"]) == 0

    # impossible wall baseline: plain run fails, advisory run passes
    doc = json.loads(baseline.read_text())
    doc["workloads"]["flow_churn"]["events_per_sec"] = 1e12
    baseline.write_text(json.dumps(doc))
    assert main(args + ["--baseline", str(baseline)]) == 1
    assert main(args + ["--baseline", str(baseline),
                        "--wall-advisory"]) == 0
    assert "ADVISORY" in capsys.readouterr().err

    # corrupt the *count*: even --wall-advisory must fail
    doc["workloads"]["flow_churn"]["events"] += 1
    baseline.write_text(json.dumps(doc))
    result = main(args + ["--baseline", str(baseline), "--wall-advisory"])
    captured = capsys.readouterr()
    assert result == 1
    assert "REGRESSION" in captured.err
    assert "changed behaviour" in captured.err


def test_cli_skips_count_gate_on_suite_mismatch(tmp_path, capsys):
    """A smoke run judged against a full-suite baseline compares wall
    throughput only — the counts differ by parameterisation, not drift."""
    from repro.perf.__main__ import main

    args = ["--only", "flow_churn", "--repeat", "1"]
    baseline = tmp_path / "bench.json"
    assert main(args + ["--suite", "full", "--baseline", str(baseline),
                        "--update"]) == 0
    # the full baseline's counts are wrong for smoke, but must not gate...
    assert main(args + ["--suite", "smoke",
                        "--baseline", str(baseline)]) == 0
    assert "counts not compared" in capsys.readouterr().out
    # ...while the same baseline judged at its own suite does gate
    doc = json.loads(baseline.read_text())
    doc["workloads"]["flow_churn"]["pops"] += 1
    baseline.write_text(json.dumps(doc))
    assert main(args + ["--suite", "full",
                        "--baseline", str(baseline)]) == 1
