"""Unit tests for cluster/grid topologies, placement and fabrics."""

import pytest

from repro.net import (
    ClusterNetwork,
    GIGABIT_ETHERNET,
    GRID5000_WAN,
    GridNetwork,
    MYRINET_GM,
    grid5000,
)
from repro.net.node import Disk
from repro.sim import Simulator


# ------------------------------------------------------------- placement
def test_place_one_per_node_first():
    sim = Simulator()
    net = ClusterNetwork(sim, n_nodes=8)
    eps = net.place(8)
    assert len({e.node.name for e in eps}) == 8
    assert all(e.slot == 0 for e in eps)


def test_place_spills_to_second_slot():
    sim = Simulator()
    net = ClusterNetwork(sim, n_nodes=8)
    eps = net.place(12)
    slots = [e.slot for e in eps]
    assert slots.count(0) == 8 and slots.count(1) == 4


def test_place_explicit_two_per_node():
    sim = Simulator()
    net = ClusterNetwork(sim, n_nodes=8)
    eps = net.place(16, procs_per_node=2)
    assert len({e.node.name for e in eps}) == 8


def test_place_too_many_raises():
    sim = Simulator()
    net = ClusterNetwork(sim, n_nodes=2, n_slots=2)
    with pytest.raises(ValueError):
        net.place(5)


def test_cluster_needs_nodes():
    with pytest.raises(ValueError):
        ClusterNetwork(Simulator(), n_nodes=0)


# ------------------------------------------------------------------ grid
def test_grid5000_composition():
    sim = Simulator()
    grid = grid5000(sim)
    assert sum(len(c.nodes) for c in grid.clusters.values()) == 544
    assert set(grid.clusters) == {
        "bordeaux", "lille", "orsay", "rennes", "sophia", "toulouse",
    }


def test_grid_place_fills_sites_in_order():
    sim = Simulator()
    grid = grid5000(sim)
    eps = grid.place(60)
    sites = grid.sites_used(eps)
    assert sites == ["bordeaux", "lille"]


def test_grid_place_529():
    sim = Simulator()
    grid = grid5000(sim)
    eps = grid.place(529)
    assert len(eps) == 529
    assert len(grid.sites_used(eps)) >= 5


def test_grid_too_small():
    sim = Simulator()
    grid = GridNetwork(sim, [("a", 1)], n_slots=1)
    with pytest.raises(ValueError):
        grid.place(2)


def test_intercluster_latency_dominates():
    sim = Simulator()
    grid = GridNetwork(sim, [("a", 2), ("b", 2)])
    a = grid.place(1)[0]
    b_node = grid.clusters["b"].nodes[0]
    from repro.net.topology import Endpoint
    b = Endpoint(b_node, 0)
    conn = grid.connect(a, b)
    ea, eb = conn.ends()

    def roundtrip():
        ea.send("x", nbytes=0)
        yield eb.recv()
        return sim.now

    t = sim.run_until_complete(sim.process(roundtrip()))
    assert t == pytest.approx(GRID5000_WAN.latency)
    assert t / GIGABIT_ETHERNET.latency == pytest.approx(100.0)


def test_intercluster_bandwidth_capped():
    sim = Simulator()
    grid = GridNetwork(sim, [("a", 2), ("b", 2)])
    from repro.net.topology import Endpoint
    a = Endpoint(grid.clusters["a"].nodes[0], 0)
    b = Endpoint(grid.clusters["b"].nodes[0], 0)
    ea, eb = grid.connect(a, b).ends()
    nbytes = GRID5000_WAN.per_flow_cap  # exactly 1 s at the WAN cap

    def xfer():
        ea.send("bulk", nbytes=nbytes)
        yield eb.recv()
        return sim.now

    t = sim.run_until_complete(sim.process(xfer()))
    assert t == pytest.approx(1.0 + GRID5000_WAN.latency, rel=1e-3)


def test_intracluster_path_inside_grid_is_fast():
    sim = Simulator()
    grid = GridNetwork(sim, [("a", 3)])
    eps = grid.place(2)
    ea, eb = grid.connect(eps[0], eps[1]).ends()

    def ping():
        ea.send("x", nbytes=0)
        yield eb.recv()
        return sim.now

    t = sim.run_until_complete(sim.process(ping()))
    assert t == pytest.approx(GIGABIT_ETHERNET.latency)


# --------------------------------------------------------------- fabrics
def test_fabric_transfer_time():
    assert GIGABIT_ETHERNET.transfer_time(0) == GIGABIT_ETHERNET.latency
    t = MYRINET_GM.transfer_time(240e6)
    assert t == pytest.approx(1.0 + MYRINET_GM.latency)


def test_wan_transfer_uses_flow_cap():
    t = GRID5000_WAN.transfer_time(GRID5000_WAN.per_flow_cap)
    assert t == pytest.approx(1.0 + GRID5000_WAN.latency)


def test_fabric_ratios_match_paper():
    """Sec. 5.4: ~20x bandwidth and ~100x latency between WAN and LAN."""
    assert GRID5000_WAN.latency / GIGABIT_ETHERNET.latency == pytest.approx(100.0)
    assert GIGABIT_ETHERNET.bandwidth / GRID5000_WAN.per_flow_cap == pytest.approx(20.0)


# ------------------------------------------------------------------ disk
def test_disk_serializes_writes():
    sim = Simulator()
    disk = Disk(sim, "d", write_bandwidth=100.0)

    def writer():
        yield disk.write(500.0)
        return sim.now

    p1 = sim.process(writer())
    p2 = sim.process(writer())
    sim.run()
    times = sorted([p1.value, p2.value])
    assert times == [pytest.approx(5.0), pytest.approx(10.0)]
    assert disk.bytes_written == 1000.0


def test_disk_read_write_bandwidths_differ():
    sim = Simulator()
    disk = Disk(sim, "d", write_bandwidth=100.0, read_bandwidth=200.0)

    def reader():
        yield disk.read(400.0)
        return sim.now

    assert sim.run_until_complete(sim.process(reader())) == pytest.approx(2.0)
    assert disk.bytes_read == 400.0


def test_disk_negative_size_rejected():
    sim = Simulator()
    disk = Disk(sim, "d")

    def bad():
        yield disk.write(-1.0)

    with pytest.raises(ValueError):
        sim.run_until_complete(sim.process(bad()))


def test_node_fail_and_restore():
    sim = Simulator()
    net = ClusterNetwork(sim, n_nodes=1)
    node = net.nodes[0]
    assert node.alive
    node.fail()
    assert not node.alive
    node.restore()
    assert node.alive
