"""Grid-scale failure/recovery: rollback across WAN-separated sites."""

import pytest

from repro.apps import BT
from repro.runtime import DeploymentSpec, build_run
from repro.sim import Simulator


def test_grid_recovery_with_remote_image_fetch():
    """Kill a whole node on the grid with spare-node policy: its rank's
    image must be fetched from the (possibly remote) checkpoint server."""
    sim = Simulator(seed=17)
    bench = BT(klass="A", scale=0.08)
    spec = DeploymentSpec(
        n_procs=16, protocol="pcl", network="grid5000", n_servers=2,
        period=2.0, image_bytes=bench.image_bytes(16) * 0.08,
        fork_latency=0.01, restart_policy="spare",
    )
    run = build_run(sim, spec, bench.make_app(16), name="gridfail")
    run.start()
    run.schedule_node_kill(5, 6.0)
    sim.run_until_complete(run.completed, limit=1e6)
    assert run.stats.restarts == 1
    # the victim's machine lost its local image: at least one remote restore
    assert sim.trace["ft.restore_remote"] >= 1
    for ctx in run.job.contexts:
        assert ctx.state["iteration"] == bench.iterations()


def test_grid_task_kill_restores_locally():
    sim = Simulator(seed=17)
    bench = BT(klass="A", scale=0.08)
    spec = DeploymentSpec(
        n_procs=16, protocol="pcl", network="grid5000", n_servers=2,
        period=2.0, image_bytes=bench.image_bytes(16) * 0.08,
        fork_latency=0.01,
    )
    run = build_run(sim, spec, bench.make_app(16), name="gridtask")
    run.start()
    run.schedule_task_kill(3, 6.0)
    sim.run_until_complete(run.completed, limit=1e6)
    assert run.stats.restarts == 1
    assert sim.trace["ft.restore_local"] >= 16  # every rank had a local copy
    assert sim.trace["ft.restore_remote"] == 0


def test_wan_crossing_job_completes_with_checkpoints():
    """A deployment spanning two sites checkpoints across the WAN."""
    sim = Simulator(seed=18)
    bench = BT(klass="A", scale=0.05)
    spec = DeploymentSpec(
        n_procs=64, protocol="pcl", network="grid5000", n_servers=4,
        period=3.0, image_bytes=1e6, fork_latency=0.01,
    )
    run = build_run(sim, spec, bench.make_app(64), name="wan")
    sites = {ep.node.cluster for ep in run.endpoints}
    assert len(sites) >= 2  # genuinely spans the WAN
    run.start()
    sim.run_until_complete(run.completed, limit=1e6)
    assert run.stats.waves_completed >= 1
