"""Unit tests for the fluid-flow bandwidth model."""

import pytest

from repro.net.flows import FlowScheduler
from repro.net.link import Link
from repro.sim import Simulator


def make(capacity=100.0):
    sim = Simulator()
    return sim, FlowScheduler(sim), Link("l", capacity)


def finish_time(sim, flow):
    sim.run_until_complete(flow.done)
    return sim.now


def test_single_flow_full_capacity():
    sim, sched, link = make(100.0)
    flow = sched.start([link], 1000.0)
    assert finish_time(sim, flow) == pytest.approx(10.0)


def test_zero_byte_flow_completes_immediately():
    sim, sched, link = make()
    flow = sched.start([link], 0.0)
    assert flow.finished
    sim.run()
    assert sim.now == 0.0


def test_empty_path_completes_immediately():
    sim, sched, _ = make()
    flow = sched.start([], 1e9)
    assert flow.finished


def test_negative_size_rejected():
    sim, sched, link = make()
    with pytest.raises(ValueError):
        sched.start([link], -1.0)


def test_two_flows_share_capacity():
    sim, sched, link = make(100.0)
    f1 = sched.start([link], 1000.0)
    f2 = sched.start([link], 1000.0)
    sim.run()
    # Both at 50 B/s -> both finish at t=20.
    assert f1.finished and f2.finished
    assert sim.now == pytest.approx(20.0)


def test_late_second_flow_slows_first():
    sim, sched, link = make(100.0)
    f1 = sched.start([link], 1000.0)
    done_times = {}
    f1.done.callbacks.append(lambda ev: done_times.setdefault("f1", sim.now))

    def second():
        yield sim.timeout(5.0)
        f2 = sched.start([link], 250.0)
        yield f2.done
        done_times["f2"] = sim.now

    sim.process(second())
    sim.run()
    # f1: 500 B in first 5 s, then shares: both run at 50 B/s.
    # f2 finishes at 5 + 250/50 = 10; f1 then has 250 B left at full rate
    # -> finishes at 10 + 250/100 = 12.5.
    assert done_times["f2"] == pytest.approx(10.0)
    assert done_times["f1"] == pytest.approx(12.5)


def test_flow_rate_capped():
    sim, sched, link = make(100.0)
    flow = sched.start([link], 100.0, cap=10.0)
    assert finish_time(sim, flow) == pytest.approx(10.0)


def test_bottleneck_is_slowest_link():
    sim = Simulator()
    sched = FlowScheduler(sim)
    fast = Link("fast", 1000.0)
    slow = Link("slow", 10.0)
    flow = sched.start([fast, slow], 100.0)
    assert finish_time(sim, flow) == pytest.approx(10.0)


def test_shared_middle_link():
    """Two flows sharing only a middle link each get half of it."""
    sim = Simulator()
    sched = FlowScheduler(sim)
    a_tx, b_tx = Link("a.tx", 1000.0), Link("b.tx", 1000.0)
    wan = Link("wan", 100.0)
    c_rx, d_rx = Link("c.rx", 1000.0), Link("d.rx", 1000.0)
    f1 = sched.start([a_tx, wan, c_rx], 500.0)
    f2 = sched.start([b_tx, wan, d_rx], 500.0)
    sim.run()
    assert sim.now == pytest.approx(10.0)
    assert f1.finished and f2.finished


def test_cancel_frees_bandwidth():
    sim, sched, link = make(100.0)
    f1 = sched.start([link], 1000.0)
    f2 = sched.start([link], 1000.0)
    f2.done.defused = True

    def canceller():
        yield sim.timeout(10.0)
        sched.cancel(f2)
        yield f1.done
        return sim.now

    proc = sim.process(canceller())
    # 10 s at 50 B/s leaves f1 500 B; then full rate -> +5 s.
    assert sim.run_until_complete(proc) == pytest.approx(15.0)


def test_cancel_fails_done_event():
    sim, sched, link = make(100.0)
    flow = sched.start([link], 1000.0)

    def waiter():
        with pytest.raises(ConnectionError):
            yield flow.done
        return "ok"

    proc = sim.process(waiter())
    sim.call_at(1.0, sched.cancel, flow)
    assert sim.run_until_complete(proc) == "ok"
    assert flow.cancelled and not flow.finished


def test_cancel_finished_flow_is_noop():
    sim, sched, link = make(100.0)
    flow = sched.start([link], 100.0)
    sim.run()
    assert flow.finished
    sched.cancel(flow)
    assert flow.finished and not flow.cancelled


def test_links_emptied_after_completion():
    sim, sched, link = make(100.0)
    sched.start([link], 100.0)
    sim.run()
    assert link.n_flows == 0
    assert not sched.active


def test_many_flows_conserve_throughput():
    sim, sched, link = make(100.0)
    flows = [sched.start([link], 100.0) for _ in range(10)]
    sim.run()
    assert all(f.finished for f in flows)
    # 1000 bytes over a 100 B/s link: exactly 10 s regardless of sharing.
    assert sim.now == pytest.approx(10.0)


def test_fair_share_helper():
    link = Link("l", 100.0)
    assert link.fair_share() == 100.0


def test_link_capacity_validation():
    with pytest.raises(ValueError):
        Link("bad", 0.0)
