"""FlowScheduler vs. a naive reference implementation.

The production scheduler is incremental: per-flow cancellable finish
timers, cancel-and-re-arm rescheduling, merged per-link neighbour lists.
The reference below is deliberately dumb — at every change point it settles
*every* flow and rescans *all* of them for the next completion — so any
bookkeeping bug in the fast path (a timer that should have been cancelled,
a re-arm that was dropped, a neighbour missed by the merge) shows up as a
divergence in completion times or byte accounting.

Random programs (hypothesis) drive both through identical start/cancel
schedules over shared links; finish times and remaining-byte counts must
agree to float tolerance, cancelled flows must never complete, and the
engine ends every run with a clean heap (no tombstone debt).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.flows import FlowScheduler
from repro.net.link import Link
from repro.sim import Simulator

#: matches repro.net.flows._EPSILON_BYTES
EPSILON_BYTES = 1e-6

#: float-drift tolerance when comparing the two models
REL = 1e-6


class ReferenceScheduler:
    """Event-free fluid model, recomputed from scratch at every change.

    Mirrors the production model's semantics: rate = min over the path of
    ``capacity / n_flows`` (and the flow cap); every change point settles
    every flow; a flow finishes when its remaining bytes fall to (float)
    zero at the piecewise-linear breakpoint.
    """

    def __init__(self, capacities):
        self.capacity = dict(capacities)
        self.flows = []
        self.now = 0.0
        self.finished = {}  # flow id -> finish time
        self.cancelled_remaining = {}  # flow id -> bytes left at cancel

    def _rates(self):
        counts = {}
        for flow in self.flows:
            for link in flow["links"]:
                counts[link] = counts.get(link, 0) + 1
        rates = {}
        for flow in self.flows:
            rate = min(self.capacity[l] / counts[l] for l in flow["links"])
            if flow["cap"] is not None:
                rate = min(rate, flow["cap"])
            rates[flow["id"]] = rate
        return rates

    def _advance(self, until):
        while self.flows:
            rates = self._rates()
            next_finish, next_flow = None, None
            for flow in self.flows:
                rate = rates[flow["id"]]
                if rate <= 0:
                    continue
                at = self.now + flow["remaining"] / rate
                if next_finish is None or at < next_finish:
                    next_finish, next_flow = at, flow
            if next_finish is None or next_finish > until:
                break
            elapsed = next_finish - self.now
            for flow in self.flows:
                flow["remaining"] = max(
                    0.0, flow["remaining"] - rates[flow["id"]] * elapsed)
            self.now = next_finish
            self.finished[next_flow["id"]] = self.now
            self.flows.remove(next_flow)
        if until < math.inf:
            rates = self._rates()
            elapsed = until - self.now
            if elapsed > 0:
                for flow in self.flows:
                    flow["remaining"] = max(
                        0.0, flow["remaining"] - rates[flow["id"]] * elapsed)
            self.now = until

    def start(self, at, flow_id, links, nbytes, cap):
        self._advance(at)
        if nbytes <= EPSILON_BYTES or not links:
            self.finished[flow_id] = at
            return
        self.flows.append({"id": flow_id, "links": tuple(links),
                           "remaining": float(nbytes), "cap": cap})

    def cancel(self, at, flow_id):
        self._advance(at)
        for flow in self.flows:
            if flow["id"] == flow_id:
                self.cancelled_remaining[flow_id] = flow["remaining"]
                self.flows.remove(flow)
                return

    def drain(self):
        self._advance(math.inf)


program = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),  # start gap
        st.floats(min_value=1.0, max_value=5e5, allow_nan=False),  # bytes
        st.sampled_from([None, 2e4, 1e5]),                         # cap
        st.sets(st.integers(min_value=0, max_value=2),             # link path
                min_size=1, max_size=3),
        st.one_of(st.none(),                                       # cancel gap
                  st.floats(min_value=0.0, max_value=3.0,
                            allow_nan=False)),
    ),
    min_size=1, max_size=12,
)


@given(program)
@settings(max_examples=60, deadline=None)
def test_scheduler_matches_reference(spec):
    capacities = {0: 1e5, 1: 5e4, 2: 2e5}
    links = {i: Link(f"l{i}", capacities[i]) for i in capacities}

    sim = Simulator()
    scheduler = FlowScheduler(sim)
    reference = ReferenceScheduler(capacities)

    begun = {}
    finished = {}
    cancelled = {}  # flow id -> (cancel time, bytes remaining at cancel)
    cancel_ats = {}
    ops = []  # (time, schedule seq, kind, payload) — engine tie-break order
    at = 0.0
    for flow_id, (gap, nbytes, cap, path, cancel_gap) in enumerate(spec):
        at += gap
        path = sorted(path)

        def begin(flow_id=flow_id, nbytes=nbytes, cap=cap, path=path):
            flow = scheduler.start([links[i] for i in path], nbytes, cap=cap)
            begun[flow_id] = flow
            flow.done.callbacks.append(
                lambda _ev, flow_id=flow_id: finished.setdefault(
                    flow_id, sim.now))

        sim.call_at(at, begin)
        ops.append((at, len(ops), "start", (flow_id, path, nbytes, cap)))
        if cancel_gap is not None:
            cancel_at = at + cancel_gap
            cancel_ats[flow_id] = cancel_at

            def do_cancel(flow_id=flow_id):
                flow = begun.get(flow_id)
                if flow is not None and flow.active:
                    scheduler._settle(flow, sim.now)
                    cancelled[flow_id] = (sim.now, flow.bytes_remaining)
                    scheduler.cancel(flow)

            sim.call_at(cancel_at, do_cancel)
            ops.append((cancel_at, len(ops), "cancel", flow_id))

    sim.run()
    # Replay the same ops into the reference in event order — (time, seq) is
    # exactly how the engine breaks same-timestamp ties between the timers
    # scheduled above.
    for op_at, _seq, kind, payload in sorted(ops, key=lambda op: op[:2]):
        if kind == "start":
            flow_id, path, nbytes, cap = payload
            reference.start(op_at, flow_id, path, nbytes, cap)
        else:
            reference.cancel(op_at, payload)
    reference.drain()
    assert not scheduler.active

    for flow_id in range(len(spec)):
        ref_done = reference.finished.get(flow_id)
        if flow_id in cancelled:
            # the production run cancelled this flow: it must never complete,
            # and both models must agree (to drift) on the bytes left behind
            flow = begun[flow_id]
            assert flow.cancelled and not flow.finished
            ref_left = reference.cancelled_remaining.get(flow_id)
            if ref_left is not None:
                got_left = cancelled[flow_id][1]
                assert got_left == pytest.approx(ref_left, rel=REL, abs=1e-3)
            else:
                # tie: the reference completed exactly at the cancel point
                assert ref_done == pytest.approx(cancel_ats[flow_id],
                                                 rel=REL, abs=1e-9)
            continue
        got_done = finished.get(flow_id)
        if ref_done is None:
            # only a cancel-time tie (production finished at the instant the
            # reference cancelled) may explain a production completion
            assert got_done is not None
            assert got_done == pytest.approx(cancel_ats[flow_id],
                                             rel=REL, abs=1e-9)
        else:
            assert got_done is not None, (
                f"flow {flow_id} never finished; reference says {ref_done}")
            assert got_done == pytest.approx(ref_done, rel=REL, abs=1e-9)

    # heap hygiene: a fully drained run leaves no tombstone debt behind
    assert not sim._heap
    assert sim._tombstones == 0
