"""Unit tests for TCP-like connections."""

import pytest

from repro.net import BrokenConnectionError, ClusterNetwork
from repro.sim import Simulator


def small_net(n_nodes=4):
    sim = Simulator()
    net = ClusterNetwork(sim, n_nodes=n_nodes)
    return sim, net


def test_send_recv_roundtrip():
    sim, net = small_net()
    a, b = net.place(2)
    conn = net.connect(a, b)
    ea, eb = conn.ends()

    def sender():
        yield ea.send("hello", nbytes=1000)

    def receiver():
        msg = yield eb.recv()
        return (sim.now, msg)

    sim.process(sender())
    proc = sim.process(receiver())
    t, msg = sim.run_until_complete(proc)
    assert msg == "hello"
    # latency + 1000B at 117 MB/s
    expected = net.fabric.latency + 1000 / net.fabric.bandwidth
    assert t == pytest.approx(expected, rel=1e-6)


def test_fifo_ordering():
    sim, net = small_net()
    a, b = net.place(2)
    ea, eb = net.connect(a, b).ends()
    for i in range(20):
        ea.send(i, nbytes=100 * (20 - i))  # shrinking sizes must not reorder

    def receiver():
        out = []
        for _ in range(20):
            out.append((yield eb.recv()))
        return out

    proc = sim.process(receiver())
    assert sim.run_until_complete(proc) == list(range(20))


def test_duplex_is_independent():
    sim, net = small_net()
    a, b = net.place(2)
    ea, eb = net.connect(a, b).ends()
    ea.send("ping", nbytes=10)
    eb.send("pong", nbytes=10)

    def recv_both():
        x = yield eb.recv()
        y = yield ea.recv()
        return (x, y)

    assert sim.run_until_complete(sim.process(recv_both())) == ("ping", "pong")


def test_try_recv_and_pending():
    sim, net = small_net()
    a, b = net.place(2)
    ea, eb = net.connect(a, b).ends()
    assert eb.try_recv() is None
    ea.send("m", nbytes=1)
    sim.run()
    assert eb.pending() == 1
    assert eb.try_recv() == "m"
    assert eb.pending() == 0


def test_break_wakes_blocked_reader():
    sim, net = small_net()
    a, b = net.place(2)
    conn = net.connect(a, b)
    _, eb = conn.ends()

    def reader():
        with pytest.raises(BrokenConnectionError):
            yield eb.recv()
        return sim.now

    proc = sim.process(reader())
    sim.call_at(3.0, conn.break_)
    assert sim.run_until_complete(proc) == 3.0


def test_send_on_broken_connection_raises():
    sim, net = small_net()
    a, b = net.place(2)
    conn = net.connect(a, b)
    ea, _ = conn.ends()
    conn.break_()
    with pytest.raises(BrokenConnectionError):
        ea.send("x", nbytes=1)


def test_break_drops_in_flight_messages():
    sim, net = small_net()
    a, b = net.place(2)
    conn = net.connect(a, b)
    ea, eb = conn.ends()
    ea.send("big", nbytes=117e6)  # ~1 s of transfer

    def reader():
        with pytest.raises(BrokenConnectionError):
            yield eb.recv()

    proc = sim.process(reader())
    sim.call_at(0.1, conn.break_)
    sim.run_until_complete(proc)
    assert conn.broken


def test_break_is_idempotent():
    sim, net = small_net()
    a, b = net.place(2)
    conn = net.connect(a, b)
    conn.break_()
    conn.break_()
    assert conn.broken


def test_fail_node_breaks_its_connections_only():
    sim, net = small_net(n_nodes=4)
    eps = net.place(4)
    c01 = net.connect(eps[0], eps[1])
    c23 = net.connect(eps[2], eps[3])
    broken = net.fail_node(eps[0].node)
    assert c01 in broken
    assert c01.broken and not c23.broken
    assert not eps[0].node.alive


def test_connect_to_dead_node_refused():
    sim, net = small_net()
    eps = net.place(2)
    net.fail_node(eps[1].node)
    with pytest.raises(ConnectionRefusedError):
        net.connect(eps[0], eps[1])


def test_sent_event_fires_at_transmit_completion():
    sim, net = small_net()
    a, b = net.place(2)
    ea, _ = net.connect(a, b).ends()

    def sender():
        yield ea.send("x", nbytes=net.fabric.bandwidth)  # exactly 1 s
        return sim.now

    assert sim.run_until_complete(sim.process(sender())) == pytest.approx(1.0)


def test_nic_sharing_between_two_connections():
    """Two simultaneous bulk sends from one node share its NIC."""
    sim, net = small_net(n_nodes=3)
    eps = net.place(3)
    e1, _ = net.connect(eps[0], eps[1]).ends()
    e2, _ = net.connect(eps[0], eps[2]).ends()
    nbytes = net.fabric.bandwidth  # 1 s alone

    def sender(end):
        yield end.send("bulk", nbytes=nbytes)
        return sim.now

    p1 = sim.process(sender(e1))
    p2 = sim.process(sender(e2))
    sim.run()
    # Shared NIC: each flow at half rate -> ~2 s.
    assert p1.value == pytest.approx(2.0, rel=1e-3)
    assert p2.value == pytest.approx(2.0, rel=1e-3)


def test_same_node_connection_uses_memory_link():
    sim, net = small_net(n_nodes=1)
    eps = net.place(2)  # two slots on the single node
    assert eps[0].node is eps[1].node
    ea, eb = net.connect(eps[0], eps[1]).ends()

    def roundtrip():
        ea.send("m", nbytes=0)
        msg = yield eb.recv()
        return (sim.now, msg)

    t, _msg = sim.run_until_complete(sim.process(roundtrip()))
    assert t == pytest.approx(net.shm_fabric.latency)
