"""Tests of the NAS benchmark skeletons."""

import pytest

from repro.apps import BENCHMARKS, BT, CG, FTBench, LU, MG
from repro.mpi import FtSockChannel, MPIJob
from repro.net import ClusterNetwork
from repro.sim import Simulator


def run_bench(bench, p, seed=2, n_nodes=None, limit=1e7):
    sim = Simulator(seed=seed)
    net = ClusterNetwork(sim, n_nodes=n_nodes or p)
    endpoints = net.place(p)
    job = MPIJob(sim, net, endpoints, bench.make_app(p), FtSockChannel,
                 image_bytes=bench.image_bytes(p))
    job.start()
    elapsed = sim.run_until_complete(job.completed, limit=limit)
    return sim, job, elapsed


# --------------------------------------------------------------- validation
def test_unknown_class_rejected():
    with pytest.raises(ValueError):
        BT(klass="Z")


def test_bad_scale_rejected():
    with pytest.raises(ValueError):
        BT(scale=0.0)
    with pytest.raises(ValueError):
        BT(scale=1.5)


def test_bt_requires_square():
    with pytest.raises(ValueError):
        BT().validate_procs(6)
    BT().validate_procs(16)


def test_cg_requires_power_of_two():
    with pytest.raises(ValueError):
        CG().validate_procs(6)
    CG().validate_procs(32)


def test_ft_requires_power_of_two():
    with pytest.raises(ValueError):
        FTBench().validate_procs(12)


# ------------------------------------------------------------------- sizes
def test_image_bytes_shrink_with_more_procs():
    bench = BT(klass="B")
    assert bench.image_bytes(64) < bench.image_bytes(16)
    # runtime overhead keeps a floor
    assert bench.image_bytes(10_000) > 20e6


def test_bt_face_bytes_scale_with_class():
    assert BT(klass="C").face_bytes(64) > BT(klass="B").face_bytes(64)


def test_cg_exchange_bytes():
    # p=64 -> 8x8 grid -> a row-block is N/8 doubles
    assert CG(klass="C").exchange_bytes(64) == pytest.approx(
        8 * 150_000 / 8)


def test_compute_scales_inversely_with_procs():
    bench = BT(klass="B")
    assert bench.compute_seconds_per_iteration(64) == pytest.approx(
        bench.compute_seconds_per_iteration(16) / 4)


def test_scale_reduces_iterations_only():
    full, quick = BT(klass="B"), BT(klass="B", scale=0.1)
    assert quick.iterations() == 20 and full.iterations() == 200
    assert quick.compute_seconds_per_iteration(64) == full.compute_seconds_per_iteration(64)


def test_describe_mentions_class_and_size():
    text = BT(klass="B").describe(64)
    assert "bt.B" in text and "p=64" in text


# --------------------------------------------------------------- execution
@pytest.mark.parametrize("bench_cls,p", [(BT, 4), (BT, 9), (LU, 4), (MG, 4)])
def test_square_benchmarks_run(bench_cls, p):
    bench = bench_cls(klass="A", scale=0.02)
    sim, job, elapsed = run_bench(bench, p)
    for ctx in job.contexts:
        assert ctx.state["iteration"] == bench.iterations()
    assert elapsed > 0


@pytest.mark.parametrize("bench_cls,p", [(CG, 4), (CG, 8), (FTBench, 4)])
def test_pow2_benchmarks_run(bench_cls, p):
    bench = bench_cls(klass="A", scale=0.2)
    sim, job, elapsed = run_bench(bench, p)
    for ctx in job.contexts:
        assert ctx.state["iteration"] == bench.iterations()


def test_bt_single_process():
    bench = BT(klass="A", scale=0.02)
    sim, job, elapsed = run_bench(bench, 1)
    assert job.contexts[0].state["iteration"] == bench.iterations()


def test_bt_completion_time_reasonable():
    """Completion must exceed the compute bound but not wildly."""
    bench = BT(klass="A", scale=0.05)
    sim, job, elapsed = run_bench(bench, 4)
    bound = bench.expected_time(4)
    assert elapsed >= bound
    assert elapsed < bound * 2.0


def test_nas_runs_deterministic():
    bench = BT(klass="A", scale=0.02)
    t1 = run_bench(bench, 4, seed=3)[2]
    t2 = run_bench(BT(klass="A", scale=0.02), 4, seed=3)[2]
    assert t1 == t2


def test_cg_latency_bound_vs_bt():
    """CG must issue far more (and smaller) messages per unit data than BT."""
    from repro.sim import Tracer
    def count_messages(bench, p):
        sim = Simulator(seed=2)
        sim.trace.enabled = False  # counters only
        net = ClusterNetwork(sim, n_nodes=p)
        job = MPIJob(sim, net, net.place(p), bench.make_app(p), FtSockChannel)
        job.start()
        sim.run_until_complete(job.completed, limit=1e7)
        return sim.trace["mpi.messages"], sim.trace["mpi.bytes"]

    cg_msgs, cg_bytes = count_messages(CG(klass="A", scale=0.4), 4)
    bt_msgs, bt_bytes = count_messages(BT(klass="A", scale=0.1), 4)
    assert cg_bytes / cg_msgs < bt_bytes / bt_msgs


def test_benchmarks_registry():
    assert set(BENCHMARKS) == {"bt", "cg", "ft", "lu", "mg", "stencil"}
    assert all(issubclass(cls, __import__("repro.apps.base", fromlist=["NASBenchmark"]).NASBenchmark)
               for cls in BENCHMARKS.values())
