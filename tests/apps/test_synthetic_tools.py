"""Tests of synthetic kernels, NetPIPE and trace analysis."""

import pytest

from repro.apps.synthetic import burst, halo_2d, ping_pong, token_ring
from repro.mpi import FtSockChannel, MPIJob
from repro.net import ClusterNetwork, GridNetwork
from repro.sim import Simulator
from repro.tools import linear_fit, overhead_breakdown, run_netpipe, summarize, wave_summary
from repro.ft.protocol import FTStats


def run_app(app, size, seed=1):
    sim = Simulator(seed=seed)
    net = ClusterNetwork(sim, n_nodes=size)
    job = MPIJob(sim, net, net.place(size), app, FtSockChannel)
    job.start()
    elapsed = sim.run_until_complete(job.completed, limit=1e6)
    return sim, job, elapsed


# ------------------------------------------------------------- synthetic
def test_ping_pong_measures_rtts():
    sim, job, _ = run_app(ping_pong(10, 1000.0), 2)
    rtts = job.contexts[0].state["rtts"]
    assert len(rtts) == 10
    assert all(r > 0 for r in rtts)
    # steady-state round trips are faster than the first (handshake)
    assert min(rtts[1:]) < rtts[0]


def test_halo_2d_completes():
    sim, job, _ = run_app(halo_2d(q=2, iters=5, nbytes=1000, compute=0.01), 4)
    assert all(c.state["iteration"] == 5 for c in job.contexts)


def test_token_ring_order():
    sim, job, _ = run_app(token_ring(rounds=3), 5)
    assert job.contexts[0].state["token"] == 2  # last round's index


def test_burst_completes():
    sim, job, _ = run_app(burst(iters=4, nbytes=10_000, fan=3), 6)
    assert all(c.state["iteration"] == 4 for c in job.contexts)


# --------------------------------------------------------------- netpipe
def test_netpipe_intra_cluster():
    sim = Simulator(seed=1)
    net = ClusterNetwork(sim, n_nodes=2)
    a, b = net.place(2)
    samples = run_netpipe(sim, net, a, b, sizes=[8, 1024, 1024 * 1024])
    assert len(samples) == 3
    head = summarize(samples)
    # latency should be wire latency plus small per-message costs
    assert net.fabric.latency <= head["latency"] < 4 * net.fabric.latency
    # big transfers should approach fabric bandwidth
    assert head["bandwidth"] > 0.5 * net.fabric.bandwidth


def test_netpipe_matches_paper_wan_ratios():
    """Sec. 5.4: intra-cluster up to ~20x the bandwidth, ~100x less latency."""
    sim = Simulator(seed=1)
    net = GridNetwork(sim, [("a", 2), ("b", 2)])
    from repro.net.topology import Endpoint
    intra = run_netpipe(sim, net,
                        Endpoint(net.clusters["a"].nodes[0], 0),
                        Endpoint(net.clusters["a"].nodes[1], 0),
                        sizes=[8, 1024 * 1024])
    inter = run_netpipe(sim, net,
                        Endpoint(net.clusters["a"].nodes[0], 0),
                        Endpoint(net.clusters["b"].nodes[0], 0),
                        sizes=[8, 1024 * 1024])
    lat_ratio = summarize(inter)["latency"] / summarize(intra)["latency"]
    bw_ratio = summarize(intra)["bandwidth"] / summarize(inter)["bandwidth"]
    assert 30 <= lat_ratio <= 300
    assert 10 <= bw_ratio <= 30


# ---------------------------------------------------------- trace analysis
def test_linear_fit_recovers_line():
    fit = linear_fit([0, 1, 2, 3], [1.0, 3.0, 5.0, 7.0])
    assert fit.slope == pytest.approx(2.0)
    assert fit.intercept == pytest.approx(1.0)
    assert fit.r2 == pytest.approx(1.0)
    assert fit.predict(10) == pytest.approx(21.0)


def test_linear_fit_r2_below_one_with_noise():
    fit = linear_fit([0, 1, 2, 3], [0.0, 1.5, 1.7, 3.2])
    assert 0.8 < fit.r2 < 1.0


def test_linear_fit_validation():
    with pytest.raises(ValueError):
        linear_fit([1], [1])
    with pytest.raises(ValueError):
        linear_fit([1, 2], [1])


def test_wave_summary_and_breakdown():
    stats = FTStats()
    stats.waves_completed = 2
    stats.wave_records = [(1, 0.0, 2.0), (2, 5.0, 6.0)]
    stats.blocked_seconds = 0.5
    summary = wave_summary(stats)
    assert summary["waves"] == 2
    assert summary["mean_wave_seconds"] == pytest.approx(1.5)
    assert summary["max_wave_seconds"] == pytest.approx(2.0)

    breakdown = overhead_breakdown(completion=110.0, baseline=100.0, stats=stats)
    assert breakdown["overhead_seconds"] == pytest.approx(10.0)
    assert breakdown["overhead_percent"] == pytest.approx(10.0)
    assert breakdown["overhead_per_wave"] == pytest.approx(5.0)
