"""Property-based tests (hypothesis) of the core invariants.

These encode the correctness arguments the protocols rest on:

* the event heap is a deterministic total order and time is monotone;
* connections deliver FIFO under arbitrary send schedules;
* MPI matching obeys posting order and wildcard rules;
* the fluid-flow model conserves bytes and never exceeds link capacity;
* CompletedSet is equivalent to a plain set of ints;
* **snapshot consistency**: random programs snapshotted at random times and
  replayed produce exactly the failure-free results (no lost, duplicated or
  reordered effects) — the op-granular analogue of "the global checkpoint
  is a consistent cut".
"""

import operator

from hypothesis import given, settings, strategies as st

from repro.mpi import ANY_SOURCE, ANY_TAG, FtSockChannel, MPIJob
from repro.mpi.context import CompletedSet
from repro.mpi.matching import MatchingEngine
from repro.mpi.message import AppPacket
from repro.net import ClusterNetwork
from repro.net.flows import FlowScheduler
from repro.net.link import Link
from repro.sim import Simulator


# ------------------------------------------------------------ event order
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_event_processing_time_is_monotone(delays):
    sim = Simulator()
    seen = []
    for delay in delays:
        sim.call_at(delay, lambda d=delay: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=2, max_size=20))
@settings(max_examples=40, deadline=None)
def test_same_time_events_fire_in_schedule_order(delays):
    sim = Simulator()
    order = []
    for index, _ in enumerate(delays):
        sim.call_at(5.0, order.append, index)
    sim.run()
    assert order == list(range(len(delays)))


# ------------------------------------------------------------------ FIFO
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_connection_fifo_for_any_size_schedule(sizes):
    sim = Simulator()
    net = ClusterNetwork(sim, n_nodes=2)
    a, b = net.place(2)
    ea, eb = net.connect(a, b).ends()
    for index, nbytes in enumerate(sizes):
        ea.send(index, nbytes=nbytes)

    received = []

    def reader():
        for _ in sizes:
            received.append((yield eb.recv()))

    sim.run_until_complete(sim.process(reader()))
    assert received == list(range(len(sizes)))


# -------------------------------------------------------------- matching
_envelopes = st.tuples(st.integers(0, 3), st.integers(0, 3))  # (src, tag)


@given(
    st.lists(_envelopes, min_size=1, max_size=25),
    st.lists(st.tuples(st.integers(-1, 3), st.integers(-1, 3)),
             min_size=1, max_size=25),
)
@settings(max_examples=60, deadline=None)
def test_matching_never_loses_or_duplicates(messages, recvs):
    """Every message is consumed at most once; unconsumed ones remain
    queued; receives complete iff a compatible message exists."""
    sim = Simulator()
    engine = MatchingEngine(sim, 0)
    for seq, (src, tag) in enumerate(messages):
        engine.deliver(AppPacket(src, tag, ("m", seq), 8.0, seq))
    results = []
    for source, tag in recvs:
        event = engine.post_recv(source, tag)
        if event.triggered:
            results.append(event.value[0])
    # no duplicates
    assert len(results) == len(set(results))
    # conservation: consumed + queued == delivered
    assert len(results) + len(engine.unexpected) == len(messages)
    engine.fail_all(ConnectionError("end"))


@given(st.lists(_envelopes, min_size=1, max_size=15))
@settings(max_examples=40, deadline=None)
def test_matching_fifo_per_source_tag(messages):
    sim = Simulator()
    engine = MatchingEngine(sim, 0)
    for seq, (src, tag) in enumerate(messages):
        engine.deliver(AppPacket(src, tag, seq, 8.0, seq))
    # drain with wildcards: must come back in delivery order
    drained = []
    for _ in messages:
        event = engine.post_recv(ANY_SOURCE, ANY_TAG)
        assert event.triggered
        drained.append(event.value[0])
    assert drained == sorted(drained)


# ------------------------------------------------------------------ flows
@given(st.lists(st.tuples(st.floats(min_value=1.0, max_value=1e6,
                                    allow_nan=False),
                          st.floats(min_value=0.0, max_value=5.0,
                                    allow_nan=False)),
                min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_fluid_flows_conserve_bytes_and_respect_capacity(flows):
    """Total bytes / total time >= capacity is impossible; every flow
    finishes; the busy period is at least total_bytes / capacity."""
    capacity = 1000.0
    sim = Simulator()
    scheduler = FlowScheduler(sim)
    link = Link("l", capacity)
    started = []

    def starter(nbytes, delay):
        yield sim.timeout(delay)
        flow = scheduler.start([link], nbytes)
        started.append(flow)
        yield flow.done

    processes = [sim.process(starter(nbytes, delay))
                 for nbytes, delay in flows]
    sim.run()
    assert all(f.finished for f in started)
    total_bytes = sum(nbytes for nbytes, _delay in flows)
    min_busy = total_bytes / capacity
    # completion cannot beat the capacity bound
    assert sim.now >= min_busy - 1e-6


# ------------------------------------------------------------ CompletedSet
@given(st.lists(st.integers(0, 50), max_size=60))
@settings(max_examples=80, deadline=None)
def test_completed_set_equivalent_to_plain_set(ids):
    cs = CompletedSet()
    reference = set()
    for op_id in ids:
        cs.add(op_id)
        reference.add(op_id)
        assert len(cs) == len(reference)
    for probe in range(55):
        assert (probe in cs) == (probe in reference)


# ----------------------------------------------- snapshot consistency
def _random_program(schedule):
    """Build a deterministic app from a hypothesis-drawn schedule of
    (kind, arg) steps.  All state lives in ctx.state, restart-safe."""

    def app(ctx):
        for step, (kind, arg) in enumerate(schedule):
            if kind == "compute":
                yield from ctx.compute(0.01 + arg * 0.01)
            elif kind == "ring":
                right = (ctx.rank + 1) % ctx.size
                left = (ctx.rank - 1) % ctx.size
                request = ctx.isend(right, tag=step, data=(ctx.rank, step),
                                    nbytes=10.0 + arg * 1000.0)
                value = yield from ctx.recv(left, tag=step)
                yield from request.wait()
                ctx.update(lambda s, v=value: s.__setitem__(
                    "ring", s.get("ring", 0) + 1))
            elif kind == "reduce":
                total = yield from ctx.allreduce(1, operator.add, nbytes=8.0)
                ctx.update(lambda s, t=total, i=step: s.__setitem__(
                    f"sum{i}", t))
        ctx.update(lambda s: s.__setitem__("done", True))

    return app


_steps = st.lists(
    st.tuples(st.sampled_from(["compute", "ring", "reduce"]),
              st.integers(0, 3)),
    min_size=2, max_size=8,
)


@given(schedule=_steps, cut=st.floats(min_value=0.005, max_value=0.5),
       size=st.integers(2, 4))
@settings(max_examples=25, deadline=None)
def test_snapshot_replay_equals_failure_free_execution(schedule, cut, size):
    """Kill-and-replay at an arbitrary quiescent-or-not instant must yield
    the same per-rank state as running straight through."""
    app = _random_program(schedule)

    # reference: failure-free
    sim = Simulator(seed=5)
    net = ClusterNetwork(sim, n_nodes=size)
    job = MPIJob(sim, net, net.place(size), app, FtSockChannel, name="ref")
    job.start()
    sim.run_until_complete(job.completed, limit=1e6)
    reference = [dict(ctx.state) for ctx in job.contexts]

    # snapshot mid-run, kill, restore, rerun
    sim2 = Simulator(seed=5)
    net2 = ClusterNetwork(sim2, n_nodes=size)
    job2 = MPIJob(sim2, net2, net2.place(size), app, FtSockChannel, name="a")
    job2.start()
    sim2.run(until=cut)
    if job2.completed.triggered:
        return  # program finished before the cut; nothing to test
    # NOTE: an uncoordinated instantaneous cut is only consistent when no
    # payload is mid-flight; emulate the coordinated protocols' guarantee by
    # quiescing in-flight traffic first (drain the network for a moment with
    # app processes frozen is not expressible here, so restrict to the
    # op-level cut the protocols provide: snapshot *between* deliveries).
    snapshots = [ctx.take_snapshot(wave=1) for ctx in job2.contexts]
    in_flight = any(
        pipe.egress or pipe._current_flow is not None or len(pipe.inbox)
        for conn in net2.connections for pipe in conn.pipes
    )
    if in_flight:
        return  # the cut is not a consistent one; protocols never do this
    job2.kill()
    sim2.run(until=cut + 1e-6)
    job3 = MPIJob(sim2, net2, net2.place(size), app, FtSockChannel, name="b")
    job3.start(snapshots=snapshots)
    sim2.run_until_complete(job3.completed, limit=1e6)
    restored = [dict(ctx.state) for ctx in job3.contexts]
    assert restored == reference
