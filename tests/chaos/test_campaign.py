"""Chaos campaign: spec grid, verdict classification, reports, CLI."""

import json

import pytest

from repro.chaos import (
    CampaignSpec,
    OK_VERDICTS,
    Scenario,
    dcl_campaign,
    run_campaign,
    run_scenario,
    smoke_campaign,
    write_report,
)
from repro.chaos.__main__ import main as chaos_main


# ---------------------------------------------------------------- the spec
def test_smoke_campaign_covers_acceptance_grid():
    campaign = smoke_campaign()
    scenarios = list(campaign)
    assert len(scenarios) >= 48
    assert {s.protocol for s in scenarios} == {"pcl", "vcl", "dcl"}
    assert {s.channel for s in scenarios} == {"ft_sock", "nemesis", "ch_v"}
    assert {s.procs_per_node for s in scenarios} == {1, 2}
    assert {s.kill for s in scenarios} == {"task", "node"}
    assert len({s.kill_time for s in scenarios}) >= 2
    # the storage-resilience slice rides along: replication, server kills,
    # corruption, and the expected-unrecoverable K=1 scenarios
    assert {s.replication for s in scenarios} == {1, 2}
    assert {s.storage_fault for s in scenarios} == \
        {None, "server_kill", "image_corrupt"}
    assert any(s.expect == ("storage-unrecoverable",) for s in scenarios)
    # labels are unique: each scenario is addressable in reports and filters
    labels = [s.label for s in scenarios]
    assert len(set(labels)) == len(labels)


def test_dcl_campaign_covers_the_drain_grid():
    scenarios = list(dcl_campaign())
    assert len(scenarios) == 12
    assert {s.protocol for s in scenarios} == {"dcl"}
    assert {s.channel for s in scenarios} == {"ft_sock", "nemesis"}
    assert {(s.channel, s.procs_per_node) for s in scenarios} == \
        {("ft_sock", 1), ("ft_sock", 2), ("nemesis", 2)}
    assert {s.kill for s in scenarios} == {"task", "node"}
    # inside the first drain wave and between waves
    assert {s.kill_time for s in scenarios} == {1.7, 2.8}
    labels = [s.label for s in scenarios]
    assert len(set(labels)) == len(labels)


def test_scenario_round_trips_through_dict():
    scenario = Scenario(protocol="vcl", channel="ch_v", procs_per_node=2,
                        kill="node", victim=3, kill_time=2.5, seed=7)
    assert Scenario.from_dict(scenario.to_dict()) == scenario


def test_scenario_validation():
    with pytest.raises(ValueError, match="kill kind"):
        Scenario(protocol="pcl", channel="ft_sock", kill="meteor")
    with pytest.raises(ValueError, match="victim"):
        Scenario(protocol="pcl", channel="ft_sock", kill="task", victim=9)


def test_grid_includes_failure_free_controls():
    campaign = CampaignSpec.grid(kills=(None, "task"), kill_times=(1.7, 2.8))
    nokill = [s for s in campaign if s.kill is None]
    killed = [s for s in campaign if s.kill == "task"]
    # None collapses the kill-time axis; "task" sweeps it
    assert len(nokill) * 2 == len(killed)
    assert all(s.kill_time == 0.0 for s in nokill)


def test_filtered_subcampaign():
    campaign = smoke_campaign().filtered("vcl-ch_v-ppn2")
    assert 0 < len(campaign) < 24
    assert all("vcl-ch_v-ppn2" in s.label for s in campaign)


# ------------------------------------------------------------- the verdicts
def test_failure_free_scenario_completes():
    result = run_scenario(Scenario(protocol="pcl", channel="ft_sock"))
    assert result.verdict == "completed"
    assert result.ok
    assert result.restarts == 0
    assert result.waves > 0
    assert result.monitors_ok is True


def test_killed_scenario_recovers():
    result = run_scenario(Scenario(protocol="pcl", channel="ft_sock",
                                   kill="task", victim=1, kill_time=1.7))
    assert result.verdict == "recovered"
    assert result.restarts == 1
    assert all(state["iteration"] == 10 and state["norm"] == 4
               for state in result.app_state)


def test_dcl_killed_scenario_recovers():
    # kill inside the first drain wave: send gates closed, counter reports
    # in flight — the wave must abort and the restart replay correctly
    result = run_scenario(Scenario(protocol="dcl", channel="ft_sock",
                                   kill="task", victim=1, kill_time=1.7))
    assert result.verdict == "recovered"
    assert result.restarts == 1
    assert result.monitors_ok is True


def test_kill_during_bootstrap_recovers():
    """A kill at t=0 lands while ch_v's eager mesh is mid-handshake; the
    mesh builder must absorb the teardown instead of crashing the run
    (found by the Hypothesis chaos property)."""
    result = run_scenario(Scenario(protocol="vcl", channel="ch_v",
                                   kill="task", victim=0, kill_time=0.0))
    assert result.verdict == "recovered"
    assert result.restarts == 1


def test_hang_is_a_verdict_not_an_exception():
    # A time limit far below the benchmark's runtime: the run cannot finish.
    result = run_scenario(Scenario(protocol="pcl", channel="ft_sock"),
                          time_limit=5.0)
    assert result.verdict == "hang"
    assert not result.ok
    assert "limit" in result.detail


def test_crash_is_a_verdict_not_an_exception():
    # victim validation happens at Scenario creation, so fake a crash with
    # an impossible channel
    result = run_scenario(Scenario(protocol="pcl", channel="no-such-channel"))
    assert result.verdict == "crash"
    assert not result.ok
    assert result.detail


# --------------------------------------------------------------- the report
def test_campaign_report_artifacts(tmp_path):
    spec = smoke_campaign().filtered("pcl-ft_sock-ppn2")
    spec.name = "mini"
    outcome = run_campaign(spec)
    assert outcome.ok
    assert set(outcome.counts()) <= OK_VERDICTS

    json_path, md_path = write_report(outcome, tmp_path)
    payload = json.loads(json_path.read_text())
    assert payload["campaign"] == "mini"
    assert payload["ok"] is True
    assert payload["scenarios"] == len(spec)
    for row in payload["results"]:
        assert row["verdict"] in OK_VERDICTS
        # scenarios round-trip from the artifact for exact reruns
        rerun = Scenario.from_dict(row["scenario"])
        assert rerun.label == row["label"]
    markdown = md_path.read_text()
    assert "| verdict | count |" in markdown
    for scenario in spec:
        assert scenario.label in markdown


# ------------------------------------------------------------------- the CLI
def test_cli_list_and_filter(capsys):
    assert chaos_main(["--list"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 48
    assert chaos_main(["--list", "--filter", "nemesis"]) == 0
    filtered = capsys.readouterr().out.strip().splitlines()
    assert 0 < len(filtered) < 24
    assert all("nemesis" in line for line in filtered)


def test_cli_empty_filter_is_an_error(capsys):
    assert chaos_main(["--filter", "no-such-scenario"]) == 2


def test_cli_runs_and_writes_report(tmp_path, capsys):
    out_dir = tmp_path / "chaos"
    code = chaos_main(["--smoke", "--filter", "vcl-ch_v-ppn1-task",
                       "--out", str(out_dir)])
    assert code == 0
    payload = json.loads((out_dir / "smoke.json").read_text())
    assert payload["ok"] is True
    assert payload["verdicts"] == {"recovered": 2}
    assert (out_dir / "smoke.md").exists()
