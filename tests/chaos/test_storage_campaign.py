"""Storage-resilience campaign: spec shape, verdicts, and the durability
property.

The property mirrors the replication contract of :mod:`repro.ft.server`:
with replication >= 2, killing any *single* checkpoint server at any time
never loses a committed wave — every rank of the newest committed wave
keeps a sealed, checksum-intact replica on a surviving server.
"""

from hypothesis import given, settings, strategies as st

from repro.chaos import (
    BAD_VERDICTS,
    OK_VERDICTS,
    Scenario,
    run_scenario,
    smoke_campaign,
    storage_campaign,
)
from repro.sim import Simulator

from tests.ft.conftest import build_ft_run, ring_app_factory


# ---------------------------------------------------------------- the spec
def test_storage_campaign_shape():
    campaign = storage_campaign()
    scenarios = list(campaign)
    assert len(scenarios) == 12
    assert {s.protocol for s in scenarios} == {"pcl", "vcl"}
    assert {s.storage_fault for s in scenarios} == \
        {"server_kill", "image_corrupt"}
    # replicated scenarios must pass outright; the K=1 ones expect the
    # classified unrecoverable verdict
    assert any(s.replication == 2 and not s.expect for s in scenarios)
    assert any(s.replication == 1 and s.expect == ("storage-unrecoverable",)
               for s in scenarios)
    labels = [s.label for s in scenarios]
    assert len(set(labels)) == len(labels)
    # the storage slice rides along in the CI smoke campaign
    smoke_labels = {s.label for s in smoke_campaign()}
    assert set(labels) <= smoke_labels


def test_storage_scenario_round_trips_through_dict():
    scenario = Scenario(protocol="pcl", channel="ft_sock", kill="node",
                        victim=1, kill_time=2.8, n_servers=2, replication=2,
                        storage_fault="server_kill", storage_time=2.4,
                        expect=("storage-unrecoverable",))
    assert Scenario.from_dict(scenario.to_dict()) == scenario


def test_storage_scenario_validation():
    import pytest

    with pytest.raises(ValueError, match="storage fault"):
        Scenario(protocol="pcl", channel="ft_sock", storage_fault="meteor")
    with pytest.raises(ValueError, match="storage victim"):
        Scenario(protocol="pcl", channel="ft_sock",
                 storage_fault="server_kill", storage_victim=3)
    with pytest.raises(ValueError, match="replication"):
        Scenario(protocol="pcl", channel="ft_sock", replication=2)


# ------------------------------------------------------------- the verdicts
def test_replicated_server_kill_scenario_passes():
    scenario = Scenario(protocol="pcl", channel="ft_sock", kill="node",
                        victim=1, kill_time=2.8, n_servers=2, replication=2,
                        storage_fault="server_kill", storage_time=2.4)
    result = run_scenario(scenario)
    assert result.verdict in OK_VERDICTS, result.detail
    assert result.ok
    assert result.restarts == 1
    assert result.monitors_ok is True


def test_k1_server_kill_is_classified_unrecoverable_and_expected_ok():
    scenario = Scenario(protocol="pcl", channel="ft_sock", kill="node",
                        victim=1, kill_time=2.8,
                        storage_fault="server_kill", storage_time=2.4,
                        expect=("storage-unrecoverable",))
    result = run_scenario(scenario)
    assert result.verdict == "storage-unrecoverable"
    assert result.verdict in BAD_VERDICTS  # fails any campaign not expecting it
    assert result.ok  # ...but this scenario expects exactly that
    assert "no complete replica set" in result.detail


# ------------------------------------------------------------- the property
@given(
    victim=st.integers(min_value=0, max_value=2),
    kill_time=st.floats(min_value=0.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False),
)
@settings(max_examples=15, deadline=None)
def test_single_server_kill_at_k2_never_loses_a_committed_wave(
        victim, kill_time):
    sim = Simulator(seed=7)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30), size=4,
                          protocol="pcl", n_servers=3, period=0.6,
                          image_bytes=2e5, replication=2)
    run.start()
    run.schedule_server_kill(victim, kill_time)
    sim.run_until_complete(run.completed, limit=1e5)
    live = [s for s in run.servers if s.node.alive]
    assert len(live) >= 2
    committed = max((s.committed_wave for s in live), default=0)
    if committed == 0:
        return  # killed before any commit: nothing to lose
    for rank in range(4):
        replicas = [
            s.storage.get(committed, {}).get(rank) for s in live
        ]
        assert any(image is not None and image.verify()
                   for image in replicas), (
            f"rank {rank} of committed wave {committed} lost after killing "
            f"server {victim} at t={kill_time}")
