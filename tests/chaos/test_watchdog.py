"""Engine progress watchdog: livelocks trip, legitimate bursts do not."""

import pytest

from repro.sim import LivelockError, Simulator, Watchdog
from repro.sim.engine import DEFAULT_MAX_SAME_TIME_EVENTS
from repro.verify import InvariantViolation, LivelockMonitor, MonitorBus


def _spinner(sim):
    """A process that reschedules itself at zero delay forever."""

    def spin():
        while True:
            yield sim.timeout(0.0, name="spin-step")

    return sim.process(spin(), name="spinner")


# ----------------------------------------------------------- cascade trips
@pytest.mark.unmonitored
def test_zero_time_cascade_trips_livelock_error():
    sim = Simulator(watchdog=Watchdog(max_same_time_events=500))
    _spinner(sim)
    with pytest.raises(LivelockError) as exc_info:
        sim.run(until=10.0)
    error = exc_info.value
    assert error.kind == "zero-time-cascade"
    assert error.time == 0.0
    assert error.cascade_length >= 500
    # The repeating cycle names the event and the waiting process.
    assert error.cycle_exact
    assert any("spin-step" in entry for entry in error.cycle)
    message = str(error)
    assert "repeating event cycle" in message
    assert "spinner" in message


@pytest.mark.unmonitored
def test_waiting_report_names_heap_head():
    """With other processes parked on the heap, the trip message lists who
    is waiting."""
    sim = Simulator(watchdog=Watchdog(max_same_time_events=500))

    def sleeper():
        yield sim.timeout(1e9, name="long-sleep")

    sim.process(sleeper(), name="parked-process")
    _spinner(sim)
    with pytest.raises(LivelockError) as exc_info:
        sim.run(until=10.0)
    message = str(exc_info.value)
    assert "who is waiting" in message
    assert "parked-process" in message


@pytest.mark.unmonitored
def test_two_process_cycle_is_reported():
    sim = Simulator(watchdog=Watchdog(max_same_time_events=200))

    def ping(other_name):
        while True:
            yield sim.timeout(0.0, name=f"step:{other_name}")

    sim.process(ping("b"), name="proc-a")
    sim.process(ping("a"), name="proc-b")
    with pytest.raises(LivelockError) as exc_info:
        sim.run()
    cycle = exc_info.value.cycle
    assert exc_info.value.cycle_exact
    assert len(cycle) == 2
    assert {entry.split(" -> ")[1] for entry in cycle} == {"proc-a", "proc-b"}


@pytest.mark.unmonitored
def test_watchdog_reset_forgets_streak():
    watchdog = Watchdog(max_same_time_events=50)
    sim = Simulator(watchdog=watchdog)
    _spinner(sim)
    with pytest.raises(LivelockError):
        sim.run(until=1.0)
    watchdog.reset()
    sim2 = Simulator(watchdog=watchdog)
    for i in range(30):
        sim2.call_at(float(i), lambda: None)
    sim2.run()  # clock advances every pop: no trip
    assert sim2.now >= 29.0


def test_watchdog_parameter_validation():
    with pytest.raises(ValueError):
        Watchdog(max_same_time_events=0)
    with pytest.raises(ValueError):
        Watchdog(sample_window=2)
    with pytest.raises(ValueError):
        Watchdog(wall_stall_seconds=0.0)


# --------------------------------------------------- legitimate bursts pass
def test_large_barrier_burst_does_not_trip():
    """A 337-process barrier releases every waiter in one zero-time cascade;
    that legitimate burst (~1.3k pops) must stay far below the default
    budget."""
    sim = Simulator(watchdog=Watchdog())  # default threshold
    n = 337
    barrier = sim.event(name="barrier")
    done = []

    def worker(rank):
        yield barrier
        # a few more zero-time hops after the release, like a real barrier
        # exit path (fan-out of sends at the same timestamp)
        yield sim.timeout(0.0)
        yield sim.timeout(0.0)
        done.append(rank)

    for rank in range(n):
        sim.process(worker(rank), name=f"w{rank}")
    sim.call_at(5.0, barrier.succeed)
    sim.run()
    assert len(done) == n


def test_default_threshold_matches_engine_constant():
    assert Watchdog().max_same_time_events == DEFAULT_MAX_SAME_TIME_EVENTS
    assert LivelockMonitor().max_same_time_events == DEFAULT_MAX_SAME_TIME_EVENTS


# ------------------------------------------------------------- wall stall
@pytest.mark.unmonitored
def test_wall_stall_trips_with_injected_clock():
    ticks = iter(range(10_000))
    watchdog = Watchdog(
        max_same_time_events=10**9,  # never trip on the cascade counter
        wall_stall_seconds=5.0,
        clock=lambda: float(next(ticks)),  # 1 "second" per check
    )
    sim = Simulator(watchdog=watchdog)
    _spinner(sim)
    with pytest.raises(LivelockError) as exc_info:
        sim.run(until=1.0)
    assert exc_info.value.kind == "wall-stall"


@pytest.mark.unmonitored
def test_wall_clock_not_consulted_when_disabled():
    def boom():  # the default watchdog must never read the host clock
        raise AssertionError("wall clock consulted")

    sim = Simulator(watchdog=Watchdog(max_same_time_events=100, clock=boom))
    _spinner(sim)
    with pytest.raises(LivelockError) as exc_info:
        sim.run(until=1.0)
    assert exc_info.value.kind == "zero-time-cascade"


# ------------------------------------------------- the monitor-side twin
@pytest.mark.unmonitored
def test_livelock_monitor_reports_cascade():
    sim = Simulator()
    bus = MonitorBus([LivelockMonitor(max_same_time_events=300)],
                     raise_on_violation=True)
    bus.attach(sim)
    _spinner(sim)
    with pytest.raises(InvariantViolation, match="livelock"):
        sim.run(until=1.0)


@pytest.mark.unmonitored
def test_livelock_monitor_quiet_on_progress():
    sim = Simulator()
    monitor = LivelockMonitor(max_same_time_events=100)
    bus = MonitorBus([monitor], raise_on_violation=True)
    bus.attach(sim)
    for i in range(500):
        sim.call_at(float(i) * 0.01, lambda: None)
    sim.run()
    bus.finish()
    assert bus.ok
    assert monitor.checked == 500
