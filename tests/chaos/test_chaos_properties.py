"""Property-based chaos: random kill times never produce a wrong result
or a hang, for either protocol.

The acceptance property of coordinated checkpointing (paper Sec. 3): a
single failure at *any* point of the execution — inside a checkpoint wave,
between waves, during recovery of nothing at all — leads to a rollback to
the last committed wave and a correct re-execution.  The engine watchdog
and the per-scenario time budget turn the failure modes into verdicts, so
the property is simply: the verdict is always ``recovered`` or
``completed`` (a kill landing after completion recovers nothing).
"""

from hypothesis import example, given, settings, strategies as st

from repro.chaos import OK_VERDICTS, Scenario, run_scenario

# BT.B scale=0.05 on 4 procs completes around t≈96; sample the whole
# timeline including "after the job finished" (kill is then a no-op).
_KILL_TIMES = st.floats(min_value=0.0, max_value=110.0,
                        allow_nan=False, allow_infinity=False)


@given(
    protocol_channel=st.sampled_from([("pcl", "ft_sock"), ("pcl", "nemesis"),
                                      ("vcl", "ch_v")]),
    kill=st.sampled_from(["task", "node"]),
    victim=st.integers(min_value=0, max_value=3),
    kill_time=_KILL_TIMES,
    procs_per_node=st.sampled_from([1, 2]),
)
# Falsifying examples Hypothesis found and we fixed: a kill during the
# eager-mesh bootstrap (t=0) used to escape as ConnectionResetError from
# the mesh builder, and a kill mid-isend used to escape as
# BrokenConnectionError from the unwaited pusher process.
@example(protocol_channel=("vcl", "ch_v"), kill="task", victim=0,
         kill_time=0.0, procs_per_node=1)
@example(protocol_channel=("vcl", "ch_v"), kill="task", victim=0,
         kill_time=42.375, procs_per_node=1)
@settings(max_examples=15, deadline=None)
def test_random_single_failure_never_hangs_or_corrupts(
        protocol_channel, kill, victim, kill_time, procs_per_node):
    protocol, channel = protocol_channel
    scenario = Scenario(
        protocol=protocol,
        channel=channel,
        procs_per_node=procs_per_node,
        kill=kill,
        victim=victim,
        kill_time=kill_time,
        seed=1,
    )
    result = run_scenario(scenario)
    assert result.verdict in OK_VERDICTS, (
        f"{scenario.label}: {result.verdict} — {result.detail}")
    expected_iterations = 10  # BT at scale 0.05
    for rank, state in enumerate(result.app_state):
        assert state["iteration"] == expected_iterations, (rank, state)
        assert state["norm"] == scenario.n_procs, (rank, state)
