"""Cascading-failure recovery campaign: spec shape, verdicts, and the
never-hang property.

The acceptance property of the survivor-recovery subsystem
(docs/RECOVERY.md): *any* sequence of kills — double faults, kills landing
inside an in-progress recovery, spare-pool exhaustion, back-to-back
failures — under every recovery policy and protocol family ends in a
classified verdict, never a hang, a crash, or a wrong result.  Policies
that cannot proceed degrade to the paper's full restart
(``recovered-degraded``).
"""

from hypothesis import example, given, settings, strategies as st

from repro.chaos import (
    OK_VERDICTS,
    Scenario,
    run_scenario,
    recovery_campaign,
)
from repro.chaos.spec import RECOVERY_POLICIES


# ---------------------------------------------------------------- the spec
def test_recovery_campaign_shape():
    campaign = recovery_campaign()
    scenarios = list(campaign)
    assert len(scenarios) == 30
    assert {s.protocol for s in scenarios} == {"pcl", "vcl", "dcl"}
    assert {s.policy for s in scenarios} == set(RECOVERY_POLICIES)
    # cascading slices: every non-restart scenario injects a node/task kill,
    # and the campaign exercises kills *inside* an in-progress recovery
    assert any(len(s.extra_kills) == 1 for s in scenarios)
    # spare exhaustion and non-malleable shrink expect graceful degradation
    assert any(s.expect == ("recovered-degraded",) and s.policy == "spare"
               for s in scenarios)
    assert any(s.expect == ("recovered-degraded",) and s.policy == "shrink"
               for s in scenarios)
    labels = [s.label for s in scenarios]
    assert len(set(labels)) == len(labels)


def test_recovery_scenario_round_trips_through_dict():
    scenario = Scenario(protocol="pcl", channel="ft_sock", kill="node",
                        victim=1, kill_time=2.8, policy="spare", spares=2,
                        extra_kills=(("node", 2, 2.85),))
    assert Scenario.from_dict(scenario.to_dict()) == scenario


def test_recovery_scenario_validation():
    import pytest

    with pytest.raises(ValueError, match="policy"):
        Scenario(protocol="pcl", channel="ft_sock", policy="abandon-ship")
    with pytest.raises(ValueError, match="spares"):
        Scenario(protocol="pcl", channel="ft_sock", spares=-1)
    with pytest.raises(ValueError, match="extra kill"):
        Scenario(protocol="pcl", channel="ft_sock",
                 extra_kills=(("meteor", 1, 2.0),))


def test_with_policy_filter():
    campaign = recovery_campaign()
    shrink = campaign.with_policy("shrink")
    assert len(shrink) > 0
    assert all(s.policy == "shrink" for s in shrink)


# ------------------------------------------------------------- the verdicts
def test_kill_inside_spare_recovery_recovers_cleanly():
    scenario = Scenario(protocol="pcl", channel="ft_sock", kill="node",
                        victim=1, kill_time=2.8, policy="spare", spares=2,
                        extra_kills=(("node", 2, 2.85),))
    result = run_scenario(scenario)
    assert result.verdict in OK_VERDICTS, result.detail
    assert result.monitors_ok is True
    # the injected-kill audit trail surfaces in the result
    kinds = {k["kind"] for k in result.injected_kills}
    assert "node" in kinds


def test_spare_exhaustion_is_degraded_not_dead():
    scenario = Scenario(protocol="pcl", channel="ft_sock", kill="node",
                        victim=1, kill_time=2.8, policy="spare", spares=1,
                        extra_kills=(("node", 2, 2.8001),),
                        expect=("recovered-degraded",))
    result = run_scenario(scenario)
    assert result.verdict == "recovered-degraded"
    assert result.ok
    assert "policy degradation" in result.detail


# ------------------------------------------------------------- the property
_KILL = st.tuples(st.sampled_from(["task", "node"]),
                  st.integers(min_value=0, max_value=3),
                  st.floats(min_value=0.0, max_value=110.0,
                            allow_nan=False, allow_infinity=False))


@given(
    protocol_channel=st.sampled_from([("pcl", "ft_sock"), ("vcl", "ch_v"),
                                      ("dcl", "ft_sock")]),
    policy=st.sampled_from(list(RECOVERY_POLICIES)),
    spares=st.integers(min_value=0, max_value=2),
    kills=st.lists(_KILL, min_size=1, max_size=3),
)
# Falsifying example Hypothesis found and we fixed: a node kill during the
# eager-mesh bootstrap used to escape the mesh builder as
# ConnectionRefusedError while a survivor policy deferred job.kill() past
# the membership agreement round.
@example(protocol_channel=("vcl", "ch_v"), policy="spare", spares=0,
         kills=[("node", 0, 0.0)])
@settings(max_examples=12, deadline=None)
def test_random_kill_sequences_always_classify(
        protocol_channel, policy, spares, kills):
    """Random kill sequences — including back-to-back failures and pool
    exhaustion — always end in an OK verdict under every policy (the
    non-malleable default bench makes every shrink degrade, legally)."""
    protocol, channel = protocol_channel
    first, rest = kills[0], kills[1:]
    scenario = Scenario(
        protocol=protocol,
        channel=channel,
        kill=first[0],
        victim=first[1],
        kill_time=first[2],
        extra_kills=tuple(rest),
        policy=policy,
        spares=spares,
        seed=1,
    )
    result = run_scenario(scenario)
    assert result.verdict in OK_VERDICTS, (
        f"{scenario.label}: {result.verdict} — {result.detail}")
    for rank, state in enumerate(result.app_state):
        assert state["iteration"] == 10, (rank, state)  # BT at scale 0.05
