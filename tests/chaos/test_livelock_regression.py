"""Regression: the historical Pcl procs_per_node=2 livelock stays dead.

The original symptom (ROADMAP): ``DeploymentSpec(n_procs=4, protocol="pcl",
period=1.5, procs_per_node=2)`` running ``BT(klass="B", scale=0.05)``
stalled in an infinite same-timestamp event loop around sim t≈65-73.  Root
cause: when a flow's residual transfer time fell below one float ulp of the
current time, ``FlowScheduler._schedule_finish`` armed a timer that fired at
the *same* timestamp, settled zero elapsed seconds, drained no bytes, and
rescheduled forever.  The fix rounds the delay up to one ulp so the clock
always advances; these tests pin the exact failing configuration and the
flow-level mechanism.
"""

import math

import pytest

from repro.apps import BT
from repro.net import ClusterNetwork
from repro.net.flows import FlowScheduler
from repro.net.link import Link
from repro.runtime import DeploymentSpec, build_run
from repro.sim import Simulator, Watchdog


def _roadmap_run(channel):
    """The exact configuration from the ROADMAP open item (watchdog armed:
    a regression fails as LivelockError instead of hanging pytest)."""
    sim = Simulator(seed=0, watchdog=Watchdog())
    bench = BT(klass="B", scale=0.05)
    spec = DeploymentSpec(
        n_procs=4,
        protocol="pcl",
        channel=channel,
        period=1.5,
        procs_per_node=2,
        image_bytes=bench.image_bytes(4) * 0.05,
    )
    run = build_run(sim, spec, bench.make_app(4), name="roadmap")
    run.start()
    completion = sim.run_until_complete(run.completed, limit=500.0)
    return run, completion


@pytest.mark.parametrize("channel", ["ft_sock", "nemesis"])
def test_roadmap_livelock_config_completes(channel):
    run, completion = _roadmap_run(channel)
    assert 0.0 < completion < 500.0
    assert run.stats.waves_completed > 40  # ~45 waves at period 1.5
    bench = BT(klass="B", scale=0.05)
    for rank, context in enumerate(run.job.contexts):
        assert context.state["iteration"] == bench.iterations(), rank
        assert context.state["norm"] == 4, rank


def test_subulp_flow_residue_finishes():
    """A flow whose finish time falls below the clock's float resolution
    must still complete (the delay is rounded up to one ulp)."""
    sim = Simulator()
    scheduler = FlowScheduler(sim)
    link = Link("l0", capacity=1e9)
    # Park the clock at the t≈73 regime of the original livelock, where one
    # ulp is ~1.4e-14 s, then start a transfer and shave it mid-flight so
    # the remaining bytes take far less than one ulp of time.
    sim.run(until=73.04674683093843)
    flow = scheduler.start([link], 73.0)
    sim.run(until=sim.now + 50e-9)
    scheduler._settle(flow, sim.now)
    flow.bytes_remaining = 3e-6  # > epsilon (1e-6 B), < 1 ulp of transfer
    scheduler._schedule_finish(flow)
    sim.run(until=sim.now + 1e-6)
    assert flow.finished, "sub-ulp residue never finished (livelock regression)"
    assert flow.done.processed and flow.done.ok


def test_schedule_finish_always_advances_clock():
    """The armed finish timer never lands at the current timestamp."""
    sim = Simulator()
    scheduler = FlowScheduler(sim)
    link = Link("l0", capacity=1e9)
    sim.run(until=1e6)  # large t: coarse float resolution
    flow = scheduler.start([link], 1.0)
    scheduler._settle(flow, sim.now)
    flow.bytes_remaining = 1e-12  # residual time ~1e-21 s << 1 ulp
    scheduler._schedule_finish(flow)
    next_time = sim.peek()
    assert next_time > sim.now
    assert next_time >= math.nextafter(sim.now, math.inf)
