"""Property-based conservation laws over the metrics the channels emit.

For any failure-free completed run, every application byte put on a link
comes off that link: per ``(channel, src, dst)`` the ``channel.bytes_sent``
counter equals ``channel.bytes_received`` (wire bytes, control packets
excluded on both sides).  Vcl additionally logs a *copy* of every in-window
byte, so its ``ft.logged_bytes`` counters must equal the protocol's own
``stats.logged_bytes`` — logging never diverts delivery.  And the per-wave
phase timers (markers / flush / stream / commit) must tile each wave's
duration exactly.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.apps import BT
from repro.harness.config import get_profile
from repro.harness.runner import execute
from repro.obs import metric_values
from repro.obs.timeline import phase_sums
from repro.sim import Tracer


def _metrics_run(protocol, seed, period, tracer=None):
    profile = get_profile("smoke", seed=seed)
    bench = BT(klass="B", scale=profile.time_scale)
    return execute(bench, 4, protocol, profile, period=period,
                   procs_per_node=2, name="conservation-probe",
                   metrics=True, tracer=tracer)


def _by_link(snapshot, name):
    totals = {}
    for labels, entry in metric_values(snapshot, name):
        key = (labels["channel"], labels["src"], labels["dst"])
        totals[key] = totals.get(key, 0.0) + entry["value"]
    return totals


@given(protocol=st.sampled_from(["pcl", "vcl", "dcl"]),
       seed=st.integers(0, 5),
       period=st.sampled_from([20.0, 30.0, 45.0]))
@settings(max_examples=6, deadline=None)
def test_wire_bytes_conserved_per_link(protocol, seed, period):
    result = _metrics_run(protocol, seed, period)
    snapshot = result.meta["metrics"]
    sent = _by_link(snapshot, "channel.bytes_sent")
    received = _by_link(snapshot, "channel.bytes_received")
    assert sent, "instrumented run must have sent application bytes"
    assert set(sent) == set(received)
    for link in sent:
        assert math.isclose(sent[link], received[link], rel_tol=1e-12), \
            f"link {link}: sent {sent[link]} != received {received[link]}"
    messages_sent = _by_link(snapshot, "channel.messages_sent")
    messages_received = _by_link(snapshot, "channel.messages_received")
    assert messages_sent == messages_received


@given(seed=st.integers(0, 5))
@settings(max_examples=4, deadline=None)
def test_vcl_logged_bytes_match_protocol_stats(seed):
    result = _metrics_run("vcl", seed, 25.0)
    snapshot = result.meta["metrics"]
    logged = sum(entry["value"] for _, entry
                 in metric_values(snapshot, "ft.logged_bytes"))
    assert logged == result.stats.logged_bytes
    # the log is a copy: conservation above already proved delivery, so a
    # logged byte is *extra* accounting, never a diverted one
    if result.waves:
        assert logged >= 0.0


@given(protocol=st.sampled_from(["pcl", "vcl", "dcl"]), seed=st.integers(0, 5))
@settings(max_examples=6, deadline=None)
def test_phase_timers_tile_every_wave(protocol, seed):
    tracer = Tracer(enabled=True, categories=("ft.wave_phase",))
    result = _metrics_run(protocol, seed, 30.0, tracer=tracer)
    sums = phase_sums(tracer.records)
    durations = {wave: end - start
                 for wave, start, end in result.stats.wave_records}
    assert set(sums) == set(durations)
    assert sums, "a checkpointed run must complete at least one wave"
    for wave, total in sums.items():
        assert math.isclose(total, durations[wave], abs_tol=1e-9)
    # and the metrics histograms agree with the trace in aggregate
    snapshot = result.meta["metrics"]
    histogram_total = sum(
        entry["sum"] for _, entry
        in metric_values(snapshot, "ft.wave_phase_seconds", "histograms")
    )
    assert math.isclose(histogram_total, sum(sums.values()), abs_tol=1e-6)
