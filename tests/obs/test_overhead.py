"""Zero-overhead-by-default guarantees of the observability layer.

With metrics off (the default), no registry exists, no instrument is ever
allocated, no trace category is forced live — and the run's results are
byte-identical to a metrics-on run of the same seed.
"""

import json

import pytest

from repro.apps import BT
from repro.harness.config import get_profile
from repro.harness.runner import execute, metrics_enabled
from repro.runtime import DeploymentSpec, build_run
from repro.sim import Simulator


def _run(metrics, seed=7):
    profile = get_profile("smoke", seed=seed)
    bench = BT(klass="B", scale=profile.time_scale)
    return execute(bench, 4, "pcl", profile, period=30.0, procs_per_node=2,
                   name="overhead-probe", metrics=metrics)


# ------------------------------------------------------------- off == free
@pytest.mark.unmonitored
def test_metrics_off_keeps_trace_categories_dark():
    """Without metrics (and without monitors), the obs trace categories
    stay unwanted: the protocols skip even building the record dicts."""
    sim = Simulator(seed=1)
    assert sim.metrics is None
    for category in ("ft.wave_phase", "ft.logging_closed",
                     "ft.enter_wave", "ft.resume"):
        assert not sim.trace.wants(category)


@pytest.mark.unmonitored
def test_metrics_off_run_never_creates_a_registry():
    sim = Simulator(seed=2)
    bench = BT(klass="B", scale=0.05)
    spec = DeploymentSpec(n_procs=4, protocol="pcl", period=1.5,
                          procs_per_node=2,
                          image_bytes=bench.image_bytes(4) * 0.05)
    run = build_run(sim, spec, bench.make_app(4), name="dark-probe")
    run.start()
    sim.run_until_complete(run.completed, limit=1e8)
    assert run.stats.waves_completed > 0
    assert sim.metrics is None  # not an empty registry: literally nothing


def test_execute_metrics_default_follows_environment(monkeypatch):
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    assert not metrics_enabled()
    for off in ("0", "false", "OFF", ""):
        monkeypatch.setenv("REPRO_METRICS", off)
        assert not metrics_enabled()
    monkeypatch.setenv("REPRO_METRICS", "1")
    assert metrics_enabled()


# ------------------------------------------------- on == observation only
def test_metrics_on_results_byte_identical_to_off():
    """The acceptance check: same seed, metrics on vs off, same results —
    completion, waves, stats, app rows.  Only ``meta["metrics"]`` differs."""
    off = _run(metrics=False)
    on = _run(metrics=True)
    assert off.completion == on.completion  # exact, not approx
    assert off.waves == on.waves
    assert off.stats.logged_bytes == on.stats.logged_bytes
    assert off.stats.blocked_seconds == on.stats.blocked_seconds
    assert json.dumps(off.row(), sort_keys=True) == \
        json.dumps(on.row(), sort_keys=True)
    assert "metrics" not in off.meta
    assert on.meta["metrics"]["schema"] == "repro.obs/1"


def test_metrics_on_instrument_count_is_bounded_not_per_event():
    """Instruments are cached per (name, labels): a whole run's snapshot
    holds O(links + ranks + phases) instruments, not O(events)."""
    result = _run(metrics=True)
    snapshot = result.meta["metrics"]
    instruments = (len(snapshot["counters"]) + len(snapshot["gauges"])
                   + len(snapshot["histograms"]))
    events = int(result.meta.get("events", 0))
    assert events > 5_000  # the run did real work
    assert instruments < 300  # ... without per-event instrument growth
    # engine gauges came from the snapshot-time collector
    assert snapshot["gauges"]["engine.events_processed"]["value"] == events
