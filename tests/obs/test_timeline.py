"""Timeline export tests: Perfetto-loadable documents whose wave-phase
slices tile the protocol's own wave durations exactly."""

import json
import math

import pytest

from repro.apps import BT
from repro.obs.timeline import (
    build_timeline,
    export_timeline,
    phase_sums,
    validate_trace_events,
)
from repro.runtime import DeploymentSpec, build_run
from repro.sim import Simulator
from repro.sim.trace import Tracer, dump_jsonl


def _traced_run(protocol, seed=123):
    sim = Simulator(seed=seed, trace=Tracer(enabled=True))
    bench = BT(klass="B", scale=0.05)
    spec = DeploymentSpec(
        n_procs=4, protocol=protocol, period=1.5, procs_per_node=2,
        image_bytes=bench.image_bytes(4) * 0.05,
    )
    run = build_run(sim, spec, bench.make_app(4), name="timeline-probe")
    run.start()
    sim.run_until_complete(run.completed, limit=1e8)
    return sim, run


@pytest.mark.parametrize("protocol", ["pcl", "vcl"])
def test_timeline_is_valid_trace_events(protocol):
    sim, run = _traced_run(protocol)
    doc = build_timeline(sim.trace.records)
    assert validate_trace_events(doc) == []
    events = doc["traceEvents"]
    assert any(e["ph"] == "M" for e in events)
    phases = {e["name"] for e in events
              if e["ph"] == "X" and e.get("cat") == "wave"}
    assert phases == {"markers", "flush", "stream", "commit"}


@pytest.mark.parametrize("protocol", ["pcl", "vcl"])
def test_phase_slices_tile_wave_durations(protocol):
    """The acceptance check: per wave, the four phase slices sum exactly
    (up to float addition error) to the FTStats wave duration."""
    sim, run = _traced_run(protocol)
    sums = phase_sums(sim.trace.records)
    durations = {wave: end - start
                 for wave, start, end in run.stats.wave_records}
    assert sums  # at least one completed wave
    assert set(sums) == set(durations)
    for wave, total in sums.items():
        assert math.isclose(total, durations[wave], abs_tol=1e-9), \
            f"wave {wave}: phases sum {total} != duration {durations[wave]}"


def test_pcl_timeline_shows_blocked_rank_slices():
    sim, run = _traced_run("pcl")
    doc = build_timeline(sim.trace.records)
    blocked = [e for e in doc["traceEvents"]
               if e["ph"] == "X" and e.get("cat") == "rank"
               and "blocked" in e["name"]]
    assert blocked
    ranks = {e["tid"] for e in blocked}
    assert ranks == {0, 1, 2, 3}
    assert all(e["dur"] >= 0.0 for e in blocked)


def test_vcl_timeline_shows_logging_windows_and_logged_counter():
    sim, run = _traced_run("vcl")
    doc = build_timeline(sim.trace.records)
    logging = [e for e in doc["traceEvents"]
               if e["ph"] == "X" and e.get("cat") == "rank"
               and "logging" in e["name"]]
    assert logging
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    if run.stats.logged_bytes > 0:
        assert counters
        final = counters[-1]["args"]["bytes"]
        assert final == pytest.approx(run.stats.logged_bytes)


def test_recovery_slices_and_agreement_instants():
    """A survivor recovery adds a second protocol-track thread with the
    detect/agree/promote/restore spans and one instant per agreement
    ballot; failure-free runs carry none of it (no thread metadata)."""
    sim = Simulator(seed=123, trace=Tracer(enabled=True))
    bench = BT(klass="B", scale=0.05)
    spec = DeploymentSpec(
        n_procs=4, protocol="pcl", period=1.5,
        image_bytes=bench.image_bytes(4) * 0.05,
        recovery_policy="spare", spares=2,
    )
    run = build_run(sim, spec, bench.make_app(4), name="recovery-probe")
    run.start()
    run.schedule_node_kill(1, 2.8)
    sim.run_until_complete(run.completed, limit=1e8)
    doc = build_timeline(sim.trace.records)
    assert validate_trace_events(doc) == []
    slices = [e for e in doc["traceEvents"]
              if e["ph"] == "X" and e.get("cat") == "recovery"]
    assert {e["name"] for e in slices} == \
        {"detect", "agree", "promote", "restore"}
    assert all(e["tid"] == 2 and e["args"]["policy"] == "spare"
               for e in slices)
    instants = [e for e in doc["traceEvents"]
                if e["ph"] == "i" and e.get("cat") == "recovery"]
    assert instants and all("ballot" in e["name"] for e in instants)
    threads = [e for e in doc["traceEvents"]
               if e["ph"] == "M" and e["pid"] == 1 and e["tid"] == 2]
    assert threads and threads[0]["args"]["name"] == "recovery"
    # failure-free twin: the recovery thread does not exist at all
    clean_sim, _clean = _traced_run("pcl")
    clean_doc = build_timeline(clean_sim.trace.records)
    assert not [e for e in clean_doc["traceEvents"]
                if e.get("cat") == "recovery"
                or (e["ph"] == "M" and e.get("pid") == 1
                    and e.get("tid") == 2)]


def test_export_round_trip(tmp_path):
    sim, run = _traced_run("pcl")
    jsonl = str(tmp_path / "run.jsonl")
    out = str(tmp_path / "run.trace.json")
    assert dump_jsonl(sim.trace.records, jsonl) > 0
    doc = export_timeline(jsonl, out)
    with open(out) as handle:
        loaded = json.load(handle)
    assert loaded == doc
    assert validate_trace_events(loaded) == []


def test_validate_rejects_malformed_documents():
    assert validate_trace_events([]) == ["document is not a JSON object"]
    assert validate_trace_events({}) == ["missing traceEvents array"]
    problems = validate_trace_events({"traceEvents": [
        {"ph": "Z", "ts": 0},
        {"ph": "X", "name": "x", "pid": 1, "tid": 0, "ts": 0.0},
        {"ph": "i", "name": "i", "pid": "one", "tid": 0, "ts": 1.0},
    ]})
    assert any("unknown phase" in p for p in problems)
    assert any("dur" in p for p in problems)
    assert any("pid is not an integer" in p for p in problems)


def test_unfinished_wave_slices_are_emitted_zero_length():
    from repro.sim.trace import TraceRecord

    records = [TraceRecord(1.0, "ft.enter_wave",
                           (("rank", 0), ("wave", 1)))]
    doc = build_timeline(records)
    unfinished = [e for e in doc["traceEvents"]
                  if "unfinished" in e.get("name", "")]
    assert len(unfinished) == 1
    assert unfinished[0]["dur"] == 0.0
