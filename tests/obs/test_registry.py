"""Unit tests for the metrics registry (:mod:`repro.obs.registry`)."""

import json

import pytest

from repro.obs import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
    metric_values,
    phase_totals,
)
from repro.sim import Simulator


# ------------------------------------------------------------- instruments
def test_counter_accumulates_and_timestamps():
    registry = MetricsRegistry()
    registry.count("a", 2.0)
    registry.count("a", 3.0)
    assert registry.value("a") == 5.0
    assert registry.value("never_touched") == 0.0


def test_gauge_tracks_peak():
    registry = MetricsRegistry()
    registry.set("depth", 3.0)
    registry.set("depth", 7.0)
    registry.set("depth", 1.0)
    gauge = registry.gauge("depth")
    assert gauge.value == 1.0
    assert gauge.peak == 7.0


def test_histogram_bucket_placement_and_overflow():
    histogram = Histogram(bounds=(1.0, 10.0))
    for value in (0.5, 1.0, 5.0, 100.0):
        histogram.observe(value)
    # <=1.0 : 0.5 and 1.0; <=10.0 : 5.0; overflow : 100.0
    assert histogram.counts == [2, 1, 1]
    assert histogram.count == 4
    assert histogram.sum == pytest.approx(106.5)
    assert histogram.max == 100.0


def test_histogram_bounds_must_ascend():
    with pytest.raises(ValueError):
        Histogram(bounds=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))


def test_default_buckets_are_ascending():
    assert list(DEFAULT_SECONDS_BUCKETS) == sorted(DEFAULT_SECONDS_BUCKETS)


# ---------------------------------------------------------------- registry
def test_instruments_cached_per_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("x", rank=1)
    b = registry.counter("x", rank=1)
    c = registry.counter("x", rank=2)
    assert a is b
    assert a is not c


def test_label_order_does_not_split_instruments():
    registry = MetricsRegistry()
    registry.count("x", 1.0, src=0, dst=1)
    registry.count("x", 1.0, dst=1, src=0)
    assert registry.value("x", src=0, dst=1) == 2.0


def test_registry_uses_sim_clock():
    sim = Simulator()
    registry = MetricsRegistry(sim)
    sim.call_at(2.5, registry.count, "late")
    sim.run()
    assert registry.counter("late").updated == 2.5


# ---------------------------------------------------------------- snapshot
def test_snapshot_shape_and_label_keys():
    registry = MetricsRegistry()
    registry.count("ft.waves_completed", 2.0, protocol="pcl")
    registry.set("channel.delayed_queue_depth", 3.0, rank=1)
    registry.observe("ft.wave_seconds", 0.25, protocol="pcl")
    doc = registry.snapshot()
    assert doc["schema"] == "repro.obs/1"
    key = "ft.waves_completed{protocol=pcl}"
    assert doc["counters"][key]["value"] == 2.0
    assert doc["counters"][key]["labels"] == {"protocol": "pcl"}
    assert doc["gauges"]["channel.delayed_queue_depth{rank=1}"]["peak"] == 3.0
    histogram = doc["histograms"]["ft.wave_seconds{protocol=pcl}"]
    assert histogram["count"] == 1
    assert histogram["sum"] == pytest.approx(0.25)


def test_snapshot_is_deterministic_and_json_serializable():
    def build():
        registry = MetricsRegistry()
        registry.count("b", 1.0, rank=2)
        registry.count("a", 1.0)
        registry.count("b", 1.0, rank=1)
        registry.observe("h", 0.5)
        return json.dumps(registry.snapshot(), sort_keys=True)

    assert build() == build()


def test_collectors_run_at_snapshot_time():
    registry = MetricsRegistry()
    registry.add_collector(lambda reg: reg.set("sampled", 42.0))
    assert registry.value("sampled") == 0.0
    doc = registry.snapshot()
    assert doc["gauges"]["sampled"]["value"] == 42.0


# ------------------------------------------------------- snapshot queries
def test_metric_values_filters_by_name():
    registry = MetricsRegistry()
    registry.count("x", 1.0, rank=0)
    registry.count("x", 2.0, rank=1)
    registry.count("y", 9.0)
    pairs = metric_values(registry.snapshot(), "x")
    assert sorted(labels["rank"] for labels, _ in pairs) == [0, 1]
    assert sum(entry["value"] for _, entry in pairs) == 3.0


def test_phase_totals_folds_protocol_labels():
    registry = MetricsRegistry()
    registry.observe("ft.wave_phase_seconds", 1.0, protocol="pcl",
                     phase="flush")
    registry.observe("ft.wave_phase_seconds", 2.0, protocol="pcl",
                     phase="flush")
    registry.observe("ft.wave_phase_seconds", 0.5, protocol="vcl",
                     phase="commit")
    totals = phase_totals(registry.snapshot())
    assert totals == pytest.approx({"flush": 3.0, "commit": 0.5})
