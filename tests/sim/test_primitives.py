"""Unit tests for Store, Resource and Gate."""

import pytest

from repro.sim import Simulator, Store, Resource
from repro.sim.primitives import Gate


# ----------------------------------------------------------------- Store
def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim, "s")
    store.put("a")
    store.put("b")

    def reader():
        first = yield store.get()
        second = yield store.get()
        return [first, second]

    proc = sim.process(reader())
    assert sim.run_until_complete(proc) == ["a", "b"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim, "s")
    times = []

    def reader():
        item = yield store.get()
        times.append((sim.now, item))

    sim.process(reader())
    sim.call_at(4.0, store.put, "late")
    sim.run()
    assert times == [(4.0, "late")]


def test_store_fifo_waiter_order():
    sim = Simulator()
    store = Store(sim, "s")
    got = []

    def reader(tag):
        item = yield store.get()
        got.append((tag, item))

    sim.process(reader("r1"))
    sim.process(reader("r2"))
    sim.call_at(1.0, store.put, "x")
    sim.call_at(1.0, store.put, "y")
    sim.run()
    assert got == [("r1", "x"), ("r2", "y")]


def test_store_try_get_and_peek():
    sim = Simulator()
    store = Store(sim, "s")
    assert store.try_get() is None
    assert store.peek() is None
    store.put(1)
    assert store.peek() == 1
    assert store.try_get() == 1
    assert len(store) == 0


def test_store_poison_fails_blocked_getter():
    sim = Simulator()
    store = Store(sim, "s")

    def reader():
        with pytest.raises(ConnectionError):
            yield store.get()
        return "survived"

    proc = sim.process(reader())
    sim.call_at(1.0, store.poison, ConnectionError("broken"))
    assert sim.run_until_complete(proc) == "survived"


def test_store_poison_fails_future_getter():
    sim = Simulator()
    store = Store(sim, "s")
    store.poison(ConnectionError("down"))
    assert store.poisoned

    def reader():
        with pytest.raises(ConnectionError):
            yield store.get()

    sim.run_until_complete(sim.process(reader()))


def test_store_put_after_poison_raises():
    sim = Simulator()
    store = Store(sim, "s")
    store.poison(ConnectionError("down"))
    with pytest.raises(RuntimeError):
        store.put("x")


def test_store_drain():
    sim = Simulator()
    store = Store(sim, "s")
    for i in range(3):
        store.put(i)
    assert list(store.drain()) == [0, 1, 2]
    assert len(store) == 0


# --------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2, name="r")
    order = []

    def user(tag, hold):
        yield res.acquire()
        order.append((sim.now, tag, "in"))
        yield sim.timeout(hold)
        res.release()
        order.append((sim.now, tag, "out"))

    sim.process(user("a", 5.0))
    sim.process(user("b", 5.0))
    sim.process(user("c", 1.0))
    sim.run()
    # c waits for a slot until t=5
    assert (0.0, "a", "in") in order and (0.0, "b", "in") in order
    assert (5.0, "c", "in") in order
    assert (6.0, "c", "out") in order


def test_resource_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_resource_counts():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="r")

    def holder():
        yield res.acquire()
        yield sim.timeout(10.0)
        res.release()

    def waiter():
        yield sim.timeout(1.0)
        yield res.acquire()
        res.release()

    sim.process(holder())
    sim.process(waiter())
    sim.run(until=2.0)
    assert res.in_use == 1
    assert res.queued == 1
    sim.run()
    assert res.in_use == 0


# ------------------------------------------------------------------- Gate
def test_gate_open_passes_immediately():
    sim = Simulator()
    gate = Gate(sim, open=True, name="g")

    def walker():
        yield gate.wait()
        return sim.now

    assert sim.run_until_complete(sim.process(walker())) == 0.0


def test_gate_closed_blocks_until_open():
    sim = Simulator()
    gate = Gate(sim, open=False, name="g")

    def walker():
        yield gate.wait()
        return sim.now

    proc = sim.process(walker())
    sim.call_at(7.0, gate.open)
    assert sim.run_until_complete(proc) == 7.0


def test_gate_reusable():
    sim = Simulator()
    gate = Gate(sim, open=True)
    passes = []

    def walker():
        yield gate.wait()
        passes.append(sim.now)
        yield sim.timeout(1.0)
        yield gate.wait()
        passes.append(sim.now)

    sim.process(walker())
    sim.call_at(0.5, gate.close)
    sim.call_at(3.0, gate.open)
    sim.run()
    assert passes == [0.0, 3.0]


def test_gate_open_releases_all_waiters():
    sim = Simulator()
    gate = Gate(sim, open=False)
    released = []

    def walker(tag):
        yield gate.wait()
        released.append(tag)

    for tag in "abc":
        sim.process(walker(tag))
    sim.call_at(1.0, gate.open)
    sim.run()
    assert sorted(released) == ["a", "b", "c"]
