"""Unit tests for events and conditions."""

import pytest

from repro.sim import Simulator


def test_event_lifecycle():
    sim = Simulator()
    ev = sim.event("e")
    assert not ev.triggered and not ev.processed and ev.ok is None
    ev.succeed(99)
    assert ev.triggered and not ev.processed and ev.ok is True
    sim.run()
    assert ev.processed
    assert ev.value == 99


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unconsumed_failure_raises_from_run():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("lost"))
    with pytest.raises(RuntimeError, match="lost"):
        sim.run()


def test_defused_failure_does_not_raise():
    sim = Simulator()
    ev = sim.event()
    ev.defused = True
    ev.fail(RuntimeError("lost"))
    sim.run()  # no raise


def test_callbacks_receive_event():
    sim = Simulator()
    ev = sim.event()
    seen = []
    ev.callbacks.append(seen.append)
    ev.succeed("v")
    sim.run()
    assert seen == [ev]
    assert seen[0].value == "v"


def test_all_of_waits_for_every_child():
    sim = Simulator()
    t1 = sim.timeout(1.0, value="a")
    t2 = sim.timeout(2.0, value="b")
    cond = sim.all_of([t1, t2])
    sim.run()
    assert cond.processed and cond.ok
    assert cond.value == {t1: "a", t2: "b"}
    assert sim.now == 2.0


def test_any_of_fires_on_first_child():
    sim = Simulator()
    t1 = sim.timeout(1.0, value="fast")
    t2 = sim.timeout(5.0, value="slow")
    cond = sim.any_of([t1, t2])

    def waiter():
        value = yield cond
        assert value == {t1: "fast"}
        return sim.now

    proc = sim.process(waiter())
    assert sim.run_until_complete(proc) == 1.0


def test_empty_all_of_fires_immediately():
    sim = Simulator()
    cond = sim.all_of([])
    sim.run()
    assert cond.processed and cond.ok


def test_empty_any_of_fires_immediately():
    sim = Simulator()
    cond = sim.any_of([])
    sim.run()
    assert cond.processed and cond.ok


def test_condition_over_already_processed_events():
    sim = Simulator()
    t1 = sim.timeout(1.0, value=1)
    sim.run()
    assert t1.processed
    cond = sim.all_of([t1])
    sim.run()
    assert cond.processed and cond.value == {t1: 1}


def test_condition_child_failure_fails_condition():
    sim = Simulator()
    good = sim.timeout(1.0)
    bad = sim.event()
    bad.fail(ValueError("child failed"))
    cond = sim.all_of([good, bad])

    def waiter():
        with pytest.raises(ValueError, match="child failed"):
            yield cond

    proc = sim.process(waiter())
    sim.run_until_complete(proc)


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(ValueError):
        sim1.all_of([sim2.event()])


def test_condition_rejects_non_events():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.all_of([42])


def test_timeout_value_passthrough():
    sim = Simulator()

    def waiter():
        value = yield sim.timeout(1.0, value="payload")
        return value

    proc = sim.process(waiter())
    assert sim.run_until_complete(proc) == "payload"
