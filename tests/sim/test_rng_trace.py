"""Unit tests for RNG streams and the tracer."""

from repro.sim import RngRegistry, Simulator, Tracer


# ----------------------------------------------------------------- RNG
def test_same_seed_same_stream():
    a = RngRegistry(5).stream("x").random(10)
    b = RngRegistry(5).stream("x").random(10)
    assert (a == b).all()


def test_different_names_independent():
    reg = RngRegistry(5)
    a = reg.stream("x").random(10)
    b = reg.stream("y").random(10)
    assert not (a == b).all()


def test_stream_cached():
    reg = RngRegistry(0)
    assert reg.stream("x") is reg.stream("x")
    assert "x" in reg and "y" not in reg


def test_adding_stream_does_not_perturb_existing():
    reg1 = RngRegistry(3)
    s = reg1.stream("a")
    first = s.random(5)

    reg2 = RngRegistry(3)
    reg2.stream("b")  # extra consumer
    second = reg2.stream("a").random(5)
    assert (first == second).all()


def test_fork_is_deterministic_and_distinct():
    reg = RngRegistry(1)
    f1 = reg.fork(2).stream("x").random(4)
    f2 = RngRegistry(1).fork(2).stream("x").random(4)
    assert (f1 == f2).all()
    root = RngRegistry(1).stream("x").random(4)
    assert not (f1 == root).all()


# --------------------------------------------------------------- Tracer
def test_tracer_records_and_selects():
    tr = Tracer()
    tr.record(1.0, "msg", src=0, dst=1)
    tr.record(2.0, "ckpt", rank=3)
    tr.record(3.0, "msg", src=1, dst=0)
    msgs = list(tr.select("msg"))
    assert [m.time for m in msgs] == [1.0, 3.0]
    assert msgs[0].get("dst") == 1
    assert msgs[0].get("missing", "d") == "d"
    assert tr.last("ckpt").get("rank") == 3
    assert tr.last("nope") is None


def test_tracer_disabled_drops_records_keeps_counters():
    tr = Tracer(enabled=False)
    tr.record(1.0, "msg", a=1)
    tr.count("bytes", 100)
    assert tr.records == []
    assert tr["bytes"] == 100


def test_tracer_category_filter():
    tr = Tracer(categories=["keep"])
    tr.record(1.0, "keep", x=1)
    tr.record(1.0, "drop", x=2)
    assert len(tr.records) == 1


def test_tracer_clear():
    tr = Tracer()
    tr.record(1.0, "a")
    tr.count("n")
    tr.clear()
    assert tr.records == [] and tr["n"] == 0


def test_record_as_dict():
    tr = Tracer()
    tr.record(0.0, "x", a=1, b=2)
    assert tr.records[0].as_dict() == {"a": 1, "b": 2}


def test_simulator_installs_disabled_tracer_by_default():
    sim = Simulator()
    sim.trace.record(0.0, "anything", x=1)
    assert sim.trace.records == []
    sim.trace.count("n")
    assert sim.trace["n"] == 1


def test_simulator_accepts_custom_tracer():
    tr = Tracer()
    sim = Simulator(trace=tr)
    assert sim.trace is tr
