"""TimerHandle semantics and tombstone compaction.

The kernel's cancellable timers are the hot path of the flow scheduler:
cancellation must be O(1) and absolute (the callback never runs), lazy
tombstones must never perturb the clock, the watchdog or the monitors, and
compaction must bound the heap so a cancel-heavy workload cannot grow it
without bound.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import SimulationError, Simulator, TimerHandle, Watchdog


def test_call_at_returns_cancellable_handle():
    sim = Simulator()
    fired = []
    handle = sim.call_at(1.0, fired.append, "a")
    assert isinstance(handle, TimerHandle)
    assert handle.time == 1.0
    assert not handle.cancelled
    sim.run()
    assert fired == ["a"]


def test_cancelled_timer_never_fires_and_skips_clock():
    sim = Simulator()
    fired = []
    victim = sim.call_at(1.0, fired.append, "victim")
    sim.call_at(2.0, fired.append, "kept")
    victim.cancel()
    sim.run()
    assert fired == ["kept"]
    # the tombstone at t=1 is discarded without the clock ever being 1.0
    assert sim.now == 2.0
    assert sim.events_processed == 1


def test_cancel_from_inside_callback():
    """Cancelling a same-timestamp sibling from a callback must prevent it."""
    sim = Simulator()
    fired = []
    second = [None]

    def first():
        fired.append("first")
        second[0].cancel()

    sim.call_at(1.0, first)
    second[0] = sim.call_at(1.0, fired.append, "second")
    sim.run()
    assert fired == ["first"]


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_at(-0.5, lambda: None)


def test_peek_skips_tombstones():
    sim = Simulator()
    t1 = sim.call_at(1.0, lambda: None)
    sim.call_at(2.0, lambda: None)
    t1.cancel()
    assert sim.peek() == 2.0


def test_run_until_complete_skips_tombstones_before_limit_check():
    """A cancelled timer past the limit must not raise TimeLimitError."""
    sim = Simulator()
    late = sim.call_at(100.0, lambda: None)
    done = sim.event()
    sim.call_at(1.0, done.succeed)
    late.cancel()
    sim.run_until_complete(done, limit=10.0)
    assert sim.now == 1.0


def test_step_on_tombstone_only_heap_raises():
    sim = Simulator()
    sim.call_at(1.0, lambda: None).cancel()
    with pytest.raises(SimulationError):
        sim.step()


def test_compaction_bounds_heap_growth():
    """A cancel-heavy workload keeps the heap proportional to *live* timers:
    tombstones never exceed live entries once past the compaction floor."""
    sim = Simulator()
    live = [sim.call_at(1e6 + i, lambda: None) for i in range(10)]
    for i in range(10_000):
        sim.call_at(10.0 + i * 1e-3, lambda: None).cancel()
        # invariant after every cancel: heap <= live + max(floor, live + 1)
        assert len(sim._heap) <= len(live) + max(
            Simulator.COMPACT_MIN_TOMBSTONES, len(live) + 1
        )
    assert len(sim._heap) < 2 * (len(live) + Simulator.COMPACT_MIN_TOMBSTONES)


def test_compaction_preserves_order_and_liveness():
    """Compacting mid-run drops no live timer and keeps firing order."""
    sim = Simulator()
    fired = []
    handles = [sim.call_at(float(i + 1), fired.append, i) for i in range(300)]
    for i, handle in enumerate(handles):
        if i % 3 != 0:  # cancel 2/3 -> crosses the compaction threshold
            handle.cancel()
    assert sim._tombstones < 200  # compaction ran at least once
    sim.run()
    assert fired == [i for i in range(300) if i % 3 == 0]


def test_watchdog_report_excludes_tombstones():
    sim = Simulator()
    for i in range(5):
        sim.call_at(1.0 + i, lambda: None, name=f"live-{i}")
    for i in range(5):
        sim.call_at(0.5 + i, lambda: None, name=f"dead-{i}").cancel()
    report = Watchdog._waiting_report(sim)
    assert len(report) == 5
    assert all("live-" in line for line in report)


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=50.0,
                                    allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=60))
@settings(max_examples=80, deadline=None)
def test_random_cancellation_only_live_timers_fire(schedule):
    """For any schedule/cancel pattern: exactly the non-cancelled timers
    fire, in (time, creation order), and never after cancellation."""
    sim = Simulator()
    fired = []
    expected = []
    for index, (delay, keep) in enumerate(schedule):
        handle = sim.call_at(delay, fired.append, index)
        if keep:
            expected.append((delay, index))
        else:
            handle.cancel()
    sim.run()
    assert fired == [index for _delay, index in sorted(expected)]
    assert sim._tombstones == 0
    assert not sim._heap


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_random_mid_run_cancellation(data):
    """Cancels issued *during* the run (from other timers) still guarantee
    the victim never fires."""
    n = data.draw(st.integers(min_value=2, max_value=25))
    delays = data.draw(st.lists(
        st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        min_size=n, max_size=n))
    sim = Simulator()
    fired = []
    handles = {}
    for index, delay in enumerate(delays):
        handles[index] = sim.call_at(delay, fired.append, index)
    # pair up (canceller_time, victim): victims whose fire time is after the
    # canceller must not fire
    n_cancels = data.draw(st.integers(min_value=1, max_value=n // 2))
    cancelled = set()
    for _ in range(n_cancels):
        victim = data.draw(st.integers(min_value=0, max_value=n - 1))
        at = data.draw(st.floats(min_value=0.0, max_value=20.0,
                                 allow_nan=False))
        if at < delays[victim] and victim not in cancelled:
            cancelled.add(victim)
            sim.call_at(at, handles[victim].cancel)
    sim.run()
    assert set(fired) == set(range(n)) - cancelled


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_slot_reuse_never_resurrects_cancelled_timer(data):
    """Re-armable slots reuse sequence numbers from the same counter that
    cancelled timers' tombstones were issued from, and compaction re-keys
    surviving entries in place.  No interleaving of cancels with re-arm
    churn on *other* slots may ever resurrect a cancelled timer — and
    every live slot still fires exactly once, at its final position."""
    sim = Simulator()
    fired = []
    n = data.draw(st.integers(min_value=3, max_value=20))
    handles = [sim.call_at(
        data.draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False)),
        fired.append, index) for index in range(n)]
    alive = set(range(n))
    for _ in range(data.draw(st.integers(min_value=5, max_value=80))):
        index = data.draw(st.integers(min_value=0, max_value=n - 1))
        if index in alive and data.draw(st.booleans()):
            handles[index].cancel()
            alive.discard(index)
        elif index in alive:
            # churn: lazy moves later, eager moves earlier, both legal
            handles[index].rearm(data.draw(st.floats(
                min_value=0.0, max_value=30.0, allow_nan=False)))
    sim.run()
    assert sorted(fired) == sorted(alive)          # no resurrection, no loss
    assert len(fired) == len(set(fired))           # and exactly once each
    expected = sorted(alive, key=lambda i: (handles[i].time, handles[i].seq))
    assert fired == expected                       # at the final position


def test_compaction_bounds_memory_under_100k_churn():
    """100k short-lived timers — a third cancelled, a third re-armed, a
    third fired — with a small persistent live set: the heap (live entries
    plus tombstones) stays bounded by a small multiple of the live set,
    never accumulating the churn."""
    sim = Simulator()
    fired = []
    persistent = [sim.call_at(1e9 + i, fired.append, -1 - i)
                  for i in range(32)]
    floor = Simulator.COMPACT_MIN_TOMBSTONES
    live_churn = 0
    for i in range(100_000):
        handle = sim.call_at(0.5 + (i % 512) * 1e-4, fired.append, i)
        if i % 3 == 0:
            handle.cancel()
        elif i % 3 == 1:
            handle.rearm(0.25)      # earlier: tombstones the first entry
            handle.cancel()
        else:
            live_churn += 1         # left to fire
        if i % 512 == 511:
            before = len(fired)
            sim.run(until=sim.now + 1.0)   # drain the pending churn slice
            live_churn -= len(fired) - before
        # the memory invariant: live entries plus tombstones, bounded by
        # the live set and the compaction policy's floor — never by the
        # 100k timers churned through
        live_now = len(persistent) + live_churn
        assert len(sim._heap) <= 2 * live_now + 2 * floor + 4
        assert sim._tombstones <= max(floor, len(sim._heap) // 2 + 1)
    assert sim._tombstones_total > 60_000   # the churn really happened
    assert sim.compactions > 0
    sim.run(until=2e9)
    assert len(fired) == 32 + sum(1 for i in range(100_000) if i % 3 == 2)
    assert sim._tombstones == 0
