"""Shared machinery for the differential kernel-equivalence rig.

A *program* is a flat list of op tuples — schedule a timer, cancel one,
re-arm one, fire a same-instant event burst, start or cancel a flow, spawn
or kill a process, advance time — interpreted identically on any kernel.
:func:`run_program` executes a program on a named kernel and returns every
observable the simulation produces:

* the raw engine pop stream ``(time, priority, seq)`` (via a step
  listener — the same channel the online monitors use),
* the application-level log (which callback fired, when, in what order),
* the final clock and ``events_processed``.

Two kernels are equivalent on a program iff their observations are equal
— compared both structurally and by ``repr`` so a ``-0.0``/``0.0`` or an
int/float divergence cannot hide behind ``==``.

The op vocabulary is deliberately aimed at the optimised kernel's sharp
edges: ``rearm`` exercises lazy anchor moves, ``cancel`` the tombstone
path, ``burst`` same-instant tie-breaks (both priorities), ``flow`` /
``flow_cancel`` the inlined re-rate loop, ``spawn`` / ``kill`` the urgent
interrupt machinery, and heavy churn drives compaction.

Used by ``test_kernel_differential.py`` (Hypothesis equivalence) and
``test_kernel_rig_negatives.py`` (deliberately broken kernels must be
caught by exactly this comparison).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from hypothesis import strategies as st

from repro.net.flows import FlowScheduler
from repro.net.link import Link
from repro.sim import Interrupt, Watchdog, make_simulator
from repro.sim.events import NORMAL, URGENT

__all__ = ["DELAYS", "OPS", "PROGRAMS", "run_program", "observations_match"]

# Delays mix a small discrete set (to force same-instant collisions, the
# hardest ordering case) with arbitrary floats (to catch ulp-level drift).
DELAYS = st.one_of(
    st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
    st.floats(min_value=0.0, max_value=10.0,
              allow_nan=False, allow_infinity=False),
)

OPS = st.one_of(
    st.tuples(st.just("sleep"), DELAYS),
    st.tuples(st.just("timer"), DELAYS),
    st.tuples(st.just("cancel"), st.integers(0, 63)),
    st.tuples(st.just("rearm"), st.integers(0, 63), DELAYS),
    st.tuples(st.just("burst"), st.integers(1, 6), st.booleans()),
    st.tuples(st.just("flow"),
              st.sampled_from([10.0, 1e3, 5e4, 2e6]),
              st.booleans(), st.integers(1, 7)),
    st.tuples(st.just("flow_cancel"), st.integers(0, 63)),
    st.tuples(st.just("spawn"), DELAYS),
    st.tuples(st.just("kill"), st.integers(0, 63)),
)

PROGRAMS = st.lists(OPS, min_size=1, max_size=30)


def _driver(sim, scheduler, links, program: List[Tuple], log: List) -> Any:
    timers: List = []
    flows: List = []
    procs: List = []
    tags = iter(range(1_000_000))

    def timer_fired(tag):
        log.append(("timer", tag, sim.now))

    def burst_fired(event):
        log.append(("burst", event.value, sim.now))

    def flow_done(event):
        # A cancelled flow fails its done event; acknowledge so the
        # failure does not (correctly, on both kernels) crash the run.
        event.defused = True
        log.append(("flow", bool(event.ok), sim.now))

    def child(delay):
        try:
            yield sim.timeout(delay)
            log.append(("child-done", sim.now))
        except Interrupt:
            log.append(("child-interrupted", sim.now))

    for op in program:
        kind = op[0]
        if kind == "sleep":
            yield sim.timeout(op[1])
        elif kind == "timer":
            timers.append(sim.call_at(op[1], timer_fired, next(tags)))
        elif kind == "cancel":
            if timers:
                timers[op[1] % len(timers)].cancel()
        elif kind == "rearm":
            if timers:
                timer = timers[op[1] % len(timers)]
                if not timer.cancelled:
                    timer.rearm(op[2])
        elif kind == "burst":
            count, urgent = op[1], op[2]
            priority = URGENT if urgent else NORMAL
            for _ in range(count):
                event = sim.event(name="burst")
                event.callbacks.append(burst_fired)
                event.succeed(next(tags), priority=priority)
        elif kind == "flow":
            nbytes, capped, mask = op[1], op[2], op[3]
            path = [links[i] for i in range(len(links)) if mask >> i & 1]
            flow = scheduler.start(path or [links[0]], nbytes,
                                   cap=nbytes / 4.0 if capped else None)
            flow.done.callbacks.append(flow_done)
            flows.append(flow)
        elif kind == "flow_cancel":
            if flows:
                scheduler.cancel(flows[op[1] % len(flows)])
        elif kind == "spawn":
            procs.append(sim.process(child(op[1]),
                                     name=f"child{len(procs)}"))
        elif kind == "kill":
            if procs:
                procs[op[1] % len(procs)].interrupt()
        else:  # pragma: no cover - strategy and ops must stay in sync
            raise AssertionError(f"unknown op {op!r}")


def run_program(program: List[Tuple], kernel: str = "fast",
                sim_factory=None) -> Tuple:
    """Execute ``program`` on ``kernel``; return all observables.

    ``sim_factory`` (used by the rig-negative tests) bypasses the kernel
    registry to construct a deliberately broken simulator class.
    """
    if sim_factory is not None:
        sim = sim_factory()
    else:
        sim = make_simulator(seed=5, watchdog=Watchdog(), kernel=kernel)
    pops: List[Tuple[float, int, int]] = []
    sim.trace.step_listeners.append(
        lambda time, priority, seq: pops.append((time, priority, seq))
    )
    links = (
        Link("backbone", 100.0),
        Link("nic-a", 75.0),
        Link("nic-b", 50.0),
    )
    scheduler = FlowScheduler(sim)
    log: List = []
    sim.process(_driver(sim, scheduler, links, program, log), name="driver")
    sim.run()
    return (tuple(pops), tuple(log), sim.now, sim.events_processed)


def observations_match(a: Tuple, b: Tuple) -> bool:
    """Structural and repr equality (repr catches -0.0 vs 0.0, 1 vs 1.0)."""
    return a == b and repr(a) == repr(b)
