"""Verification of the differential rig itself.

A differential test that compares a kernel against a reference is only as
good as its power to *reject*: if a broken kernel sails through, the green
checkmark on the real kernel means nothing.  Mirroring
``tests/verify/test_monitor_negatives.py`` (which feeds doctored traces to
every monitor), this suite implements deliberately broken kernels — each a
minimal twist on :class:`ReferenceSimulator` realising one of the failure
modes the optimised engine's machinery could plausibly introduce — and
asserts the rig's observation comparison catches every one on a
hand-picked witness program.

The witness programs are deliberately tiny.  If the rig can catch each
bug on a four-line program, the 200-example Hypothesis sweep over the same
comparison has real teeth.
"""

from __future__ import annotations

from typing import Optional, Tuple

import pytest

from repro.sim import Watchdog
from repro.sim.reference import ReferenceSimulator
from tests.sim.kernel_programs import observations_match, run_program

pytestmark = pytest.mark.unmonitored


class UnstableTieBreakSimulator(ReferenceSimulator):
    """Breaks same-timestamp determinism: at equal ``(time, priority)``
    the *newest* item fires first (sequence order reversed) — the bug a
    frozen or reused sequence number would cause."""

    def _scan_next(self):
        best = None
        for index, (etime, priority, eseq, item) in enumerate(self._heap):
            if item.cancelled:
                continue
            iseq = item.seq
            if iseq == eseq:
                key = (etime, priority, -eseq)
            else:
                if eseq != item.heap_seq:
                    continue
                key = (item.time, priority, -iseq)
            if best is None or key < best[0]:
                best = (key, index, item)
        if best is None:
            return None
        key, index, item = best
        return index, (key[0], key[1], -key[2], item)


class ResurrectingSimulator(ReferenceSimulator):
    """Fires cancelled items: the bug a missed tombstone check (or a
    freelist slot reused without invalidating its old heap entry) would
    cause."""

    def _scan_next(self):
        best_index = -1
        best_key: Optional[Tuple[float, int, int]] = None
        best_item = None
        for index, (etime, priority, eseq, item) in enumerate(self._heap):
            # BUG under test: no `item.cancelled` check.
            iseq = item.seq
            if iseq == eseq:
                key = (etime, priority, eseq)
            else:
                if eseq != item.heap_seq:
                    continue
                key = (item.time, priority, iseq)
            if best_key is None or key < best_key:
                best_index, best_key, best_item = index, key, item
        if best_key is None:
            return None
        return best_index, (best_key[0], best_key[1], best_key[2], best_item)


class StaleAnchorSimulator(ReferenceSimulator):
    """Fires a lazily re-armed timer at its *old* (anchor) position: the
    bug the fast kernel's pop-loop reconciliation exists to prevent."""

    def _scan_next(self):
        best_index = -1
        best_key: Optional[Tuple[float, int, int]] = None
        best_item = None
        for index, (etime, priority, eseq, item) in enumerate(self._heap):
            if item.cancelled:
                continue
            if item.seq != eseq and eseq != item.heap_seq:
                continue
            # BUG under test: the entry's pushed key is trusted even when
            # the handle's authoritative (time, seq) has moved past it.
            key = (etime, priority, eseq)
            if best_key is None or key < best_key:
                best_index, best_key, best_item = index, key, item
        if best_key is None:
            return None
        return best_index, (best_key[0], best_key[1], best_key[2], best_item)


class SwallowingSimulator(ReferenceSimulator):
    """Silently drops one scheduled item (the third pop never fires): the
    bug an over-eager compaction pass discarding a live entry would
    cause."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._pops_seen = 0

    def _scan_next(self):
        found = super()._scan_next()
        if found is None:
            return None
        self._pops_seen += 1
        if self._pops_seen == 3:
            self._take(found[0])            # BUG under test: drop it
            return super()._scan_next()
        return found


#: broken kernel -> witness program that must expose it.  Each witness is
#: the smallest program whose observations depend on the invariant the
#: kernel breaks.
BROKEN_KERNELS = {
    "unstable_tie_break": (
        UnstableTieBreakSimulator,
        [("burst", 3, False), ("timer", 0.0), ("sleep", 1.0)],
    ),
    "resurrects_cancelled": (
        ResurrectingSimulator,
        [("timer", 1.0), ("cancel", 0), ("timer", 2.0), ("sleep", 3.0)],
    ),
    "fires_stale_anchor": (
        StaleAnchorSimulator,
        # timer armed at 1.0, lazily moved to 2.0; a timeout at 1.5 must
        # fire in between — the broken kernel fires the timer first, at
        # its stale position.
        [("timer", 1.0), ("rearm", 0, 2.0), ("sleep", 1.5), ("sleep", 1.5)],
    ),
    "swallows_live_event": (
        SwallowingSimulator,
        [("timer", 0.5), ("timer", 1.0), ("timer", 1.5), ("sleep", 2.0)],
    ),
}


def _observe(program, sim_cls):
    """Observations of ``program`` on ``sim_cls``; a crash is itself a
    (caught) divergence, folded into the observation value."""
    factory = lambda: sim_cls(seed=5, watchdog=Watchdog())  # noqa: E731
    try:
        return run_program(program, sim_factory=factory)
    except Exception as exc:  # a broken kernel may also simply blow up
        return ("crashed", type(exc).__name__, str(exc))


@pytest.mark.parametrize("name", sorted(BROKEN_KERNELS))
def test_rig_catches_broken_kernel(name):
    sim_cls, witness = BROKEN_KERNELS[name]
    fast = run_program(witness, kernel="fast")
    broken = _observe(witness, sim_cls)
    assert not observations_match(fast, broken), (
        f"rig failed to catch {name}: {fast!r}"
    )


@pytest.mark.parametrize("name", sorted(BROKEN_KERNELS))
def test_witnesses_pass_on_clean_kernels(name):
    """The witnesses discriminate on the *bug*, not on kernel identity:
    the honest reference kernel matches the fast kernel on every one."""
    _, witness = BROKEN_KERNELS[name]
    assert observations_match(
        run_program(witness, kernel="fast"),
        run_program(witness, kernel="reference"),
    )


def test_every_broken_kernel_differs_from_reference():
    """The broken kernels genuinely override behaviour (guards against a
    refactor quietly making a subclass a no-op, which would turn
    test_rig_catches_broken_kernel into a tautology... backwards)."""
    for name, (sim_cls, _) in BROKEN_KERNELS.items():
        assert sim_cls._scan_next is not ReferenceSimulator._scan_next, name
