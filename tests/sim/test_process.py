"""Unit tests for generator processes and interruption."""

import pytest

from repro.sim import Interrupt, Simulator


def test_process_runs_at_spawn_time():
    sim = Simulator()
    marks = []

    def worker():
        marks.append(sim.now)
        yield sim.timeout(1.0)
        marks.append(sim.now)

    sim.process(worker())
    sim.run()
    assert marks == [0.0, 1.0]


def test_process_return_value_is_event_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        return "done"

    proc = sim.process(worker())
    sim.run()
    assert proc.processed and proc.ok and proc.value == "done"


def test_join_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 7

    def parent():
        value = yield sim.process(child())
        return value + 1

    proc = sim.process(parent())
    assert sim.run_until_complete(proc) == 8


def test_join_already_finished_process():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "x"

    kid = sim.process(child())

    def parent():
        yield sim.timeout(5.0)
        value = yield kid
        return value

    proc = sim.process(parent())
    assert sim.run_until_complete(proc) == "x"


def test_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise KeyError("inner")

    def parent():
        try:
            yield sim.process(child())
        except KeyError:
            return "caught"

    proc = sim.process(parent())
    assert sim.run_until_complete(proc) == "caught"


def test_unjoined_exception_raises_from_run():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise KeyError("nobody listens")

    sim.process(child())
    with pytest.raises(KeyError):
        sim.run()


def test_interrupt_wakes_process_with_cause():
    sim = Simulator()
    outcome = []

    def worker():
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            outcome.append((sim.now, exc.cause))

    proc = sim.process(worker())
    sim.call_at(3.0, proc.interrupt, "node failure")
    sim.run()
    assert outcome == [(3.0, "node failure")]


def test_unhandled_interrupt_kills_process_silently():
    sim = Simulator()

    def worker():
        yield sim.timeout(100.0)

    proc = sim.process(worker())
    sim.call_at(1.0, proc.interrupt)
    sim.run()  # must not raise
    assert proc.processed and not proc.ok
    assert isinstance(proc.value, Interrupt)


def test_interrupt_dead_process_is_noop():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)

    proc = sim.process(worker())
    sim.run()
    proc.interrupt()  # no effect, no raise
    sim.run()
    assert proc.ok


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def worker():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            log.append(("interrupted", sim.now))
        yield sim.timeout(1.0)
        log.append(("resumed", sim.now))

    proc = sim.process(worker())
    sim.call_at(2.0, proc.interrupt)
    sim.run()
    # The abandoned 100 s timeout still drains from the heap later, but it
    # must not affect the process.
    assert log == [("interrupted", 2.0), ("resumed", 3.0)]


def test_alive_flag():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)

    proc = sim.process(worker())
    assert proc.alive
    sim.run()
    assert not proc.alive


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def worker():
        yield 42

    proc = sim.process(worker())
    with pytest.raises(TypeError):
        sim.run()
    assert proc.processed and not proc.ok


def test_spawn_rejects_non_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_interrupt_does_not_leak_target_event_wakeup():
    """After an interrupt, the originally awaited event must not resume us."""
    sim = Simulator()
    log = []

    def worker():
        try:
            yield sim.timeout(5.0)
            log.append("timeout fired into worker")
        except Interrupt:
            log.append("interrupted")
            yield sim.timeout(10.0)
            log.append("second wait done")

    proc = sim.process(worker())
    sim.call_at(1.0, proc.interrupt)
    sim.run()
    assert log == ["interrupted", "second wait done"]
