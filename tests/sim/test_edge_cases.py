"""Edge-case coverage for the kernel: cancelled waiters, stale callbacks,
condition corner cases."""

import pytest

from repro.sim import Interrupt, Simulator, Store, Resource
from repro.sim.primitives import Gate


def test_store_skips_interrupted_waiter():
    """An interrupted getter must not swallow the next item."""
    sim = Simulator()
    store = Store(sim, "s")
    got = []

    def victim():
        yield store.get()  # will be interrupted before anything arrives

    def survivor():
        item = yield store.get()
        got.append(item)

    victim_proc = sim.process(victim())
    sim.process(survivor())
    sim.call_at(1.0, victim_proc.interrupt)
    sim.call_at(2.0, store.put, "payload")
    sim.run()
    assert got == ["payload"]


def test_resource_skips_interrupted_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="r")
    order = []

    def holder():
        yield res.acquire()
        yield sim.timeout(5.0)
        res.release()

    def victim():
        yield res.acquire()
        order.append("victim")  # pragma: no cover - must not happen

    def survivor():
        yield sim.timeout(1.0)
        yield res.acquire()
        order.append("survivor")
        res.release()

    sim.process(holder())
    victim_proc = sim.process(victim())
    sim.process(survivor())
    sim.call_at(2.0, victim_proc.interrupt)
    sim.run()
    assert order == ["survivor"]


def test_gate_skips_interrupted_waiter():
    sim = Simulator()
    gate = Gate(sim, open=False)
    passed = []

    def walker(tag):
        yield gate.wait()
        passed.append(tag)

    victim_proc = sim.process(walker("victim"))
    sim.process(walker("ok"))
    sim.call_at(1.0, victim_proc.interrupt)
    sim.call_at(2.0, gate.open)
    sim.run()
    assert passed == ["ok"]


def test_timer_cancel_prevents_callback():
    sim = Simulator()
    fired = []
    timer = sim.call_at(5.0, fired.append, "x")
    sim.call_at(7.0, fired.append, "y")
    timer.cancel()
    timer.cancel()  # idempotent
    sim.run()
    assert fired == ["y"]
    assert sim.now == 7.0
    # the tombstone is discarded without advancing the clock or counting
    # as a processed event
    assert sim.events_processed == 1


def test_interrupt_cause_none():
    sim = Simulator()
    causes = []

    def worker():
        try:
            yield sim.timeout(10.0)
        except Interrupt as exc:
            causes.append(exc.cause)

    proc = sim.process(worker())
    sim.call_at(1.0, proc.interrupt)
    sim.run()
    assert causes == [None]


def test_condition_duplicate_children():
    sim = Simulator()
    t = sim.timeout(1.0, value="v")
    cond = sim.all_of([t, t])
    sim.run()
    assert cond.processed and cond.ok
    assert cond.value == {t: "v"}


def test_nested_conditions():
    sim = Simulator()
    inner = sim.any_of([sim.timeout(1.0, value="a"), sim.timeout(9.0)])
    outer = sim.all_of([inner, sim.timeout(2.0, value="b")])

    def waiter():
        value = yield outer
        return sim.now

    assert sim.run_until_complete(sim.process(waiter())) == 2.0


def test_process_joining_interrupted_process_sees_failure():
    sim = Simulator()

    def child():
        yield sim.timeout(100.0)

    kid = sim.process(child())

    def parent():
        try:
            yield kid
        except Interrupt:
            return "child was killed"

    proc = sim.process(parent())
    sim.call_at(1.0, kid.interrupt)
    assert sim.run_until_complete(proc) == "child was killed"


def test_timeout_zero_fires_at_now():
    sim = Simulator()
    times = []

    def worker():
        yield sim.timeout(0.0)
        times.append(sim.now)

    sim.process(worker())
    sim.run()
    assert times == [0.0]
