"""Unit tests for the simulator event loop."""

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_does_not_process_later_events():
    sim = Simulator()
    fired = []
    sim.call_at(5.0, fired.append, "late")
    sim.run(until=3.0)
    assert fired == []
    assert sim.now == 3.0
    sim.run()
    assert fired == ["late"]
    assert sim.now == 5.0


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.call_at(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_events_at_same_time_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.call_at(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_call_at_passes_arguments():
    sim = Simulator()
    seen = []
    sim.call_at(0.5, lambda a, b: seen.append((a, b)), 1, 2)
    sim.run()
    assert seen == [(1, 2)]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises((SimulationError, ValueError)):
        sim.timeout(-1.0)


def test_step_on_empty_heap_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    sim.timeout(2.0)
    assert sim.peek() == 2.0


def test_run_until_complete_returns_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(3.0)
        return 42

    proc = sim.process(worker())
    assert sim.run_until_complete(proc) == 42
    assert sim.now == 3.0


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    never = sim.event()

    def worker():
        yield never

    proc = sim.process(worker())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(proc)


def test_run_until_complete_respects_limit():
    sim = Simulator()

    def worker():
        yield sim.timeout(100.0)

    proc = sim.process(worker())
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_complete(proc, limit=10.0)


def test_run_until_complete_raises_process_exception():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    proc = sim.process(worker())
    with pytest.raises(ValueError, match="boom"):
        sim.run_until_complete(proc)


def test_determinism_same_seed_same_trajectory():
    def build_and_run(seed):
        sim = Simulator(seed=seed)
        log = []

        def worker(i):
            rng = sim.rng.stream(f"w{i}")
            for _ in range(5):
                yield sim.timeout(float(rng.uniform(0.1, 1.0)))
                log.append((round(sim.now, 12), i))

        for i in range(4):
            sim.process(worker(i))
        sim.run()
        return log

    assert build_and_run(7) == build_and_run(7)
    assert build_and_run(7) != build_and_run(8)
