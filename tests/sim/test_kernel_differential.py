"""Differential kernel-equivalence rig: fast kernel vs. naive reference.

The optimised :class:`~repro.sim.engine.Simulator` (lazy tombstones,
slot-encoded re-armable timers, stale-anchor reconciliation, in-place
compaction, inlined hot loops) must be *observably identical* to the
O(n)-per-pop :class:`~repro.sim.reference.ReferenceSimulator`, which
implements the ordering spec directly.  Every figure in this repo rests on
that equivalence — a divergence here is a silently corrupted paper figure.

Three layers, increasing in scope:

1. Hypothesis properties run randomly generated programs (timers, cancels,
   re-arms, same-instant bursts at both priorities, flow churn, process
   kills — see ``kernel_programs``) on both kernels and compare the full
   observation tuple event-for-event.  ≥200 examples across the
   properties.
2. Hand-written witness programs pin the specific sharp edges the
   optimisations introduced (lazy re-arm past a pending timeout,
   cancel-then-churn, compaction under churn, zero-delay cascades).
3. Whole-pipeline sweeps run real perf workloads and a real figure grid
   point on both kernels and compare the JSON-serialised results
   byte-for-byte — monitor verdicts (which count every live pop) included.

``test_kernel_rig_negatives.py`` proves this rig *would* catch a broken
kernel; the engine-selection plumbing itself (``REPRO_KERNEL``, unknown
names) is covered at the bottom of this file.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.apps import BT
from repro.harness import get_profile
from repro.harness.runner import execute
from repro.perf.workloads import WORKLOADS, suite_params
from repro.sim import ReferenceSimulator, SimulationError, Simulator, make_simulator
from repro.sim.reference import KERNEL_ENV
from tests.sim.kernel_programs import PROGRAMS, observations_match, run_program

pytestmark = pytest.mark.unmonitored  # programs attach no protocol traces


def assert_equivalent(program) -> None:
    fast = run_program(program, kernel="fast")
    reference = run_program(program, kernel="reference")
    assert observations_match(fast, reference), (
        f"kernel divergence on {program!r}:\n fast={fast!r}\n  ref={reference!r}"
    )


# --------------------------------------------------------------- layer 1
@given(program=PROGRAMS)
@settings(max_examples=140, deadline=None)
def test_random_programs_equivalent(program):
    """The headline property: any program, same observations."""
    assert_equivalent(program)


@given(program=PROGRAMS)
@settings(max_examples=60, deadline=None)
def test_random_programs_equivalent_second_seedline(program):
    """A second independent Hypothesis seedline, lifting the rig past the
    200-example floor even when the first property shrinks early."""
    assert_equivalent(program)


# --------------------------------------------------------------- layer 2
WITNESSES = {
    "lazy_rearm_past_pending_timeout": [
        ("timer", 1.0),
        ("sleep", 0.5),   # timeout at 0.5 lands between old and new position
        ("rearm", 0, 2.0),
        ("sleep", 3.0),
    ],
    "rearm_earlier_supersedes_anchor": [
        ("timer", 5.0),
        ("rearm", 0, 1.0),
        ("sleep", 6.0),
    ],
    "cancel_then_heavy_churn_compacts": [
        ("timer", 9.0),
        ("cancel", 0),
    ] + [("timer", 0.25), ("cancel", 1)] * 40 + [("sleep", 10.0)],
    "same_instant_burst_tiebreak": [
        ("burst", 6, False),
        ("burst", 3, True),   # urgent beats normal at the same timestamp
        ("timer", 0.0),
        ("spawn", 0.0),
    ],
    "flow_churn_with_cancel": [
        ("flow", 2e6, False, 0b111),
        ("sleep", 1.0),
        ("flow", 5e4, True, 0b001),
        ("flow", 1e3, False, 0b101),
        ("flow_cancel", 0),
        ("sleep", 50.0),
    ],
    "kill_during_timer_wait": [
        ("spawn", 4.0),
        ("spawn", 4.0),
        ("sleep", 2.0),
        ("kill", 0),
        ("sleep", 5.0),
    ],
    "rearm_inside_own_callback_window": [
        # timer fires, driver immediately re-arms another timer that shares
        # the fire instant — exercises the fire-then-push-fresh path
        ("timer", 1.0),
        ("timer", 1.0),
        ("sleep", 1.0),
        ("rearm", 1, 0.0),
        ("sleep", 1.0),
    ],
}


@pytest.mark.parametrize("name", sorted(WITNESSES))
def test_witness_program_equivalent(name):
    assert_equivalent(WITNESSES[name])


# --------------------------------------------------------------- layer 3
#: extra keys that describe the kernel's internals rather than the
#: simulation (residual heap length differs by design: the fast kernel
#: leaves tombstones behind, the reference bag swap-removes eagerly)
_KERNEL_INTERNAL_EXTRAS = frozenset({"heap_peak_hint"})


def _workload_fingerprint(result) -> str:
    """Canonical JSON of everything a workload result observes."""
    extra = {k: v for k, v in result.extra.items()
             if k not in _KERNEL_INTERNAL_EXTRAS}
    return json.dumps(
        {"events": result.events, "pops": result.pops, "extra": extra},
        sort_keys=True,
    )


@pytest.mark.slow
@pytest.mark.parametrize("workload", ["bt_wave", "flow_churn", "chaos_kill"])
def test_perf_workload_byte_equivalent(workload, monkeypatch):
    """Smoke-sized perf workloads produce byte-identical results on both
    kernels (the workloads construct their engine via make_simulator)."""
    params = suite_params("smoke")[workload]
    fingerprints = {}
    for kernel in ("fast", "reference"):
        monkeypatch.setenv(KERNEL_ENV, kernel)
        fingerprints[kernel] = _workload_fingerprint(
            WORKLOADS[workload](**params))
    assert fingerprints["fast"] == fingerprints["reference"]


@pytest.mark.slow
def test_figure_grid_point_byte_equivalent(monkeypatch):
    """A real figure grid point — full harness, monitors on — is
    byte-identical across kernels, monitor ``checked`` counts included
    (the liveness monitor counts every live pop, so this pins the pop
    stream of the whole run, not just its end state)."""
    profile = get_profile("smoke", seed=123)
    bench = BT(klass="B", scale=profile.time_scale)
    rows = {}
    for kernel in ("fast", "reference"):
        monkeypatch.setenv(KERNEL_ENV, kernel)
        result = execute(bench, 4, "pcl", profile, period=30.0,
                         name=f"diff-{kernel}")
        meta = dict(result.meta)
        meta.pop("name")           # differs by construction; all else must not
        rows[kernel] = json.dumps(
            {"row": result.row(), "completion": result.completion,
             "meta": meta}, sort_keys=True, default=str)
    assert rows["fast"] == rows["reference"]


# ------------------------------------------------------- selection plumbing
def test_make_simulator_defaults_to_fast(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    assert type(make_simulator(seed=1)) is Simulator


def test_make_simulator_env_selects_reference(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, "reference")
    assert type(make_simulator(seed=1)) is ReferenceSimulator


def test_make_simulator_explicit_kernel_overrides_env(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, "reference")
    assert type(make_simulator(seed=1, kernel="fast")) is Simulator


def test_make_simulator_unknown_kernel_is_hard_error(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, "turbo")
    with pytest.raises(SimulationError, match="unknown simulation kernel"):
        make_simulator(seed=1)
