"""Shared fixtures for MPI-layer tests."""

import pytest

from repro.mpi import FtSockChannel, MPIJob
from repro.net import ClusterNetwork
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=1)


def make_job(sim, app_factory, size=2, channel_cls=FtSockChannel, n_nodes=None,
             image_bytes=0.0, **net_kwargs):
    """Build a small cluster job for tests."""
    net = ClusterNetwork(sim, n_nodes=n_nodes or size, **net_kwargs)
    endpoints = net.place(size)
    job = MPIJob(sim, net, endpoints, app_factory, channel_cls,
                 image_bytes=image_bytes)
    return job, net


def run_job(sim, job, limit=None):
    """Start the job and run to completion; returns completion time."""
    job.start()
    return sim.run_until_complete(job.completed, limit=limit)
