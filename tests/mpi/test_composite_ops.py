"""Tests for sendrecv and waitall."""

from tests.mpi.conftest import make_job, run_job


def test_sendrecv_ring(sim):
    results = {}

    def app(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        got = yield from ctx.sendrecv(right, left, send_tag=9,
                                      data=ctx.rank, nbytes=64)
        results[ctx.rank] = got

    job, _ = make_job(sim, app, size=5)
    run_job(sim, job)
    assert results == {r: (r - 1) % 5 for r in range(5)}


def test_sendrecv_distinct_tags(sim):
    results = {}

    def app(ctx):
        peer = 1 - ctx.rank
        got = yield from ctx.sendrecv(peer, peer, send_tag=ctx.rank,
                                      recv_tag=peer, data=f"r{ctx.rank}",
                                      nbytes=8)
        results[ctx.rank] = got

    job, _ = make_job(sim, app, size=2)
    run_job(sim, job)
    assert results == {0: "r1", 1: "r0"}


def test_waitall_returns_in_request_order(sim):
    out = {}

    def app(ctx):
        if ctx.rank == 0:
            for i in range(4):
                yield from ctx.send(1, tag=i, data=i * 10, nbytes=32)
        else:
            requests = [ctx.irecv(0, tag=i) for i in range(4)]
            values = yield from ctx.waitall(requests)
            out["values"] = [data for data, _status in values]

    job, _ = make_job(sim, app, size=2)
    run_job(sim, job)
    assert out["values"] == [0, 10, 20, 30]


def test_waitall_mixed_send_recv(sim):
    def app(ctx):
        peer = 1 - ctx.rank
        requests = [ctx.isend(peer, 5, None, 128), ctx.irecv(peer, 5)]
        yield from ctx.waitall(requests)

    job, _ = make_job(sim, app, size=2)
    run_job(sim, job)
    assert job.completed.triggered
