"""Tests of the hot-path shortcuts: they must be *transparent* — same
semantics and (for the inline network path) same timing as the general
machinery."""

import pytest

from repro.mpi import ChVChannel, FtSockChannel
from repro.net import ClusterNetwork
from repro.sim import Simulator

from tests.mpi.conftest import make_job, run_job


# ------------------------------------------------------- channel fast send
def test_fast_send_requires_connection(sim):
    def app(ctx):
        yield from ctx.compute(0.0)

    job, _ = make_job(sim, app, size=2)
    run_job(sim, job)
    assert job.channels[0].try_fast_send(1, 1, None, 8) is None


def test_fast_send_respects_closed_gate(sim):
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 1, None, 8)
        else:
            yield from ctx.recv(0, 1)

    job, _ = make_job(sim, app, size=2)
    run_job(sim, job)  # connection now established
    channel = job.channels[0]
    assert channel.try_fast_send(1, 1, None, 8) is not None
    channel.send_gate(1).close()
    assert channel.try_fast_send(1, 1, None, 8) is None
    channel.open_send_gates()
    channel.global_send_gate.close()
    assert channel.try_fast_send(1, 1, None, 8) is None
    sim.run()


def test_fast_send_declined_by_blocking_overhead_channel(sim):
    """ch_v serializes through its daemon, so it must take the slow path."""
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 1, None, 8)
        else:
            yield from ctx.recv(0, 1)

    job, _ = make_job(sim, app, size=2, channel_cls=ChVChannel)
    run_job(sim, job)
    assert job.channels[0].try_fast_send(1, 1, None, 8) is None


def test_transfer_tax_zero_without_transfer(sim):
    def app(ctx):
        yield from ctx.compute(0.0)

    job, _ = make_job(sim, app, size=2)
    run_job(sim, job)
    assert job.channels[0].transfer_tax() == 0.0


# ------------------------------------------------- inline network shortcut
def test_inline_and_flow_paths_agree_on_timing():
    """A small message must take exactly the same time whether it goes
    through the inline shortcut or the fluid-flow pump."""
    def measure(nbytes):
        sim = Simulator(seed=1)
        net = ClusterNetwork(sim, n_nodes=2)
        a, b = net.place(2)
        ea, eb = net.connect(a, b).ends()

        def roundtrip():
            ea.send("m", nbytes=nbytes)
            yield eb.recv()
            return sim.now

        return sim.run_until_complete(sim.process(roundtrip()))

    # 2048 B rides the inline path; compare with the pump path by stuffing
    # the pipe first so the inline check fails.
    def measure_pumped(nbytes):
        sim = Simulator(seed=1)
        net = ClusterNetwork(sim, n_nodes=2)
        a, b = net.place(2)
        ea, eb = net.connect(a, b).ends()
        ea.send("first", nbytes=nbytes)  # occupies the pump

        def roundtrip():
            ea.send("m", nbytes=nbytes)
            yield eb.recv()
            first = sim.now
            yield eb.recv()
            return sim.now - first

        return sim.run_until_complete(sim.process(roundtrip()))

    inline_time = measure(1000.0)
    gap = measure_pumped(1000.0)
    bandwidth = ClusterNetwork(Simulator(), 2).fabric.bandwidth
    assert inline_time == pytest.approx(
        ClusterNetwork(Simulator(), 2).fabric.latency + 1000.0 / bandwidth)
    # back-to-back pumped messages are spaced by their serialization time
    assert gap == pytest.approx(1000.0 / bandwidth, rel=1e-6)


def test_large_message_skips_inline_path():
    sim = Simulator(seed=1)
    net = ClusterNetwork(sim, n_nodes=2)
    a, b = net.place(2)
    ea, eb = net.connect(a, b).ends()
    ea.send("big", nbytes=1e6)
    assert ea._out.pumping  # flow machinery engaged

    def reader():
        yield eb.recv()
        return sim.now

    t = sim.run_until_complete(sim.process(reader()))
    assert t == pytest.approx(net.fabric.latency + 1e6 / net.fabric.bandwidth,
                              rel=1e-6)


def test_inline_path_respects_fifo_after_big_message():
    sim = Simulator(seed=1)
    net = ClusterNetwork(sim, n_nodes=2)
    a, b = net.place(2)
    ea, eb = net.connect(a, b).ends()
    ea.send("big", nbytes=5e6)

    received = []

    def reader():
        received.append((yield eb.recv()))
        received.append((yield eb.recv()))

    proc = sim.process(reader())
    # small message sent later while the big flow occupies the link: must
    # not overtake
    sim.call_at(0.001, ea.send, "small", 8.0)
    sim.run_until_complete(proc)
    assert received == ["big", "small"]


def test_inline_send_event_fires(sim):
    net = ClusterNetwork(sim, n_nodes=2)
    a, b = net.place(2)
    ea, _ = net.connect(a, b).ends()

    def sender():
        yield ea.send("x", nbytes=8.0)
        return sim.now

    assert sim.run_until_complete(sim.process(sender())) >= 0.0
