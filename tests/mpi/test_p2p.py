"""Integration tests: point-to-point communication through jobs."""

import pytest

from repro.mpi import ANY_SOURCE, ChVChannel, FtSockChannel, NemesisChannel

from tests.mpi.conftest import make_job, run_job


def test_two_rank_roundtrip(sim):
    results = {}

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, tag=5, data={"k": 1}, nbytes=100)
            reply = yield from ctx.recv(1, tag=6)
            results["reply"] = reply
        else:
            data = yield from ctx.recv(0, tag=5)
            results["got"] = data
            yield from ctx.send(0, tag=6, data="ack", nbytes=10)

    job, _ = make_job(sim, app, size=2)
    run_job(sim, job)
    assert results == {"got": {"k": 1}, "reply": "ack"}


def test_many_messages_fifo(sim):
    received = []

    def app(ctx):
        if ctx.rank == 0:
            for i in range(50):
                yield from ctx.send(1, tag=1, data=i, nbytes=64)
        else:
            for _ in range(50):
                received.append((yield from ctx.recv(0, tag=1)))

    job, _ = make_job(sim, app, size=2)
    run_job(sim, job)
    assert received == list(range(50))


def test_isend_irecv(sim):
    out = {}

    def app(ctx):
        if ctx.rank == 0:
            reqs = [ctx.isend(1, tag=i, data=i * i, nbytes=32) for i in range(4)]
            for req in reqs:
                yield from req.wait()
        else:
            reqs = [ctx.irecv(0, tag=i) for i in range(4)]
            vals = []
            for req in reqs:
                data, status = yield from req.wait()
                vals.append((status.tag, data))
            out["vals"] = vals

    job, _ = make_job(sim, app, size=2)
    run_job(sim, job)
    assert out["vals"] == [(0, 0), (1, 1), (2, 4), (3, 9)]


def test_any_source_recv(sim):
    seen = []

    def app(ctx):
        if ctx.rank == 0:
            for _ in range(2):
                data, status = yield from ctx.recv_status(source=ANY_SOURCE, tag=3)
                seen.append((status.source, data))
        else:
            yield from ctx.compute(0.001 * ctx.rank)
            yield from ctx.send(0, tag=3, data=f"from{ctx.rank}", nbytes=16)

    job, _ = make_job(sim, app, size=3)
    run_job(sim, job)
    assert sorted(seen) == [(1, "from1"), (2, "from2")]


def test_compute_advances_time(sim):
    def app(ctx):
        yield from ctx.compute(2.5)

    job, _ = make_job(sim, app, size=1)
    t = run_job(sim, job)
    assert t == pytest.approx(2.5)


def test_update_mutates_state(sim):
    def app(ctx):
        ctx.update(lambda s: s.__setitem__("x", 10))
        got = ctx.update(lambda s: s["x"] + 1)
        assert got == 11
        yield from ctx.compute(0.0)

    job, _ = make_job(sim, app, size=1)
    run_job(sim, job)
    assert job.contexts[0].state["x"] == 10


def test_probe(sim):
    out = {}

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, tag=9, data="x", nbytes=128)
        else:
            assert ctx.probe(0, 9) is None
            yield from ctx.compute(1.0)  # give the message time to land
            status = ctx.probe(0, 9)
            out["probed"] = status is not None and status.tag == 9
            yield from ctx.recv(0, 9)

    job, _ = make_job(sim, app, size=2)
    run_job(sim, job)
    assert out["probed"]


@pytest.mark.parametrize("channel_cls", [FtSockChannel, ChVChannel, NemesisChannel])
def test_all_channels_roundtrip(sim, channel_cls):
    out = {}

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, tag=1, data="ping", nbytes=1000)
            out["pong"] = yield from ctx.recv(1, tag=2)
        else:
            out["ping"] = yield from ctx.recv(0, tag=1)
            yield from ctx.send(0, tag=2, data="pong", nbytes=1000)

    job, _ = make_job(sim, app, size=2, channel_cls=channel_cls)
    run_job(sim, job)
    assert out == {"ping": "ping", "pong": "pong"}


def test_ch_v_latency_higher_than_nemesis():
    """The daemon hops must make ch_v visibly slower for small messages."""
    def ping_app(ctx):
        if ctx.rank == 0:
            for _ in range(100):
                yield from ctx.send(1, tag=1, data=None, nbytes=8)
                yield from ctx.recv(1, tag=2)
        else:
            for _ in range(100):
                yield from ctx.recv(0, tag=1)
                yield from ctx.send(0, tag=2, data=None, nbytes=8)

    times = {}
    for cls in (ChVChannel, NemesisChannel):
        from repro.sim import Simulator
        sim = Simulator(seed=1)
        job, _ = make_job(sim, ping_app, size=2)
        # rebuild with the right channel class
        job, _ = make_job(sim, ping_app, size=2, channel_cls=cls)
        times[cls.channel_name] = run_job(sim, job)
    assert times["ch_v"] > 1.3 * times["nemesis"]


def test_send_to_self_not_supported_gracefully(sim):
    """Self-sends go through the loopback/memory path."""
    out = {}

    def app(ctx):
        req = ctx.isend(ctx.rank, tag=1, data="self", nbytes=8)
        out["data"] = yield from ctx.recv(ctx.rank, tag=1)
        yield from req.wait()

    job, _ = make_job(sim, app, size=1)
    run_job(sim, job)
    assert out["data"] == "self"


def test_job_requires_ranks(sim):
    from repro.mpi import MPIJob
    from repro.net import ClusterNetwork
    net = ClusterNetwork(sim, n_nodes=1)
    with pytest.raises(ValueError):
        MPIJob(sim, net, [], lambda ctx: None, FtSockChannel)


def test_job_double_start_rejected(sim):
    def app(ctx):
        yield from ctx.compute(0.0)

    job, _ = make_job(sim, app, size=1)
    job.start()
    with pytest.raises(RuntimeError):
        job.start()
    sim.run()
