"""Unit tests for the matching engine."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG
from repro.mpi.matching import MatchingEngine
from repro.mpi.message import AppPacket
from repro.sim import Simulator


def pkt(src=0, tag=0, data="d", nbytes=10.0, seq=0):
    return AppPacket(src, tag, data, nbytes, seq)


@pytest.fixture
def eng():
    return MatchingEngine(Simulator(), rank=9)


def value_of(event):
    assert event.triggered
    return event.value


def test_posted_recv_matches_arrival(eng):
    ev = eng.post_recv(source=3, tag=7)
    assert not ev.triggered
    eng.deliver(pkt(src=3, tag=7, data="x"))
    data, status = value_of(ev)
    assert data == "x"
    assert status.source == 3 and status.tag == 7


def test_unexpected_then_recv(eng):
    eng.deliver(pkt(src=1, tag=2, data="early"))
    ev = eng.post_recv(source=1, tag=2)
    data, _ = value_of(ev)
    assert data == "early"
    assert not eng.unexpected


def test_wildcard_source(eng):
    ev = eng.post_recv(source=ANY_SOURCE, tag=5)
    eng.deliver(pkt(src=4, tag=5))
    _, status = value_of(ev)
    assert status.source == 4


def test_wildcard_tag(eng):
    eng.deliver(pkt(src=2, tag=13, data="t"))
    ev = eng.post_recv(source=2, tag=ANY_TAG)
    data, status = value_of(ev)
    assert data == "t" and status.tag == 13


def test_non_matching_stays_unexpected(eng):
    ev = eng.post_recv(source=1, tag=1)
    eng.deliver(pkt(src=2, tag=1))
    assert not ev.triggered
    assert len(eng.unexpected) == 1
    eng.deliver(pkt(src=1, tag=1))
    assert ev.triggered


def test_fifo_among_unexpected(eng):
    eng.deliver(pkt(src=1, tag=0, data="first", seq=1))
    eng.deliver(pkt(src=1, tag=0, data="second", seq=2))
    ev1 = eng.post_recv(source=1, tag=0)
    ev2 = eng.post_recv(source=1, tag=0)
    assert value_of(ev1)[0] == "first"
    assert value_of(ev2)[0] == "second"


def test_fifo_among_posted(eng):
    ev1 = eng.post_recv(source=ANY_SOURCE, tag=ANY_TAG)
    ev2 = eng.post_recv(source=ANY_SOURCE, tag=ANY_TAG)
    eng.deliver(pkt(data="a"))
    assert ev1.triggered and not ev2.triggered
    eng.deliver(pkt(data="b"))
    assert value_of(ev2)[0] == "b"


def test_probe(eng):
    assert eng.probe(ANY_SOURCE, ANY_TAG) is None
    eng.deliver(pkt(src=6, tag=9, nbytes=77.0))
    status = eng.probe(6, 9)
    assert status.nbytes == 77.0
    assert eng.probe(6, 10) is None
    # probe must not consume
    assert len(eng.unexpected) == 1


def test_cancel_posted(eng):
    ev = eng.post_recv(source=1, tag=1)
    eng.cancel(ev)
    eng.deliver(pkt(src=1, tag=1))
    assert not ev.triggered
    assert len(eng.unexpected) == 1


def test_fail_all(eng):
    ev = eng.post_recv(source=1, tag=1)
    eng.fail_all(ConnectionError("down"))
    assert ev.triggered and ev.ok is False
    assert not eng.posted


def test_snapshot_restore():
    sim = Simulator()
    a = MatchingEngine(sim, 0)
    a.deliver(pkt(src=1, tag=1, data="keep", nbytes=50.0))
    snap = a.snapshot()
    assert a.unexpected_bytes == 50.0

    b = MatchingEngine(sim, 0)
    b.restore(snap)
    ev = b.post_recv(source=1, tag=1)
    assert value_of(ev)[0] == "keep"


def test_restore_with_posted_recvs_rejected():
    sim = Simulator()
    a = MatchingEngine(sim, 0)
    a.post_recv(1, 1)
    with pytest.raises(RuntimeError):
        a.restore([])
