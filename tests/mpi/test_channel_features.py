"""Channel-level features the checkpoint protocols rely on:
send gates, receive freezing, the Nemesis stopper, failure propagation."""

import pytest

from repro.mpi import ChVChannel, FtSockChannel, NemesisChannel
from repro.mpi.message import ControlPacket, MarkerPacket

from tests.mpi.conftest import make_job, run_job


def test_send_gate_blocks_app_messages(sim):
    events = []

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.compute(0.5)  # gate closes at t=0.2
            yield from ctx.send(1, tag=1, data="late", nbytes=8)
            events.append(("sent", ctx.sim.now))
        else:
            yield from ctx.recv(0, tag=1)
            events.append(("recvd", ctx.sim.now))

    job, _ = make_job(sim, app, size=2)
    job.start()
    sim.call_at(0.2, job.channels[0].send_gate(1).close)
    sim.call_at(2.0, job.channels[0].open_send_gates)
    sim.run_until_complete(job.completed)
    times = dict(events)
    assert times["sent"] >= 2.0
    assert times["recvd"] >= 2.0


def test_control_packets_bypass_gates(sim):
    got = []

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.compute(0.5)

            def _fire():
                pass

            # Send a marker through the closed gate.
            yield from ctx.channel.send_control(1, MarkerPacket(0, wave=1), 64)
        else:
            yield from ctx.compute(1.0)

    class Sink:
        def on_control(self, packet):
            got.append((packet.wave, packet.src))

        def on_app_packet(self, packet):
            pass

    job, _ = make_job(sim, app, size=2)
    job.channels[1].protocol = Sink()
    job.start()
    sim.call_at(0.1, job.channels[0].send_gate(1).close)
    sim.run_until_complete(job.completed)
    assert got == [(1, 0)]


def test_freeze_delays_app_delivery(sim):
    arrival = {}

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, tag=1, data="frozen", nbytes=8)
        else:
            data = yield from ctx.recv(0, tag=1)
            arrival["t"] = ctx.sim.now
            arrival["data"] = data

    job, _ = make_job(sim, app, size=2)
    job.channels[1].freeze_source(0)
    job.start()
    sim.call_at(3.0, job.channels[1].thaw_sources)
    sim.run_until_complete(job.completed)
    assert arrival["t"] >= 3.0
    assert arrival["data"] == "frozen"


def test_thaw_preserves_arrival_order(sim):
    received = []

    def app(ctx):
        if ctx.rank == 0:
            for i in range(5):
                yield from ctx.send(1, tag=1, data=i, nbytes=8)
        else:
            for _ in range(5):
                received.append((yield from ctx.recv(0, tag=1)))

    job, _ = make_job(sim, app, size=2)
    job.channels[1].freeze_source(0)
    job.start()
    sim.call_at(1.0, job.channels[1].thaw_sources)
    sim.run_until_complete(job.completed)
    assert received == list(range(5))


def test_nemesis_stopper_blocks_all_destinations(sim):
    sent_times = {}

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.compute(0.2)
            for dst in (1, 2):
                yield from ctx.send(dst, tag=1, data="x", nbytes=8)
                sent_times[dst] = ctx.sim.now
        else:
            yield from ctx.recv(0, tag=1)

    job, _ = make_job(sim, app, size=3, channel_cls=NemesisChannel)
    job.start()
    sim.call_at(0.1, job.channels[0].enqueue_stopper)
    sim.call_at(1.5, job.channels[0].dequeue_stopper)
    sim.run_until_complete(job.completed)
    assert all(t >= 1.5 for t in sent_times.values())


def test_channel_shutdown_fails_blocked_recv(sim):
    outcome = {}

    def app(ctx):
        if ctx.rank == 0:
            try:
                yield from ctx.recv(1, tag=1)
            except ConnectionError:
                outcome["error_at"] = ctx.sim.now
        else:
            yield from ctx.compute(10.0)

    job, _ = make_job(sim, app, size=2)
    job.start()
    sim.call_at(2.0, job.channels[0].shutdown)
    sim.run()
    assert outcome["error_at"] == 2.0


def test_peer_node_failure_reported(sim):
    reports = []

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.recv(1, tag=1)  # never satisfied
        else:
            yield from ctx.send(0, tag=1, data=None, nbytes=8)
            yield from ctx.compute(100.0)

    job, net = make_job(sim, app, size=2)
    job.failure_listener = lambda rank, peer: reports.append((sim.now, rank, peer))
    job.start()
    # Let the connection establish, then kill node of rank 1.
    sim.call_at(5.0, lambda: net.fail_node(job.endpoints[1].node))
    sim.run(until=6.0)
    assert any(r[0] == 5.0 for r in reports)
    kill_ranks = {r[1] for r in reports}
    assert 0 in kill_ranks
    job.kill()
    sim.run()


def test_job_kill_interrupts_everything(sim):
    def app(ctx):
        yield from ctx.compute(1000.0)

    job, _ = make_job(sim, app, size=3)
    job.start()
    sim.call_at(1.0, job.kill)
    sim.run()
    assert job.killed
    assert not job.completed.triggered
    assert all(not p.alive for p in job.app_processes)


def test_eager_connect_builds_mesh(sim):
    def app(ctx):
        yield from ctx.compute(1.0)

    job, _ = make_job(sim, app, size=4, channel_cls=ChVChannel)
    run_job(sim, job)
    # every pair connected even though the app never communicated
    for rank in range(4):
        peers = set(job.channels[rank].conns)
        assert peers == set(range(4)) - {rank}


def test_lazy_connect_builds_nothing_without_traffic(sim):
    def app(ctx):
        yield from ctx.compute(1.0)

    job, _ = make_job(sim, app, size=4, channel_cls=FtSockChannel)
    run_job(sim, job)
    assert all(not ch.conns for ch in job.channels)
