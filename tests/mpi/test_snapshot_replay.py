"""Tests of the restartable-operation machinery: snapshots, replay, and the
CompletedSet encoding."""

import operator

import pytest

from repro.mpi import FtSockChannel, MPIJob, SKIPPED
from repro.mpi.context import CompletedSet
from repro.net import ClusterNetwork
from repro.sim import Simulator

from tests.mpi.conftest import make_job, run_job


# ----------------------------------------------------------- CompletedSet
def test_completed_set_prefix_compaction():
    cs = CompletedSet()
    for i in range(5):
        cs.add(i)
    assert cs.watermark == 5 and not cs.extras
    assert 4 in cs and 5 not in cs


def test_completed_set_out_of_order():
    cs = CompletedSet()
    cs.add(2)
    cs.add(0)
    assert cs.watermark == 1 and 2 in cs and 1 not in cs
    cs.add(1)
    assert cs.watermark == 3 and not cs.extras


def test_completed_set_idempotent():
    cs = CompletedSet()
    cs.add(0)
    cs.add(0)
    assert cs.watermark == 1
    assert len(cs) == 1


def test_completed_set_copy_independent():
    cs = CompletedSet()
    cs.add(0)
    c2 = cs.copy()
    c2.add(1)
    assert 1 in c2 and 1 not in cs


# ------------------------------------------------------------ replay basics
def _run_twice_with_restart(app_factory, size, snapshot_at, total_limit=500.0,
                            seed=3):
    """Run a job, snapshot every rank at ``snapshot_at`` (simulating an
    instantaneous coordinated checkpoint in a quiet network), kill it, and
    rerun a fresh job from the snapshots.  Returns the restarted job."""
    sim = Simulator(seed=seed)
    net = ClusterNetwork(sim, n_nodes=size)
    endpoints = net.place(size)
    job = MPIJob(sim, net, endpoints, app_factory, FtSockChannel, name="first")
    job.start()
    sim.run(until=snapshot_at)
    snapshots = [ctx.take_snapshot(wave=1) for ctx in job.contexts]
    job.kill()
    sim.run(until=snapshot_at + 0.001)

    job2 = MPIJob(sim, net, endpoints, app_factory, FtSockChannel, name="second")
    job2.start(snapshots=snapshots)
    sim.run_until_complete(job2.completed, limit=total_limit)
    return job2


def test_replay_skips_completed_compute():
    """A restarted rank must not redo compute it completed pre-snapshot."""
    def app(ctx):
        for i in range(10):
            yield from ctx.compute(1.0)
            ctx.update(lambda s, i=i: s.__setitem__("iters", i + 1))

    job2 = _run_twice_with_restart(app, size=1, snapshot_at=4.5)
    # snapshot at 4.5: 4 iterations complete; restart redoes 6.
    assert job2.contexts[0].state["iters"] == 10


def test_update_not_reapplied_on_replay():
    """State mutations committed pre-snapshot must not double-apply."""
    def app(ctx):
        for _ in range(6):
            yield from ctx.compute(1.0)
            ctx.update(lambda s: s.__setitem__("acc", s.get("acc", 0) + 1))

    job2 = _run_twice_with_restart(app, size=1, snapshot_at=3.5)
    assert job2.contexts[0].state["acc"] == 6


def test_replay_consistent_across_ranks():
    """Sends completed pre-snapshot are not re-sent; the matching state
    snapshot carries undelivered messages across the restart."""
    def app(ctx):
        # Rank 0 sends 5 messages spread over time; rank 1 receives them late.
        if ctx.rank == 0:
            for i in range(5):
                yield from ctx.compute(1.0)
                yield from ctx.send(1, tag=1, data=i, nbytes=64)
        else:
            yield from ctx.compute(20.0)
            for i in range(5):
                data = yield from ctx.recv(0, tag=1)
                # update is called unconditionally: during replay it is a
                # completed op and skips itself (the rule: never make op
                # initiation conditional on replay-visible values).
                ctx.update(lambda s, d=data: s.__setitem__(
                    "got", s.get("got", []) + [d]))

    # Snapshot at t=3.5: rank 0 has sent msgs 0,1,2 (completed at 1,2,3);
    # they sit in rank 1's unexpected queue and must survive the restart.
    job2 = _run_twice_with_restart(app, size=2, snapshot_at=3.5)
    assert job2.contexts[1].state["got"] == [0, 1, 2, 3, 4]


def test_recv_value_retained_when_completed_but_unconsumed():
    """A message matched but not yet consumed at snapshot time is replayed
    with its real value (pending_values path)."""
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, tag=1, data="payload", nbytes=8)
            yield from ctx.compute(10.0)
        else:
            req = ctx.irecv(0, tag=1)
            yield from ctx.compute(5.0)  # completes early; consumed at t>=5
            data, _status = yield from req.wait()
            ctx.update(lambda s, d=data: s.__setitem__("data", d))

    job2 = _run_twice_with_restart(app, size=2, snapshot_at=2.0)
    assert job2.contexts[1].state["data"] == "payload"


def test_collectives_replay():
    """A job restarted mid-collective-sequence still produces correct
    reductions for the post-snapshot part."""
    def app(ctx):
        for i in range(6):
            yield from ctx.compute(1.0)
            total = yield from ctx.allreduce(1, operator.add, nbytes=8)
            ctx.update(lambda s, t=total, i=i: s.__setitem__(f"sum{i}", t))

    job2 = _run_twice_with_restart(app, size=4, snapshot_at=3.5)
    for ctx in job2.contexts:
        # Every post-restart iteration must have the correct total.
        assert ctx.state["sum5"] == 4
        assert ctx.state["sum0"] == 4  # pre-snapshot iteration, from state


def test_snapshot_includes_unexpected_bytes_in_image():
    sim = Simulator(seed=1)

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, tag=1, data="x", nbytes=1000)
            yield from ctx.compute(2.0)
        else:
            yield from ctx.compute(2.0)

    job, _ = make_job(sim, app, size=2, image_bytes=5000.0)
    job.start()
    sim.run(until=1.0)
    snap = job.contexts[1].take_snapshot(wave=1)
    # image = base + buffered unexpected message (1000 payload + 32 header)
    assert snap.image_bytes == pytest.approx(5000.0 + 1032.0)
    job.kill()
    sim.run()


def test_restore_on_used_context_rejected():
    sim = Simulator()

    def app(ctx):
        yield from ctx.compute(1.0)

    job, _ = make_job(sim, app, size=1)
    run_job(sim, job)
    snap = job.contexts[0].take_snapshot(wave=1)
    with pytest.raises(RuntimeError):
        job.contexts[0].restore_snapshot(snap)


def test_snapshot_state_deep_copied():
    sim = Simulator()

    def app(ctx):
        ctx.update(lambda s: s.__setitem__("list", [1, 2]))
        yield from ctx.compute(1.0)
        ctx.update(lambda s: s["list"].append(3))

    job, _ = make_job(sim, app, size=1)
    job.start()
    sim.run(until=0.5)
    snap = job.contexts[0].take_snapshot(wave=1)
    sim.run()
    assert job.contexts[0].state["list"] == [1, 2, 3]
    assert snap.state["list"] == [1, 2]
