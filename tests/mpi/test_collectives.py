"""Integration tests for collective operations."""

import operator

import pytest

from tests.mpi.conftest import make_job, run_job


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
def test_barrier_synchronizes(sim, size):
    exit_times = {}

    def app(ctx):
        yield from ctx.compute(0.1 * ctx.rank)  # staggered arrivals
        yield from ctx.barrier()
        exit_times[ctx.rank] = ctx.sim.now

    job, _ = make_job(sim, app, size=size)
    run_job(sim, job)
    latest_arrival = 0.1 * (size - 1)
    assert all(t >= latest_arrival for t in exit_times.values())


@pytest.mark.parametrize("size,root", [(2, 0), (4, 0), (5, 2), (7, 6), (8, 3)])
def test_bcast(sim, size, root):
    results = {}

    def app(ctx):
        value = {"payload": 42} if ctx.rank == root else None
        out = yield from ctx.bcast(value, root=root, nbytes=256)
        results[ctx.rank] = out

    job, _ = make_job(sim, app, size=size)
    run_job(sim, job)
    assert all(results[r] == {"payload": 42} for r in range(size))


@pytest.mark.parametrize("size,root", [(2, 0), (4, 1), (6, 5), (8, 0)])
def test_reduce_sum(sim, size, root):
    results = {}

    def app(ctx):
        out = yield from ctx.reduce(ctx.rank + 1, operator.add, root=root, nbytes=8)
        results[ctx.rank] = out

    job, _ = make_job(sim, app, size=size)
    run_job(sim, job)
    assert results[root] == size * (size + 1) // 2
    assert all(results[r] is None for r in range(size) if r != root)


@pytest.mark.parametrize("size", [1, 2, 3, 4, 8])
def test_allreduce_max(sim, size):
    results = {}

    def app(ctx):
        out = yield from ctx.allreduce(ctx.rank * 10, max, nbytes=8)
        results[ctx.rank] = out

    job, _ = make_job(sim, app, size=size)
    run_job(sim, job)
    assert all(v == (size - 1) * 10 for v in results.values())


@pytest.mark.parametrize("size,root", [(3, 0), (5, 4)])
def test_gather(sim, size, root):
    results = {}

    def app(ctx):
        out = yield from ctx.gather(f"r{ctx.rank}", root=root, nbytes=16)
        results[ctx.rank] = out

    job, _ = make_job(sim, app, size=size)
    run_job(sim, job)
    assert results[root] == [f"r{i}" for i in range(size)]


@pytest.mark.parametrize("size", [2, 3, 5, 8])
def test_allgather(sim, size):
    results = {}

    def app(ctx):
        out = yield from ctx.allgather(ctx.rank ** 2, nbytes=8)
        results[ctx.rank] = out

    job, _ = make_job(sim, app, size=size)
    run_job(sim, job)
    expected = [i ** 2 for i in range(size)]
    assert all(results[r] == expected for r in range(size))


@pytest.mark.parametrize("size", [2, 4, 6])
def test_alltoall(sim, size):
    results = {}

    def app(ctx):
        outgoing = [f"{ctx.rank}->{d}" for d in range(size)]
        out = yield from ctx.alltoall(outgoing, nbytes_each=32)
        results[ctx.rank] = out

    job, _ = make_job(sim, app, size=size)
    run_job(sim, job)
    for r in range(size):
        assert results[r] == [f"{s}->{r}" for s in range(size)]


@pytest.mark.parametrize("size,root", [(4, 0), (5, 3)])
def test_scatter(sim, size, root):
    results = {}

    def app(ctx):
        values = [i * 2 for i in range(size)] if ctx.rank == root else None
        out = yield from ctx.scatter(values, root=root, nbytes_each=8)
        results[ctx.rank] = out

    job, _ = make_job(sim, app, size=size)
    run_job(sim, job)
    assert all(results[r] == r * 2 for r in range(size))


def test_alltoall_size_mismatch(sim):
    def app(ctx):
        yield from ctx.alltoall(["too", "few"][: ctx.size - 1], nbytes_each=1)

    job, _ = make_job(sim, app, size=3)
    job.start()
    with pytest.raises(ValueError):
        sim.run_until_complete(job.completed, limit=60.0)


def test_back_to_back_collectives_do_not_cross_match(sim):
    results = {}

    def app(ctx):
        a = yield from ctx.allreduce(1, operator.add, nbytes=8)
        b = yield from ctx.allreduce(ctx.rank, operator.add, nbytes=8)
        c = yield from ctx.allgather(ctx.rank, nbytes=8)
        results[ctx.rank] = (a, b, c)

    size = 6
    job, _ = make_job(sim, app, size=size)
    run_job(sim, job)
    for r in range(size):
        a, b, c = results[r]
        assert a == size
        assert b == sum(range(size))
        assert c == list(range(size))
