"""Failure injection and rollback-recovery, end to end, both protocols."""

import pytest

from repro.sim import Simulator

from tests.ft.conftest import assert_ring_result, build_ft_run, ring_app_factory


def run_with_failure(protocol, kill_rank=2, kill_at=2.6, iters=30, work=0.2,
                     seed=7, size=4, kill_kind="task", restart_policy="same-node",
                     spare_nodes=0, period=1.0, nbytes=1000):
    sim = Simulator(seed=seed)
    run, net = build_ft_run(
        sim, ring_app_factory(iters=iters, work=work, nbytes=nbytes), size=size,
        protocol=protocol, period=period, image_bytes=2e6,
        restart_policy=restart_policy, spare_nodes=spare_nodes)
    run.start()
    if kill_kind == "task":
        run.schedule_task_kill(kill_rank, kill_at)
    else:
        run.schedule_node_kill(kill_rank, kill_at)
    elapsed = sim.run_until_complete(run.completed, limit=10000)
    return sim, run, elapsed


@pytest.mark.parametrize("protocol", ["pcl", "vcl"])
def test_recovery_completes_and_is_correct(protocol):
    sim, run, elapsed = run_with_failure(protocol)
    assert run.stats.failures == 1
    assert run.stats.restarts == 1
    assert_ring_result(run, iters=30)


@pytest.mark.parametrize("protocol", ["pcl", "vcl"])
def test_failure_costs_time(protocol):
    _, _, with_failure = run_with_failure(protocol)
    sim = Simulator(seed=7)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol=protocol, period=1.0, image_bytes=2e6)
    run.start()
    clean = sim.run_until_complete(run.completed, limit=10000)
    assert with_failure > clean


@pytest.mark.parametrize("protocol", ["pcl", "vcl"])
def test_failure_before_first_wave_restarts_from_scratch(protocol):
    sim, run, _ = run_with_failure(protocol, kill_at=0.4)
    assert run.stats.restarts == 1
    assert run.committed_wave() in (0, run.committed_wave())
    assert_ring_result(run, iters=30)


def test_restart_uses_local_images_on_task_kill():
    """Task kill leaves local disks intact: every rank restores locally."""
    sim, run, _ = run_with_failure("pcl")
    assert run.sim.trace["ft.restore_local"] >= 1 or sim.trace["ft.restore_local"] >= 1


def test_node_failure_with_spare_recovery():
    sim, run, _ = run_with_failure(
        "pcl", kill_kind="node", restart_policy="spare", spare_nodes=2)
    assert run.stats.restarts == 1
    assert_ring_result(run, iters=30)
    # the dead machine is no longer hosting any endpoint
    dead = [ep for ep in run.endpoints if not ep.node.alive]
    assert not dead


def test_node_failure_same_node_policy_reboots():
    sim, run, _ = run_with_failure("pcl", kill_kind="node",
                                   restart_policy="same-node")
    assert run.stats.restarts == 1
    assert_ring_result(run, iters=30)


def test_vcl_logged_messages_replayed():
    """Make in-transit traffic certain at wave time, fail afterwards, and
    check the run still completes correctly — the logged messages must be
    replayed or the ring would deadlock."""
    sim, run, _ = run_with_failure(
        "vcl", iters=120, work=0.01, nbytes=1_500_000, period=0.3,
        kill_at=1.9, kill_rank=1)
    assert run.stats.logged_messages > 0
    assert run.stats.restarts == 1
    assert_ring_result(run, iters=120)


def test_two_failures_two_recoveries():
    sim = Simulator(seed=7)
    run, _ = build_ft_run(sim, ring_app_factory(iters=40, work=0.2), size=4,
                          protocol="pcl", period=1.0, image_bytes=2e6)
    run.start()
    run.schedule_task_kill(1, 2.6)
    run.schedule_task_kill(3, 6.3)
    sim.run_until_complete(run.completed, limit=10000)
    assert run.stats.failures == 2
    assert run.stats.restarts == 2
    assert_ring_result(run, iters=40)


def test_recovery_rolls_back_to_committed_wave_only():
    """Progress between the last committed wave and the failure is lost."""
    sim = Simulator(seed=7)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="pcl", period=1.0, image_bytes=2e6)
    run.start()

    observed = {}

    def spy():
        # run until just before the kill, note the committed wave
        yield sim.timeout(2.55)
        observed["wave_at_kill"] = run.committed_wave()

    sim.process(spy())
    run.schedule_task_kill(2, 2.6)
    sim.run_until_complete(run.completed, limit=10000)
    assert observed["wave_at_kill"] >= 1
    # restart happened and the run completed correctly
    assert run.stats.restarts == 1
    assert_ring_result(run, iters=30)


def test_recovery_time_accounted():
    sim, run, _ = run_with_failure("pcl")
    assert run.stats.recovery_seconds > 0.0


def test_max_restarts_guard():
    sim = Simulator(seed=7)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="pcl", period=1.0, image_bytes=2e6)
    run.max_restarts = 0
    run.start()
    run.schedule_task_kill(1, 1.0)
    with pytest.raises(RuntimeError, match="restarts"):
        sim.run_until_complete(run.completed, limit=10000)


def test_invalid_restart_policy():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_ft_run(sim, ring_app_factory(), size=2, protocol="pcl",
                     restart_policy="bogus")


def test_determinism_across_identical_runs():
    t1 = run_with_failure("pcl", seed=11)[2]
    t2 = run_with_failure("pcl", seed=11)[2]
    assert t1 == t2
