"""Tests for Poisson failure injection and proactive wave triggers."""

import pytest

from repro.sim import Simulator

from tests.ft.conftest import assert_ring_result, build_ft_run, ring_app_factory


def test_poisson_failures_and_recovery():
    sim = Simulator(seed=21)
    run, _ = build_ft_run(sim, ring_app_factory(iters=25, work=0.2), size=4,
                          protocol="pcl", period=1.0, image_bytes=2e6)
    run.max_restarts = 32
    run.start()
    run.enable_random_failures(mttf=3.0, max_failures=20)
    sim.run_until_complete(run.completed, limit=1e5)
    assert run.stats.failures >= 1
    assert_ring_result(run, iters=25)


def test_poisson_schedule_deterministic_across_configs():
    """The failure stream must not depend on the checkpoint period."""
    def first_failure_time(period):
        sim = Simulator(seed=5)
        run, _ = build_ft_run(sim, ring_app_factory(iters=40, work=0.2),
                              size=4, protocol="pcl", period=period,
                              image_bytes=2e6)
        run.max_restarts = 32
        run.start()
        run.enable_random_failures(mttf=4.0, max_failures=1)
        sim.run_until_complete(run.completed, limit=1e5)
        return run.injector.kills[0].time if run.injector.kills else None

    t1 = first_failure_time(0.7)
    t2 = first_failure_time(3.0)
    assert t1 is not None and t1 == t2


def test_enable_random_failures_validation():
    sim = Simulator(seed=1)
    run, _ = build_ft_run(sim, ring_app_factory(iters=2), size=2,
                          protocol="pcl")
    with pytest.raises(ValueError):
        run.enable_random_failures(mttf=0.0)


def test_request_wave_triggers_early():
    sim = Simulator(seed=3)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="pcl", period=50.0,  # never fires by timer
                          image_bytes=2e6)
    run.start()
    sim.call_at(1.3, lambda: run.protocol.request_wave())
    sim.run_until_complete(run.completed, limit=1e5)
    assert run.stats.waves_completed == 1
    record = run.stats.wave_records[0]
    assert record[1] == pytest.approx(1.3, abs=0.05)  # started at the trigger


def test_request_wave_noop_while_wave_in_progress():
    sim = Simulator(seed=3)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="pcl", period=1.0, image_bytes=2e6)
    run.start()
    # hammer the trigger; waves must still be well-formed and sequential
    for t in (1.01, 1.02, 1.03, 2.5, 2.51):
        sim.call_at(t, lambda: run.protocol.request_wave())
    sim.run_until_complete(run.completed, limit=1e5)
    waves = [w for w, _s, _e in run.stats.wave_records]
    assert waves == sorted(set(waves))
    assert_ring_result(run, iters=30)


def test_proactive_probe_reduces_lost_work():
    """With warning before each failure, a wave right before the kill means
    almost no rollback loss."""
    def measure(probe_lead):
        sim = Simulator(seed=13)  # a schedule with failures inside the run
        run, _ = build_ft_run(sim, ring_app_factory(iters=40, work=0.2),
                              size=4, protocol="pcl", period=30.0,
                              image_bytes=2e6)
        run.max_restarts = 32
        run.start()
        run.enable_random_failures(mttf=2.5, max_failures=3,
                                   probe_lead=probe_lead)
        elapsed = sim.run_until_complete(run.completed, limit=1e5)
        assert run.stats.failures >= 1
        return elapsed

    with_probe = measure(1.0)
    without = measure(None)
    assert with_probe < without
