"""Vcl logged-message replay: FIFO per channel, no loss, no duplication,
verified with sequence-stamped payloads across a forced rollback."""

from repro.mpi import SKIPPED
from repro.sim import Simulator

from tests.ft.conftest import build_ft_run


def seq_stream_app(n_msgs=60, nbytes=800_000, work=0.01):
    """Rank 0 streams sequence-numbered messages to rank 1, which records
    the exact order of everything it consumes in its checkpointed state."""

    def app(ctx):
        if ctx.rank == 0:
            for i in range(n_msgs):
                yield from ctx.compute(work)
                yield from ctx.send(1, tag=1, data=i, nbytes=nbytes)
        else:
            for i in range(n_msgs):
                value = yield from ctx.recv(0, tag=1)
                ctx.update(lambda s, v=value: s.setdefault("seen", []).append(v))
                yield from ctx.compute(work)

    return app


def test_vcl_replay_preserves_stream_order():
    sim = Simulator(seed=31)
    run, _ = build_ft_run(sim, seq_stream_app(), size=2, protocol="vcl",
                          period=0.12, image_bytes=1e6, fork_latency=0.005)
    run.start()
    run.schedule_task_kill(1, 0.43)  # after at least one committed wave
    sim.run_until_complete(run.completed, limit=1e5)
    assert run.stats.restarts == 1
    seen = run.job.contexts[1].state["seen"]
    # SKIPPED placeholders appear only for ops replayed whose values were
    # consumed pre-snapshot; every *live* value must continue the sequence
    # in order with no duplicates
    values = [v for v in seen if v is not SKIPPED]
    assert values == sorted(values)
    assert len(values) == len(set(values))
    assert values[-1] == 59
    # the logging machinery must actually have been exercised
    assert run.stats.logged_messages >= 1


def test_vcl_multiple_waves_then_failure_uses_newest_wave():
    sim = Simulator(seed=32)
    run, _ = build_ft_run(sim, seq_stream_app(n_msgs=80), size=2,
                          protocol="vcl", period=0.1, image_bytes=1e6,
                          fork_latency=0.005)
    run.start()
    run.schedule_task_kill(0, 0.8)
    sim.run_until_complete(run.completed, limit=1e5)
    # rolled back to a wave >= 2 (several waves committed before the kill)
    assert run.committed_wave() >= 2
    values = [v for v in run.job.contexts[1].state["seen"] if v is not SKIPPED]
    assert values == sorted(values) and values[-1] == 79
