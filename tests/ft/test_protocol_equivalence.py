"""The protocol must never change what the application computes.

Checkpointing is supposed to be transparent: the same benchmark with the
same seed must produce byte-identical application results under no
protocol, Pcl, Vcl and Dcl alike — the protocols may only change *when*
things happen, never *what* is computed.  And under Dcl, a single failure
at any point of the timeline must end in ``recovered``/``completed`` with
the correct result, never ``wrong-result`` (the same acceptance property
`test_chaos_properties` establishes for Pcl and Vcl).
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import BT
from repro.chaos import OK_VERDICTS, Scenario, run_scenario
from repro.harness.config import get_profile
from repro.harness.runner import execute

#: (protocol, channel) for every family, plus the checkpoint-free control
FAMILIES = (
    (None, "ft_sock"),
    ("pcl", "ft_sock"),
    ("vcl", "ch_v"),
    ("dcl", "ft_sock"),
)


def _app_state_bytes(protocol, channel, procs_per_node):
    profile = get_profile("smoke", seed=0)
    bench = BT(klass="B", scale=profile.time_scale)
    result = execute(bench, 4, protocol, profile, channel=channel,
                     period=30.0, procs_per_node=procs_per_node,
                     name=f"equiv-{protocol or 'none'}-ppn{procs_per_node}")
    assert result.monitors_ok is True
    # the byte-identity contract: serialize the full per-rank final state
    return json.dumps(result.meta["app_state"], sort_keys=True)


@pytest.mark.parametrize("procs_per_node", [1, 2])
def test_all_protocol_families_agree_on_app_results(procs_per_node):
    states = {
        protocol or "none": _app_state_bytes(protocol, channel,
                                             procs_per_node)
        for protocol, channel in FAMILIES
    }
    baseline = states["none"]
    for protocol, state in states.items():
        assert state == baseline, (
            f"{protocol} (ppn={procs_per_node}) changed the application "
            "result — checkpointing must be transparent")


# BT.B scale=0.05 on 4 procs completes around t≈96; sample the whole
# timeline including "after the job finished" (kill is then a no-op).
_KILL_TIMES = st.floats(min_value=0.0, max_value=110.0,
                        allow_nan=False, allow_infinity=False)


@given(
    channel_ppn=st.sampled_from([("ft_sock", 1), ("ft_sock", 2),
                                 ("nemesis", 2)]),
    kill=st.sampled_from(["task", "node"]),
    victim=st.integers(min_value=0, max_value=3),
    kill_time=_KILL_TIMES,
)
@settings(max_examples=15, deadline=None)
def test_dcl_random_single_failure_recovers(channel_ppn, kill, victim,
                                            kill_time):
    channel, procs_per_node = channel_ppn
    scenario = Scenario(
        protocol="dcl",
        channel=channel,
        procs_per_node=procs_per_node,
        kill=kill,
        victim=victim,
        kill_time=kill_time,
        seed=1,
    )
    result = run_scenario(scenario)
    assert result.verdict in OK_VERDICTS, (
        f"{scenario.label}: {result.verdict} — {result.detail}")
    expected_iterations = 10  # BT at scale 0.05
    for rank, state in enumerate(result.app_state):
        assert state["iteration"] == expected_iterations, (rank, state)
        assert state["norm"] == scenario.n_procs, (rank, state)
