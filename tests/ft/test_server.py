"""Unit tests for the checkpoint server."""

import pytest

from repro.ft import CheckpointServer, assign_replicas, assign_servers
from repro.ft.image import CheckpointImage
from repro.net import ClusterNetwork
from repro.net.topology import Endpoint
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator(seed=1)
    net = ClusterNetwork(sim, n_nodes=3)
    server = CheckpointServer(sim, net, net.nodes[2], name="cs")
    net.nodes[2].service = True
    rank_ep = Endpoint(net.nodes[0], 0)
    return sim, net, server, rank_ep


def image(rank=0, wave=1, nbytes=1e6):
    return CheckpointImage(rank, wave, nbytes, snapshot=None)


def sealed_image(rank=0, wave=1, nbytes=1e6):
    img = image(rank, wave, nbytes)
    img.seal()
    return img


def test_store_image_and_ack(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)
    img = image()

    def sender():
        end.send(("image", 0, 1, img, True), nbytes=img.nbytes)
        ack = yield end.recv()
        return (ack, sim.now)

    ack, when = sim.run_until_complete(sim.process(sender()))
    assert ack == ("ack", "image", 0, 1)
    # transfer of 1 MB at GigE plus latency
    assert when >= 1e6 / net.fabric.bandwidth
    # the server stores its own replica copy, sealed and time-stamped; the
    # sender's in-memory image is not aliased or mutated
    stored = server.storage[1][0]
    assert stored is not img
    assert (stored.rank, stored.wave, stored.nbytes) == (0, 1, 1e6)
    assert stored.stored_at is not None and stored.sealed and stored.verify()
    assert img.stored_at is None and not img.sealed
    assert server.bytes_received == 1e6


def test_legacy_four_tuple_image_is_final(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)

    def sender():
        end.send(("image", 0, 1, image()), nbytes=1e6)
        ack = yield end.recv()
        return ack

    ack = sim.run_until_complete(sim.process(sender()))
    assert ack == ("ack", "image", 0, 1)
    assert server.storage[1][0].sealed


def test_log_attaches_to_image(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)
    img = image()

    def sender():
        end.send(("image", 0, 1, img, False), nbytes=img.nbytes)
        yield end.recv()
        assert not server.storage[1][0].sealed  # log still outstanding
        end.send(("log", 0, 1, ["pkt1", "pkt2"], 555.0), nbytes=555.0)
        ack = yield end.recv()
        return ack

    ack = sim.run_until_complete(sim.process(sender()))
    assert ack == ("ack", "log", 0, 1)
    stored = server.storage[1][0]
    assert stored.logged_messages == ["pkt1", "pkt2"]
    assert stored.logged_bytes == 555.0
    # the log completes the record: sealed, checksum covers the log
    assert stored.sealed and stored.verify()


def test_broken_connection_discards_partial_record(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)
    img = image()

    def sender():
        end.send(("image", 0, 1, img, False), nbytes=img.nbytes)
        yield end.recv()
        end.connection.break_()

    sim.run_until_complete(sim.process(sender()))
    sim.run()
    # the upload never completed (no log, no seal): a racing commit must not
    # be able to bless the truncated record
    assert 0 not in server.storage.get(1, {})


def test_broken_connection_keeps_sealed_records(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)

    def sender():
        end.send(("image", 0, 1, image(), True), nbytes=1e6)
        yield end.recv()
        end.connection.break_()

    sim.run_until_complete(sim.process(sender()))
    sim.run()
    assert server.storage[1][0].sealed


def test_commit_garbage_collects(setup):
    sim, net, server, rank_ep = setup
    server.storage = {1: {0: sealed_image(wave=1)}, 2: {0: sealed_image(wave=2)}}
    server.commit(2)
    assert server.committed_wave == 2
    assert list(server.storage) == [2]
    # stale commit is a no-op
    server.commit(1)
    assert server.committed_wave == 2


def test_gc_keep_retains_older_commits(setup):
    sim, net, server, rank_ep = setup
    server.gc_keep = 2
    server.storage = {w: {0: sealed_image(wave=w)} for w in (1, 2, 3)}
    server.commit(1)
    server.commit(2)
    # wave 1 is retained (gc_keep=2); wave 3 is in-flight, never collected
    assert sorted(server.storage) == [1, 2, 3]
    server.commit(3)
    assert sorted(server.storage) == [2, 3]
    assert server.committed_waves == [1, 2, 3]


def test_fetch_roundtrip(setup):
    sim, net, server, rank_ep = setup
    img = sealed_image(rank=3, wave=2, nbytes=2e6)
    server.storage = {2: {3: img}}
    end = server.open_connection(rank_ep)

    def fetcher():
        end.send(("fetch", 3, 2), nbytes=64)
        reply = yield end.recv()
        return (reply, sim.now)

    (kind, got, status), when = sim.run_until_complete(sim.process(fetcher()))
    assert kind == "image_data" and status == "ok" and got is img
    # the 2 MB image had to cross the wire back
    assert when >= 2e6 / net.fabric.bandwidth


def test_fetch_missing_returns_none(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)

    def fetcher():
        end.send(("fetch", 9, 9), nbytes=64)
        reply = yield end.recv()
        return reply

    kind, got, status = sim.run_until_complete(sim.process(fetcher()))
    assert kind == "image_data" and got is None and status == "missing"


def test_fetch_refuses_unsealed_and_corrupt_records(setup):
    sim, net, server, rank_ep = setup
    partial = image(rank=0, wave=1)          # never sealed
    damaged = sealed_image(rank=1, wave=1)
    damaged.corrupt()
    server.storage = {1: {0: partial, 1: damaged}}
    end = server.open_connection(rank_ep)

    def fetcher():
        replies = []
        for rank in (0, 1):
            end.send(("fetch", rank, 1), nbytes=64)
            replies.append((yield end.recv()))
        return replies

    replies = sim.run_until_complete(sim.process(fetcher()))
    assert replies[0] == ("image_data", None, "partial")
    assert replies[1] == ("image_data", None, "corrupt")


def test_peak_bytes_tracked(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)

    def sender():
        end.send(("image", 0, 1, image(0, 1, 1e6), True), nbytes=1e6)
        yield end.recv()
        end.send(("image", 1, 1, image(1, 1, 3e6), True), nbytes=3e6)
        yield end.recv()

    sim.run_until_complete(sim.process(sender()))
    assert server.peak_stored_bytes == pytest.approx(4e6)
    assert server.stored_bytes() == pytest.approx(4e6)


def test_broken_connection_stops_serving(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)
    end.connection.break_()
    sim.run()  # the serve loop must exit cleanly


def test_assign_servers_round_robin(setup):
    sim, net, server, _ = setup
    other = CheckpointServer(sim, net, net.nodes[1], name="cs2")
    mapping = assign_servers(5, [server, other])
    assert mapping == {0: server, 1: other, 2: server, 3: other, 4: server}


def test_assign_servers_requires_one():
    with pytest.raises(ValueError):
        assign_servers(3, [])


def test_assign_replicas_ring_order(setup):
    sim, net, server, _ = setup
    s2 = CheckpointServer(sim, net, net.nodes[1], name="cs2")
    s3 = CheckpointServer(sim, net, net.nodes[0], name="cs3")
    servers = [server, s2, s3]
    mapping = assign_replicas(4, servers, replication=2)
    assert mapping[0] == [server, s2]
    assert mapping[1] == [s2, s3]
    assert mapping[2] == [s3, server]
    assert mapping[3] == [server, s2]
    # K=1 is exactly the unreplicated layout
    singles = assign_replicas(4, servers, replication=1)
    assert {r: ss[0] for r, ss in singles.items()} == assign_servers(4, servers)


def test_assign_replicas_validates_k(setup):
    sim, net, server, _ = setup
    with pytest.raises(ValueError):
        assign_replicas(2, [server], replication=2)
    with pytest.raises(ValueError):
        assign_replicas(2, [server], replication=0)
    with pytest.raises(ValueError):
        assign_replicas(2, [], replication=1)


def test_image_checksum_lifecycle():
    img = CheckpointImage(2, 3, 5e6, snapshot=None)
    assert not img.verify()          # unsealed records never verify
    img.seal()
    assert img.verify()
    img.logged_bytes = 1.0           # post-seal mutation breaks the checksum
    assert not img.verify()
    img.logged_bytes = 0.0
    assert img.verify()
    img.corrupt()
    assert img.sealed and not img.verify()


def test_replica_copy_is_independent():
    img = CheckpointImage(0, 1, 1e6, snapshot=None,
                          logged_messages=["p"], logged_bytes=10.0)
    img.seal()
    copy = img.replica()
    assert copy is not img and copy.verify()
    copy.corrupt()
    copy.logged_messages.append("q")
    assert img.verify() and img.logged_messages == ["p"]
