"""Unit tests for the checkpoint server."""

import pytest

from repro.ft import CheckpointServer, assign_servers
from repro.ft.image import CheckpointImage
from repro.net import ClusterNetwork
from repro.net.topology import Endpoint
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator(seed=1)
    net = ClusterNetwork(sim, n_nodes=3)
    server = CheckpointServer(sim, net, net.nodes[2], name="cs")
    net.nodes[2].service = True
    rank_ep = Endpoint(net.nodes[0], 0)
    return sim, net, server, rank_ep


def image(rank=0, wave=1, nbytes=1e6):
    return CheckpointImage(rank, wave, nbytes, snapshot=None)


def test_store_image_and_ack(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)
    img = image()

    def sender():
        end.send(("image", 0, 1, img), nbytes=img.nbytes)
        ack = yield end.recv()
        return (ack, sim.now)

    ack, when = sim.run_until_complete(sim.process(sender()))
    assert ack == ("ack", "image", 0, 1)
    # transfer of 1 MB at GigE plus latency
    assert when >= 1e6 / net.fabric.bandwidth
    assert server.storage[1][0] is img
    assert img.stored_at is not None
    assert server.bytes_received == 1e6


def test_log_attaches_to_image(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)
    img = image()

    def sender():
        end.send(("image", 0, 1, img), nbytes=img.nbytes)
        yield end.recv()
        end.send(("log", 0, 1, ["pkt1", "pkt2"], 555.0), nbytes=555.0)
        ack = yield end.recv()
        return ack

    ack = sim.run_until_complete(sim.process(sender()))
    assert ack == ("ack", "log", 0, 1)
    assert server.storage[1][0].logged_messages == ["pkt1", "pkt2"]
    assert server.storage[1][0].logged_bytes == 555.0


def test_commit_garbage_collects(setup):
    sim, net, server, rank_ep = setup
    server.storage = {1: {0: image(wave=1)}, 2: {0: image(wave=2)}}
    server.commit(2)
    assert server.committed_wave == 2
    assert list(server.storage) == [2]
    # stale commit is a no-op
    server.commit(1)
    assert server.committed_wave == 2


def test_fetch_roundtrip(setup):
    sim, net, server, rank_ep = setup
    img = image(rank=3, wave=2, nbytes=2e6)
    server.storage = {2: {3: img}}
    end = server.open_connection(rank_ep)

    def fetcher():
        end.send(("fetch", 3, 2), nbytes=64)
        reply = yield end.recv()
        return (reply, sim.now)

    (kind, got), when = sim.run_until_complete(sim.process(fetcher()))
    assert kind == "image_data" and got is img
    # the 2 MB image had to cross the wire back
    assert when >= 2e6 / net.fabric.bandwidth


def test_fetch_missing_returns_none(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)

    def fetcher():
        end.send(("fetch", 9, 9), nbytes=64)
        reply = yield end.recv()
        return reply

    kind, got = sim.run_until_complete(sim.process(fetcher()))
    assert kind == "image_data" and got is None


def test_peak_bytes_tracked(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)

    def sender():
        end.send(("image", 0, 1, image(0, 1, 1e6)), nbytes=1e6)
        yield end.recv()
        end.send(("image", 1, 1, image(1, 1, 3e6)), nbytes=3e6)
        yield end.recv()

    sim.run_until_complete(sim.process(sender()))
    assert server.peak_stored_bytes == pytest.approx(4e6)
    assert server.stored_bytes() == pytest.approx(4e6)


def test_broken_connection_stops_serving(setup):
    sim, net, server, rank_ep = setup
    end = server.open_connection(rank_ep)
    end.connection.break_()
    sim.run()  # the serve loop must exit cleanly


def test_assign_servers_round_robin(setup):
    sim, net, server, _ = setup
    other = CheckpointServer(sim, net, net.nodes[1], name="cs2")
    mapping = assign_servers(5, [server, other])
    assert mapping == {0: server, 1: other, 2: server, 3: other, 4: server}


def test_assign_servers_requires_one():
    with pytest.raises(ValueError):
        assign_servers(3, [])
