"""Tests of the blocking (Pcl) protocol: waves, flushing, overhead."""

import pytest

from repro.mpi import NemesisChannel
from repro.sim import Simulator

from tests.ft.conftest import assert_ring_result, build_ft_run, ring_app_factory


def run_to_completion(sim, run, limit=5000.0):
    run.start()
    return sim.run_until_complete(run.completed, limit=limit)


def test_pcl_completes_with_waves(sim):
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="pcl", period=1.0)
    elapsed = run_to_completion(sim, run)
    assert run.stats.waves_completed >= 2
    assert_ring_result(run, iters=30)
    assert elapsed > 0


def test_pcl_overhead_grows_with_frequency():
    """Higher checkpoint frequency must cost more time (the Fig. 6 effect).

    Needs a communication-bound application: when iterations are dominated by
    compute, the whole wave hides inside the compute phase — which is also a
    faithful behaviour.
    """
    app = lambda: ring_app_factory(iters=200, work=0.02, nbytes=500_000)
    times = {}
    for period in (0.25, 4.0):
        sim = Simulator(seed=7)
        run, _ = build_ft_run(sim, app(), size=4, protocol="pcl",
                              period=period, image_bytes=20e6)
        times[period] = run_to_completion(sim, run)
        assert run.stats.waves_completed >= 1
    sim = Simulator(seed=7)
    base_run, _ = build_ft_run(sim, app(), size=4, protocol=None, period=1.0)
    base = run_to_completion(sim, base_run)
    assert times[0.25] > times[4.0] > base


def test_pcl_records_blocked_time(sim):
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="pcl", period=1.0)
    run_to_completion(sim, run)
    assert run.stats.blocked_seconds > 0.0
    assert run.stats.markers_sent >= run.stats.waves_completed * 4 * 3


def test_pcl_images_stored_and_committed(sim):
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="pcl", period=1.0, n_servers=2)
    run_to_completion(sim, run)
    waves = run.stats.waves_completed
    assert waves >= 1
    committed = run.committed_wave()
    assert committed == waves
    # each server holds only the newest committed wave (plus any wave that
    # was in flight when the app finished)
    for server in run.servers:
        assert all(w >= committed for w in server.storage)
        images = server.images_for(committed)
        assert images  # round-robin gives every server some ranks
        for image in images.values():
            assert image.nbytes > 0
            assert image.stored_at is not None


def test_pcl_wave_durations_positive(sim):
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="pcl", period=1.0)
    run_to_completion(sim, run)
    durations = run.stats.wave_durations()
    assert durations and all(d > 0 for d in durations)


def test_pcl_single_rank_job(sim):
    def app(ctx):
        for _ in range(10):
            yield from ctx.compute(0.5)
            ctx.update(lambda s: s.__setitem__("n", s.get("n", 0) + 1))

    run, _ = build_ft_run(sim, app, size=1, protocol="pcl", period=1.0)
    run_to_completion(sim, run)
    assert run.stats.waves_completed >= 2
    assert run.job.contexts[0].state["n"] == 10


def test_pcl_with_nemesis_stopper(sim):
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="pcl", channel_cls=NemesisChannel, period=1.0)
    run_to_completion(sim, run)
    assert run.stats.waves_completed >= 2
    assert_ring_result(run, iters=30)


def test_pcl_no_app_message_crosses_marker_before_checkpoint(sim):
    """Channel-flush invariant: between receiving a peer's marker and the
    local checkpoint, no application packet from that peer may reach
    matching — they must sit in the delayed queue."""
    from repro.mpi.channels.base import BaseChannel

    violations = []
    original = BaseChannel._deliver_app

    def checked(self, packet):
        if packet.src in self._frozen_sources:  # pragma: no cover
            violations.append((self.rank, packet.src))
        original(self, packet)

    BaseChannel._deliver_app = checked
    try:
        run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.05),
                              size=6, protocol="pcl", period=0.5)
        run_to_completion(sim, run)
    finally:
        BaseChannel._deliver_app = original
    assert violations == []
    assert run.stats.waves_completed >= 2


def test_pcl_more_servers_is_not_slower():
    times = {}
    for n_servers in (1, 4):
        sim = Simulator(seed=7)
        run, _ = build_ft_run(
            sim, ring_app_factory(iters=20, work=0.2, nbytes=20000), size=8,
            protocol="pcl", period=1.0, n_servers=n_servers, image_bytes=40e6)
        times[n_servers] = run_to_completion(sim, run)
    assert times[4] <= times[1]


def test_protocol_rejects_bad_period(sim):
    run, _ = build_ft_run(sim, ring_app_factory(iters=2), size=2,
                          protocol="pcl", period=1.0)
    from repro.ft import PclProtocol
    from repro.mpi import FtSockChannel, MPIJob
    with pytest.raises(ValueError):
        PclProtocol(run.job or _fake_job(sim, run), run.server_map, period=0.0)


def _fake_job(sim, run):
    from repro.mpi import FtSockChannel, MPIJob
    return MPIJob(sim, run.net, run.endpoints, lambda c: None, FtSockChannel)
