"""Builders for fault-tolerance tests: a cluster with compute nodes,
checkpoint servers and (for Vcl) a scheduler machine."""

import operator

import pytest

from repro.ft import DclProtocol, FTRun, PclProtocol, VclProtocol, CheckpointServer
from repro.mpi import FtSockChannel
from repro.net import ClusterNetwork
from repro.net.topology import Endpoint
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(seed=7)


def build_ft_run(
    sim,
    app_factory,
    size,
    protocol="pcl",
    channel_cls=FtSockChannel,
    n_servers=1,
    period=5.0,
    image_bytes=1e6,
    fork_latency=0.01,
    restart_policy="same-node",
    spare_nodes=0,
    replication=1,
    gc_keep=1,
    fetch_policy=None,
    recovery_policy="restart",
    spares=0,
    malleable_app_factory=None,
):
    """Assemble network, servers and an FTRun; returns (run, net).

    ``spare_nodes`` feeds the legacy restart_policy="spare" path (idle
    compute nodes); ``spares`` pre-allocates a pool for the survivor-based
    recovery_policy="spare" (nodes marked service until promoted).
    """
    extra = n_servers + (1 if protocol == "vcl" else 0)
    net = ClusterNetwork(sim, n_nodes=size + extra + spare_nodes + spares)
    compute_nodes = net.nodes[:size + spare_nodes]
    pool = net.nodes[size + spare_nodes:size + spare_nodes + spares]
    for node in pool:
        node.service = True
    service_nodes = net.nodes[size + spare_nodes + spares:]
    endpoints = [Endpoint(node, 0) for node in compute_nodes[:size]]
    servers = [
        CheckpointServer(sim, net, service_nodes[i], name=f"cs{i}",
                         gc_keep=gc_keep)
        for i in range(n_servers)
    ]
    scheduler_node = service_nodes[-1] if protocol == "vcl" else None

    def protocol_factory(job, run):
        kwargs = dict(
            server_map=run.server_map,
            period=period,
            stats=run.stats,
            local_images=run.local_images,
            fork_latency=fork_latency,
            replica_map=run.replica_map,
        )
        if protocol == "pcl":
            return PclProtocol(job, **kwargs)
        if protocol == "dcl":
            return DclProtocol(job, **kwargs)
        return VclProtocol(job, scheduler_node=scheduler_node, **kwargs)

    run = FTRun(
        sim, net, endpoints, app_factory, channel_cls,
        protocol_factory if protocol is not None else None,
        servers, image_bytes=image_bytes, restart_policy=restart_policy,
        replication=replication, fetch_policy=fetch_policy,
        recovery_policy=recovery_policy, spare_pool=pool,
        malleable_app_factory=malleable_app_factory,
    )
    return run, net


def ring_app_factory(iters=20, work=0.05, nbytes=1000):
    """An iterative ring-exchange + allreduce application whose final state
    is checkable: each rank must have received ``iters`` neighbour messages
    and the allreduce of 1 over ``size`` ranks every iteration."""

    def app(ctx):
        for i in range(iters):
            yield from ctx.compute(work)
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            request = ctx.isend(right, tag=7, data=(ctx.rank, i), nbytes=nbytes)
            data = yield from ctx.recv(left, tag=7)
            yield from request.wait()
            ctx.update(lambda s, d=data: s.__setitem__(
                "recvd", s.get("recvd", 0) + 1))
            total = yield from ctx.allreduce(1, operator.add, nbytes=8)
            ctx.update(lambda s, t=total: s.__setitem__("sum", t))

    return app


def assert_ring_result(run, iters):
    """Validate the checkable invariants of :func:`ring_app_factory`."""
    for ctx in run.job.contexts:
        assert ctx.state["recvd"] == iters, f"rank {ctx.rank}: {ctx.state}"
        assert ctx.state["sum"] == run.job.size
