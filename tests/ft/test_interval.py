"""Unit tests for checkpoint-interval theory (Young/Daly)."""

import math

import pytest

from repro.ft.interval import (
    IntervalModel,
    daly_period,
    expected_completion,
    optimal_period_numeric,
    young_period,
)


def test_young_formula():
    assert young_period(3600.0, 50.0) == pytest.approx(math.sqrt(2 * 50 * 3600))


def test_young_validation():
    with pytest.raises(ValueError):
        young_period(0.0, 10.0)
    with pytest.raises(ValueError):
        young_period(100.0, -1.0)


def test_daly_close_to_young_for_small_cost():
    mttf, cost = 10_000.0, 1.0
    assert daly_period(mttf, cost) == pytest.approx(
        young_period(mttf, cost), rel=0.05)


def test_daly_caps_at_mttf_for_huge_cost():
    assert daly_period(10.0, 100.0) == 10.0


def test_expected_completion_no_failures_limit():
    """With an enormous MTTF the model reduces to work / (T/(T+C))."""
    work, period, cost = 1000.0, 100.0, 10.0
    expected = expected_completion(work, period, cost, 5.0, mttf=1e12)
    assert expected == pytest.approx(work * (period + cost) / period, rel=1e-6)


def test_expected_completion_monotone_in_failure_rate():
    low = expected_completion(1000.0, 50.0, 5.0, 10.0, mttf=1e6)
    high = expected_completion(1000.0, 50.0, 5.0, 10.0, mttf=1e3)
    assert high > low


def test_expected_completion_validation():
    with pytest.raises(ValueError):
        expected_completion(100.0, 0.0, 1.0, 1.0, 100.0)


def test_numeric_optimum_matches_young_regime():
    """In the small-cost regime the numeric optimum tracks sqrt(2CM)."""
    work, cost, restart, mttf = 10_000.0, 2.0, 5.0, 2_000.0
    numeric = optimal_period_numeric(work, cost, restart, mttf)
    young = young_period(mttf, cost)
    assert 0.4 * young <= numeric <= 2.5 * young


def test_u_shape_around_optimum():
    model = IntervalModel(work=10_000.0, checkpoint_cost=2.0,
                          restart_cost=5.0, mttf=2_000.0)
    best = model.optimal()
    assert model.expected(best / 10) > model.expected(best)
    assert model.expected(best * 10) > model.expected(best)


def test_model_bundle_consistency():
    model = IntervalModel(1000.0, 1.0, 2.0, 500.0)
    assert model.young() == young_period(500.0, 1.0)
    assert model.daly() == daly_period(500.0, 1.0)
