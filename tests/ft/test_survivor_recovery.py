"""Survivor-based recovery: failure-set agreement, spare promotion and
shrink-to-survivors, including the graceful-degradation paths.

The paper's recovery model is a full job restart (Sec. 4.1); these tests
cover the ULFM-style alternative layered on top of it — survivors agree on
the failed set, then either promote pre-allocated spares (only the
replacements stream images) or renumber and re-decompose a malleable
application over the shrunken communicator.  Every path that cannot
proceed must degrade to the paper's full restart, never hang
(docs/RECOVERY.md).
"""

import math
import operator

import pytest

from repro.sim import Simulator
from repro.sim.trace import Tracer

from tests.ft.conftest import assert_ring_result, build_ft_run, ring_app_factory


def malleable_ring_factory(iters=30, work=0.2, nbytes=1000):
    """Size-parameterised ring app: re-decomposable after a shrink.

    Tracks ``iteration`` in context state (the shrink resume point is the
    minimum iteration any committed image reached) and honours the
    ``resume_iteration`` seed a shrink restart plants in fresh state.
    """

    def make(size):
        def app(ctx):
            start = int(ctx.state.get("resume_iteration",
                                      ctx.state.get("iteration", 0)))
            for i in range(start, iters):
                yield from ctx.compute(work)
                right = (ctx.rank + 1) % ctx.size
                left = (ctx.rank - 1) % ctx.size
                request = ctx.isend(right, tag=7, data=(ctx.rank, i),
                                    nbytes=nbytes)
                yield from ctx.recv(left, tag=7)
                yield from request.wait()
                ctx.update(lambda s, it=i: s.__setitem__("iteration", it + 1))
                total = yield from ctx.allreduce(1, operator.add, nbytes=8)
                ctx.update(lambda s, t=total: s.__setitem__("sum", t))

        return app

    return make


def run_survivor(protocol="pcl", policy="spare", spares=2, kills=(),
                 seed=7, size=4, iters=30, work=0.3, trace=False,
                 malleable=False, limit=10000):
    sim = Simulator(seed=seed,
                    trace=Tracer(enabled=True) if trace else None)
    factory = malleable_ring_factory(iters=iters, work=work)
    run, net = build_ft_run(
        sim,
        factory(size) if malleable else ring_app_factory(iters=iters,
                                                         work=work),
        size=size, protocol=protocol, period=1.0, image_bytes=2e6,
        recovery_policy=policy, spares=spares,
        malleable_app_factory=factory if malleable else None)
    run.start()
    for kind, rank, at in kills:
        if kind == "node":
            run.schedule_node_kill(rank, at)
        else:
            run.schedule_task_kill(rank, at)
    elapsed = sim.run_until_complete(run.completed, limit=limit)
    return sim, run, elapsed


# ------------------------------------------------------------------- spare
@pytest.mark.parametrize("protocol", ["pcl", "vcl", "dcl"])
def test_spare_promotion_replaces_the_dead_machine(protocol):
    sim, run, _ = run_survivor(protocol, kills=[("node", 1, 2.6)])
    assert run.stats.restarts == 1
    assert run.stats.spares_promoted == 1
    assert run.stats.policy_degradations == 0
    assert_ring_result(run, iters=30)
    # rank 1 now lives on a former pool node, hosting an MPI rank
    assert all(ep.node.alive for ep in run.endpoints)
    assert not run.endpoints[1].node.service


def test_spare_task_kill_needs_no_promotion():
    """A task kill leaves the machine alive: the survivor path restores in
    place without consuming a spare."""
    sim, run, _ = run_survivor(kills=[("task", 1, 2.6)])
    assert run.stats.restarts == 1
    assert run.stats.spares_promoted == 0
    assert run.stats.policy_degradations == 0
    assert_ring_result(run, iters=30)


def test_spare_coalesces_a_failure_burst_into_one_recovery():
    """Two node kills inside the suspicion window agree as one failed set
    and recover in a single pass — two spares promoted, one restart."""
    sim, run, _ = run_survivor(
        spares=3, kills=[("node", 1, 2.6), ("node", 2, 2.6001)])
    assert run.stats.restarts == 1
    assert run.stats.spares_promoted == 2
    assert_ring_result(run, iters=30)


def test_spare_survives_kill_during_recovery():
    """A cascading node kill landing while images stream back forces a
    re-promote + re-restore loop, not a hang or a crash."""
    sim, run, _ = run_survivor(
        spares=3, kills=[("node", 1, 2.6), ("node", 2, 2.605)])
    assert run.stats.spares_promoted >= 2
    assert run.stats.policy_degradations == 0
    assert_ring_result(run, iters=30)


def test_spare_pool_exhaustion_degrades_to_full_restart():
    sim, run, _ = run_survivor(
        spares=1, kills=[("node", 1, 2.6), ("node", 2, 2.6001)])
    assert run.stats.policy_degradations == 1
    assert_ring_result(run, iters=30)  # still 4 ranks, still correct


def test_spare_with_empty_pool_degrades_immediately():
    sim, run, _ = run_survivor(spares=0, kills=[("node", 1, 2.6)])
    assert run.stats.spares_promoted == 0
    assert run.stats.policy_degradations == 1
    assert_ring_result(run, iters=30)


# ------------------------------------------------------------------ shrink
@pytest.mark.parametrize("protocol", ["pcl", "vcl", "dcl"])
def test_shrink_renumbers_survivors_and_redecomposes(protocol):
    sim, run, _ = run_survivor(protocol, policy="shrink", spares=0,
                               malleable=True, kills=[("node", 1, 2.6)])
    assert run.stats.shrinks == 1
    assert run.stats.policy_degradations == 0
    assert len(run.endpoints) == 3
    assert run.job.size == 3
    for ctx in run.job.contexts:
        assert ctx.state["iteration"] == 30, (ctx.rank, ctx.state)
        assert ctx.state["sum"] == 3


def test_shrink_double_fault_drops_both_ranks():
    sim, run, _ = run_survivor(
        policy="shrink", spares=0, malleable=True,
        kills=[("node", 1, 2.6), ("node", 2, 2.6001)])
    assert run.stats.shrinks == 1
    assert run.job.size == 2
    for ctx in run.job.contexts:
        assert ctx.state["sum"] == 2


def test_shrink_non_malleable_app_degrades_to_full_restart():
    sim, run, _ = run_survivor(policy="shrink", spares=0, malleable=False,
                               kills=[("node", 1, 2.6)])
    assert run.stats.shrinks == 0
    assert run.stats.policy_degradations == 1
    assert run.job.size == 4
    assert_ring_result(run, iters=30)


# ------------------------------------------- agreement + phase accounting
def test_membership_commits_precede_recovery_and_name_one_failed_set():
    sim, run, _ = run_survivor(trace=True, kills=[("node", 1, 2.6)])
    commits = [r for r in sim.trace.records
               if r.category == "ft.membership_commit"]
    begins = [r for r in sim.trace.records
              if r.category == "ft.recovery_begin"]
    assert len(begins) == 1
    begin = begins[0]
    failed = tuple(begin.get("failed"))
    assert failed == (1,)
    committers = {r.get("rank") for r in commits
                  if r.get("ballot") == begin.get("ballot")}
    assert committers == {0, 2, 3}  # every survivor, no dead voter
    assert all(tuple(r.get("failed")) == failed for r in commits)
    assert max(r.time for r in commits) <= begin.time


@pytest.mark.parametrize("policy,spares,malleable",
                         [("spare", 2, False), ("shrink", 0, True)])
def test_recovery_phases_tile_the_recovery_time(policy, spares, malleable):
    sim, run, _ = run_survivor(policy=policy, spares=spares, trace=True,
                               malleable=malleable,
                               kills=[("node", 1, 2.6)])
    phases = [r for r in sim.trace.records
              if r.category == "ft.recovery_phase"]
    assert {r.get("phase") for r in phases} == \
        {"detect", "agree", "promote", "restore"}
    total = sum(r.get("duration") for r in phases)
    assert math.isclose(total, run.stats.recovery_seconds, abs_tol=1e-9)


def test_survivor_recovery_is_deterministic():
    t1 = run_survivor(seed=11, kills=[("node", 1, 2.6)])[2]
    t2 = run_survivor(seed=11, kills=[("node", 1, 2.6)])[2]
    assert t1 == t2


def test_invalid_recovery_policy_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_ft_run(sim, ring_app_factory(), size=2, protocol="pcl",
                     recovery_policy="bogus")
