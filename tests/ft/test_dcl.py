"""The message-drain (Dcl) protocol: waves, quiescence, recovery, breaks.

Dcl is the third protocol family: coordinated like Pcl, but instead of
flushing channels with markers-then-gates alone it counts — the initiator
broadcasts a drain request, every rank freezes application sends and
reports (sent, received) totals, and only when the totals match (the
network is provably empty) does anyone fork an image.  No message logging,
no delayed receive queue: the images alone are the consistent cut.
"""

import pytest

from repro.ft import DclProtocol, DRAIN_BUDGET
from repro.mpi import NemesisChannel
from repro.sim import Simulator, Tracer
from repro.verify import InvariantViolation, MonitorBus, all_monitors

from tests.ft.conftest import assert_ring_result, build_ft_run, ring_app_factory


def test_dcl_completes_waves_and_preserves_results(sim):
    run, _ = build_ft_run(sim, ring_app_factory(iters=60), size=4,
                          protocol="dcl", period=0.8)
    run.start()
    sim.run_until_complete(run.completed, limit=1e6)
    assert run.stats.waves_completed >= 2
    assert_ring_result(run, 60)


def test_dcl_drain_records_and_phase_tiling():
    """Every wave emits drain open/quiesced records, and the wave-phase
    timers — including the new ``drain`` phase — tile the wave exactly."""
    tracer = Tracer(enabled=True, categories=(
        "ft.drain_open", "ft.drain_quiesced", "ft.wave_phase",
        "ft.wave_completed"))
    sim = Simulator(seed=7, trace=tracer)
    run, _ = build_ft_run(sim, ring_app_factory(iters=60), size=4,
                          protocol="dcl", period=0.8)
    run.start()
    sim.run_until_complete(run.completed, limit=1e6)
    waves = run.stats.waves_completed
    assert waves >= 2

    quiesced = [r for r in tracer.records
                if r.category == "ft.drain_quiesced"]
    assert len(quiesced) == waves
    for record in quiesced:
        # quiescence means the totals matched, within the drain budget
        assert record.get("sent") == record.get("recvd")
        assert 0.0 <= record.get("elapsed") <= DRAIN_BUDGET

    opens = [r for r in tracer.records if r.category == "ft.drain_open"]
    assert {r.get("rank") for r in opens} == {0, 1, 2, 3}

    phases = {}
    for record in tracer.records:
        if record.category == "ft.wave_phase":
            phases.setdefault(record.get("wave"), []).append(record)
    for wave, start, end in run.stats.wave_records:
        names = [r.get("phase") for r in phases[wave]]
        assert names == ["markers", "drain", "flush", "stream", "commit"]
        total = sum(r.get("duration") for r in phases[wave])
        assert total == pytest.approx(end - start)


@pytest.mark.parametrize("kill,at", [("task", 1.0), ("node", 1.0),
                                     ("task", 1.7)])
def test_dcl_recovers_from_kills(sim, kill, at):
    run, _ = build_ft_run(sim, ring_app_factory(iters=60), size=4,
                          protocol="dcl", period=0.8)
    run.start()
    if kill == "task":
        run.schedule_task_kill(1, at=at)
    else:
        run.schedule_node_kill(1, at=at)
    sim.run_until_complete(run.completed, limit=1e6)
    assert run.stats.restarts == 1
    assert_ring_result(run, 60)


def test_dcl_on_nemesis_recovers(sim):
    """The drain stopper path: Nemesis freezes sends via enqueue_stopper."""
    run, _ = build_ft_run(sim, ring_app_factory(iters=60), size=4,
                          protocol="dcl", channel_cls=NemesisChannel,
                          period=0.8)
    run.start()
    run.schedule_task_kill(1, at=1.0)
    sim.run_until_complete(run.completed, limit=1e6)
    assert run.stats.restarts == 1
    assert_ring_result(run, 60)


def test_dcl_with_replicated_storage(sim):
    """K=2 replication: a server death after commit must not strand the
    restart — the surviving replica serves the image."""
    run, _ = build_ft_run(sim, ring_app_factory(iters=60), size=4,
                          protocol="dcl", period=0.8, n_servers=2,
                          replication=2)
    run.start()
    run.schedule_server_kill(0, at=1.3)
    run.schedule_node_kill(1, at=1.6)
    sim.run_until_complete(run.completed, limit=1e6)
    assert run.stats.restarts == 1
    assert_ring_result(run, 60)


@pytest.mark.unmonitored  # the test attaches its own bus for the break
def test_dcl_without_drain_gating_is_caught(monkeypatch):
    """Remove the send freeze: ranks keep committing payloads while
    'draining', so stale counter reports can declare a false quiescence —
    exactly what the dcl monitors exist to catch."""
    monkeypatch.setattr(DclProtocol, "drain_gating_enabled", False)
    sim = Simulator(seed=7)
    bus = MonitorBus(all_monitors(), raise_on_violation=True)
    bus.attach(sim)
    run, _ = build_ft_run(sim, ring_app_factory(iters=60), size=4,
                          protocol="dcl", period=0.8)
    run.start()
    with pytest.raises(InvariantViolation) as err:
        sim.run_until_complete(run.completed, limit=1e6)
        bus.finish()
    assert err.value.monitor in ("dcl-network-empty", "dcl-drain-liveness")
    assert err.value.window  # the violation carries its event context
