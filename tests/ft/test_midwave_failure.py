"""Kill a rank *precisely* between its marker/snapshot and the wave's image
completion, and assert the rollback targets the last *completed* wave.

Unlike the fixed-instant kills in test_failure_timing.py, these tests arm
the failure from the trace stream itself: the moment the target wave's
marker/fork record appears, a kill is scheduled one millisecond later —
guaranteed mid-wave regardless of timing drift, because the checkpoint
image (1 MB) takes several milliseconds of fork plus transfer to complete.
"""

from repro.mpi import SKIPPED
from repro.sim import Simulator

from tests.ft.conftest import assert_ring_result, build_ft_run, ring_app_factory
from tests.ft.test_vcl_replay_order import seq_stream_app


class MidWaveKiller:
    """Kills a rank shortly after the target wave's entry record, and keeps
    a transcript of restart records for the rollback assertion."""

    def __init__(self, sim, run, entry_category, target_wave, delta=0.001):
        self.sim = sim
        self.run = run
        self.entry_category = entry_category
        self.target_wave = target_wave
        self.delta = delta
        self.fired = False
        self.committed_at_kill = None
        self.restart_waves = []
        sim.trace.subscribe(self, [entry_category, "ft.restarted"])

    def __call__(self, record):
        if record.category == "ft.restarted":
            self.restart_waves.append(record.get("wave"))
            return
        if self.fired or record.get("wave") != self.target_wave:
            return
        self.fired = True
        self.committed_at_kill = self.run.committed_wave()
        victim = record.get("rank")
        self.run.schedule_task_kill(victim, self.sim.now + self.delta)


def test_pcl_kill_between_marker_and_image_completion():
    sim = Simulator(seed=7)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.05), size=3,
                          protocol="pcl", period=0.3, image_bytes=1e6,
                          fork_latency=0.01)
    killer = MidWaveKiller(sim, run, "ft.enter_wave", target_wave=2)
    run.start()
    sim.run_until_complete(run.completed, limit=1e5)

    assert killer.fired, "wave 2 never started — kill never armed"
    assert killer.committed_at_kill == 1  # wave 1 was the last completed one
    assert run.stats.restarts == 1
    # the rollback must target the last completed wave, not the partial one
    assert killer.restart_waves == [1]
    assert_ring_result(run, iters=30)


def test_vcl_kill_between_snapshot_and_image_completion():
    sim = Simulator(seed=31)
    run, _ = build_ft_run(sim, seq_stream_app(n_msgs=60, nbytes=800_000,
                                              work=0.01),
                          size=2, protocol="vcl", period=0.12,
                          image_bytes=1e6, fork_latency=0.005)
    killer = MidWaveKiller(sim, run, "ft.local_checkpoint", target_wave=2)
    run.start()
    sim.run_until_complete(run.completed, limit=1e5)

    assert killer.fired, "wave 2 never started — kill never armed"
    assert killer.committed_at_kill == 1
    assert run.stats.restarts == 1
    assert killer.restart_waves == [1]
    # stream integrity across the rollback: in order, no loss, no dupes
    values = [v for v in run.job.contexts[1].state["seen"] if v is not SKIPPED]
    assert values == sorted(values)
    assert len(values) == len(set(values))
    assert values[-1] == 59


def test_pcl_kill_during_first_wave_rolls_back_to_scratch():
    """A failure inside wave 1 (nothing committed yet) restarts from wave 0,
    i.e. from the beginning."""
    sim = Simulator(seed=7)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.05), size=3,
                          protocol="pcl", period=0.3, image_bytes=1e6,
                          fork_latency=0.01)
    killer = MidWaveKiller(sim, run, "ft.enter_wave", target_wave=1)
    run.start()
    sim.run_until_complete(run.completed, limit=1e5)

    assert killer.fired
    assert killer.committed_at_kill == 0
    assert killer.restart_waves == [0]
    assert_ring_result(run, iters=30)
