"""Resilient checkpoint storage: replication, integrity, retry, fallback.

The timeline at this scale (size 4, period 0.6, 2e5-byte images): wave 1
commits at t≈0.62, wave 2 at t≈1.24, the failure-free run completes at
t≈1.55 — kills are scheduled around those points.
"""

import pytest

from repro.ft import FetchPolicy, StorageUnrecoverableError
from repro.sim import Simulator

from tests.ft.conftest import assert_ring_result, build_ft_run, ring_app_factory

ITERS = 30


def _build(sim, protocol="pcl", **kwargs):
    kwargs.setdefault("size", 4)
    kwargs.setdefault("n_servers", 2)
    kwargs.setdefault("period", 0.6)
    kwargs.setdefault("image_bytes", 2e5)
    return build_ft_run(sim, ring_app_factory(iters=ITERS), protocol=protocol,
                        **kwargs)


@pytest.mark.parametrize("protocol", ["pcl", "vcl"])
def test_replicated_upload_seals_a_copy_on_every_replica(protocol):
    sim = Simulator(seed=7)
    run, _ = _build(sim, protocol=protocol, replication=2)
    run.start()
    sim.run_until_complete(run.completed, limit=1e5)
    assert_ring_result(run, ITERS)
    wave = max(server.committed_wave for server in run.servers)
    assert wave >= 2
    for server in run.servers:
        assert server.committed_wave == wave
        for rank in range(4):
            image = server.storage[wave][rank]
            assert image.sealed and image.verify()
    # replicas are independent copies, not aliases of one object
    first, second = (s.storage[wave][0] for s in run.servers)
    assert first is not second
    assert run.stats.fetch_retries == 0


@pytest.mark.parametrize("protocol", ["pcl", "vcl"])
def test_single_server_kill_with_replication_recovers(protocol):
    sim = Simulator(seed=7)
    run, _ = _build(sim, protocol=protocol, replication=2)
    run.start()
    run.schedule_server_kill(0, 0.7)   # after wave 1 commits
    run.schedule_node_kill(1, 0.8)     # victim's local images die with it
    sim.run_until_complete(run.completed, limit=1e5)
    assert run.stats.restarts == 1
    assert run.stats.wave_fallbacks == 0
    assert_ring_result(run, ITERS)


def test_corrupt_replica_falls_back_to_an_older_committed_wave():
    sim = Simulator(seed=7)
    run, _ = _build(sim, n_servers=1, replication=1, gc_keep=2)
    run.start()
    # wave 2 committed at ~1.24; its only copy of rank 1 goes bad before
    # the node kill forces rank 1 to restore remotely
    run.schedule_image_corrupt(0, 1, at=1.3)
    run.schedule_node_kill(1, 1.35)
    sim.run_until_complete(run.completed, limit=1e5)
    assert run.stats.restarts == 1
    assert run.stats.fetch_retries > 0
    assert run.stats.wave_fallbacks >= 1
    assert_ring_result(run, ITERS)


def test_sole_server_kill_raises_clean_unrecoverable():
    sim = Simulator(seed=7)
    run, _ = _build(sim, n_servers=1, replication=1)
    run.start()
    run.schedule_server_kill(0, 0.7)
    run.schedule_node_kill(1, 0.8)
    with pytest.raises(StorageUnrecoverableError, match="no complete replica"):
        sim.run_until_complete(run.completed, limit=1e5)


def test_corrupt_sole_replica_raises_clean_unrecoverable():
    sim = Simulator(seed=7)
    run, _ = _build(sim, n_servers=1, replication=1)
    run.start()
    run.schedule_image_corrupt(0, 1, at=0.7)
    run.schedule_node_kill(1, 0.8)
    with pytest.raises(StorageUnrecoverableError, match="no complete replica"):
        sim.run_until_complete(run.completed, limit=1e5)


def test_fetch_retries_back_off_deterministically():
    """Two identical runs take identical backoff delays (seeded streams)."""
    delays = []
    for _ in range(2):
        sim = Simulator(seed=7)
        run, _ = _build(sim, n_servers=1, replication=1,
                        fetch_policy=FetchPolicy(max_rounds=3,
                                                 backoff_base=0.02))
        run.start()
        run.schedule_image_corrupt(0, 1, at=0.7)
        run.schedule_node_kill(1, 0.8)
        with pytest.raises(StorageUnrecoverableError):
            sim.run_until_complete(run.completed, limit=1e5)
        delays.append(run.stats.fetch_retries)
    assert delays[0] == delays[1] > 0


def test_fetch_policy_validation():
    with pytest.raises(ValueError):
        FetchPolicy(max_rounds=0)
    with pytest.raises(ValueError):
        FetchPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        FetchPolicy(jitter=-0.1)
