"""Stress: failures injected at awkward instants — during marker exchange,
mid-image-transfer, right after a commit — must all recover correctly."""

import pytest

from repro.sim import Simulator

from tests.ft.conftest import assert_ring_result, build_ft_run, ring_app_factory


@pytest.mark.parametrize("protocol", ["pcl", "vcl"])
@pytest.mark.parametrize("kill_at", [
    1.005,   # during the first wave's marker exchange / snapshot
    1.05,    # during image transfers
    1.35,    # shortly after the wave commits
    2.02,    # inside the second wave
])
def test_recovery_from_mid_wave_failures(protocol, kill_at):
    sim = Simulator(seed=13)
    run, _ = build_ft_run(
        sim, ring_app_factory(iters=25, work=0.2, nbytes=20_000), size=4,
        protocol=protocol, period=1.0, image_bytes=4e6, fork_latency=0.02)
    run.start()
    run.schedule_task_kill(2, kill_at)
    sim.run_until_complete(run.completed, limit=10000)
    assert run.stats.failures == 1
    assert run.stats.restarts == 1
    assert_ring_result(run, iters=25)


@pytest.mark.parametrize("protocol", ["pcl", "vcl"])
def test_kill_rank_zero(protocol):
    """Rank 0 is special (Pcl initiator); killing it must still recover."""
    sim = Simulator(seed=13)
    run, _ = build_ft_run(sim, ring_app_factory(iters=20, work=0.2), size=4,
                          protocol=protocol, period=1.0, image_bytes=2e6)
    run.start()
    run.schedule_task_kill(0, 2.4)
    sim.run_until_complete(run.completed, limit=10000)
    assert run.stats.restarts == 1
    assert_ring_result(run, iters=20)


def test_failure_in_every_rank_one_at_a_time():
    for victim in range(4):
        sim = Simulator(seed=13)
        run, _ = build_ft_run(sim, ring_app_factory(iters=15, work=0.2),
                              size=4, protocol="pcl", period=1.0,
                              image_bytes=2e6)
        run.start()
        run.schedule_task_kill(victim, 2.2)
        sim.run_until_complete(run.completed, limit=10000)
        assert_ring_result(run, iters=15)


def test_waves_resume_after_restart():
    """The wave counter must keep increasing across the restart."""
    sim = Simulator(seed=13)
    run, _ = build_ft_run(sim, ring_app_factory(iters=40, work=0.2), size=4,
                          protocol="pcl", period=1.0, image_bytes=2e6)
    run.start()
    run.schedule_task_kill(1, 2.6)
    sim.run_until_complete(run.completed, limit=10000)
    waves = [w for w, _s, _e in run.stats.wave_records]
    assert waves == sorted(waves)
    assert len(set(waves)) == len(waves)  # no wave id committed twice
    assert run.stats.waves_completed >= 3


def test_uncommitted_wave_discarded_on_failure():
    """A failure during wave N+1 rolls back to wave N, never to a partial
    N+1 state."""
    sim = Simulator(seed=13)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="pcl", period=1.0, image_bytes=50e6)
    run.start()
    # big images: wave 2's transfers take a while; kill in the middle
    run.schedule_task_kill(3, 2.3)
    sim.run_until_complete(run.completed, limit=10000)
    assert_ring_result(run, iters=30)
    committed = {w for w, _s, _e in run.stats.wave_records}
    # every committed wave has all four images on the servers at commit time
    assert run.committed_wave() in committed or run.committed_wave() == 0
