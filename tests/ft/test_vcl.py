"""Tests of the non-blocking (Vcl) protocol: snapshots, logging, overhead."""

import pytest

from repro.mpi import ChVChannel
from repro.sim import Simulator

from tests.ft.conftest import assert_ring_result, build_ft_run, ring_app_factory


def run_to_completion(sim, run, limit=5000.0):
    run.start()
    return sim.run_until_complete(run.completed, limit=limit)


def test_vcl_completes_with_waves(sim):
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.2), size=4,
                          protocol="vcl", period=1.0)
    run_to_completion(sim, run)
    assert run.stats.waves_completed >= 2
    assert_ring_result(run, iters=30)


def test_vcl_never_blocks_sends(sim):
    """Vcl must not close any gate or freeze any source."""
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.1), size=4,
                          protocol="vcl", period=0.5)
    run.start()

    def check():
        while not run.completed.triggered:
            for channel in run.job.channels:
                assert channel.global_send_gate.is_open
                assert all(g.is_open for g in channel._send_gates.values())
                assert not channel.frozen_sources
            yield sim.timeout(0.05)

    sim.process(check())
    sim.run_until_complete(run.completed, limit=5000)
    assert run.stats.blocked_seconds == 0.0


def test_vcl_logs_in_transit_messages():
    """With traffic in flight during the wave, the daemon must log it."""
    sim = Simulator(seed=7)
    # Communication-heavy app: big messages are in transit at any instant.
    run, _ = build_ft_run(
        sim, ring_app_factory(iters=100, work=0.005, nbytes=2_000_000),
        size=4, protocol="vcl", period=0.3, image_bytes=5e6)
    run_to_completion(sim, run)
    assert run.stats.waves_completed >= 2
    assert run.stats.logged_messages > 0
    assert run.stats.logged_bytes > 0


def test_vcl_overhead_smaller_than_pcl_at_high_frequency():
    """The headline comparison: with frequent waves and heavy images, the
    non-blocking protocol's overhead over its own checkpoint-free baseline
    is smaller than the blocking protocol's over *its* baseline (each on
    its real channel, as in the paper)."""
    from repro.mpi import ChVChannel, FtSockChannel

    def measure(protocol, channel_cls):
        app = ring_app_factory(iters=200, work=0.02, nbytes=500_000)
        sim = Simulator(seed=7)
        run, _ = build_ft_run(sim, app, size=4, protocol=protocol,
                              channel_cls=channel_cls, period=0.25,
                              image_bytes=60e6)
        elapsed = run_to_completion(sim, run)
        waves = run.stats.waves_completed
        sim = Simulator(seed=7)
        base_run, _ = build_ft_run(sim, app, size=4, protocol=None,
                                   channel_cls=channel_cls, period=1.0)
        baseline = run_to_completion(sim, base_run)
        return (elapsed - baseline) / max(1, waves), waves

    pcl_per_wave, w_pcl = measure("pcl", FtSockChannel)
    vcl_per_wave, w_vcl = measure("vcl", ChVChannel)
    assert w_pcl >= 1 and w_vcl >= 1
    assert vcl_per_wave < pcl_per_wave


def test_vcl_with_ch_v_channel(sim):
    run, _ = build_ft_run(sim, ring_app_factory(iters=20, work=0.1), size=4,
                          protocol="vcl", channel_cls=ChVChannel, period=1.0)
    run_to_completion(sim, run)
    assert run.stats.waves_completed >= 1
    assert_ring_result(run, iters=20)


def test_vcl_single_rank(sim):
    def app(ctx):
        for _ in range(10):
            yield from ctx.compute(0.5)

    run, _ = build_ft_run(sim, app, size=1, protocol="vcl", period=1.0)
    run_to_completion(sim, run)
    assert run.stats.waves_completed >= 2


def test_vcl_images_and_logs_stored(sim):
    run, _ = build_ft_run(
        sim, ring_app_factory(iters=100, work=0.01, nbytes=1_000_000),
        size=4, protocol="vcl", period=0.3, n_servers=2, image_bytes=2e6)
    run_to_completion(sim, run)
    committed = run.committed_wave()
    assert committed >= 1
    images = {}
    for server in run.servers:
        images.update(server.images_for(committed))
    assert set(images) == {0, 1, 2, 3}


def test_vcl_requires_scheduler_node(sim):
    from repro.ft import VclProtocol
    from repro.mpi import FtSockChannel, MPIJob
    from repro.net import ClusterNetwork

    net = ClusterNetwork(sim, n_nodes=2)
    job = MPIJob(sim, net, net.place(1), lambda c: None, FtSockChannel)
    with pytest.raises(ValueError):
        VclProtocol(job, {0: None}, period=1.0)


def test_vcl_wave_rate_tracks_period():
    """Shorter periods must produce more waves (Fig. 5 bottom panel)."""
    waves = {}
    for period in (0.4, 1.5):
        sim = Simulator(seed=7)
        run, _ = build_ft_run(sim, ring_app_factory(iters=40, work=0.15),
                              size=4, protocol="vcl", period=period,
                              image_bytes=5e6)
        run_to_completion(sim, run)
        waves[period] = run.stats.waves_completed
    assert waves[0.4] > waves[1.5] >= 1
