"""Property test: the Pcl delayed-receive queue is order-preserving.

When a marker arrives on a channel, Pcl delays further receptions from that
source until the local checkpoint completes (FtSock per-source freeze, or
the Nemesis stopper).  Whatever the interleaving of sends, markers and
resumes, the receiver must consume the stream in exact send order — the
delayed queue must release FIFO, never reorder across the freeze/thaw
boundary, never drop and never duplicate.

Waves are triggered at hypothesis-drawn instants via the protocols'
proactive ``request_wave`` hook, so markers land at arbitrary points of the
message stream.  The suite-wide monitor fixture keeps every invariant
monitor (including pcl-flush and fifo-delivery) live for every example.
"""

from hypothesis import given, settings, strategies as st

from repro.mpi import FtSockChannel, NemesisChannel
from repro.sim import Simulator

from tests.ft.conftest import build_ft_run


def stream_app(schedule):
    """Rank 0 streams indexed messages per ``schedule`` (gap, nbytes) items;
    rank 1 records the exact order it consumes them."""

    def app(ctx):
        if ctx.rank == 0:
            for index, (gap, nbytes) in enumerate(schedule):
                yield from ctx.compute(gap)
                yield from ctx.send(1, tag=1, data=index, nbytes=nbytes)
        else:
            for _ in schedule:
                value = yield from ctx.recv(0, tag=1)
                ctx.update(lambda s, v=value: s.setdefault("seen", []).append(v))

    return app


_schedules = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=0.02, allow_nan=False),
              st.floats(min_value=10.0, max_value=500_000.0,
                        allow_nan=False)),
    min_size=4, max_size=12,
)
_wave_times = st.lists(
    st.floats(min_value=0.001, max_value=0.4, allow_nan=False),
    min_size=1, max_size=4,
)


def _run_stream(channel_cls, schedule, wave_times):
    sim = Simulator(seed=11)
    run, _ = build_ft_run(sim, stream_app(schedule), size=2, protocol="pcl",
                          channel_cls=channel_cls, period=60.0,
                          image_bytes=2e5, fork_latency=0.002)
    run.start()
    for at in wave_times:
        sim.call_at(at, lambda: run.protocol.request_wave())
    sim.run_until_complete(run.completed, limit=1e5)
    return run


@given(schedule=_schedules, wave_times=_wave_times)
@settings(max_examples=20, deadline=None)
def test_nemesis_delayed_receive_queue_releases_fifo(schedule, wave_times):
    run = _run_stream(NemesisChannel, schedule, wave_times)
    assert run.job.contexts[1].state["seen"] == list(range(len(schedule)))


@given(schedule=_schedules, wave_times=_wave_times)
@settings(max_examples=20, deadline=None)
def test_ftsock_delayed_receive_queue_releases_fifo(schedule, wave_times):
    run = _run_stream(FtSockChannel, schedule, wave_times)
    assert run.job.contexts[1].state["seen"] == list(range(len(schedule)))


def test_waves_actually_interleave_with_the_stream():
    """Sanity anchor for the property: a mid-stream wave really happens and
    really freezes the channel (delayed receptions observed)."""
    schedule = [(0.01, 400_000.0)] * 8
    run = _run_stream(NemesisChannel, schedule, wave_times=[0.03])
    assert run.stats.waves_completed >= 1
    assert run.job.contexts[1].state["seen"] == list(range(8))
