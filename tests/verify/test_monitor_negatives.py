"""Verifier verification: every shipped monitor fires on a corrupted trace.

`test_deliberate_breaks` proves the monitors catch *protocol* sabotage
end-to-end; this suite proves each monitor's own state machine is sound:
for every monitor in :func:`repro.verify.all_monitors` it synthesizes a
minimal trace (or engine pop stream), shows the clean variant passes, then
applies one surgical corruption — a reordered event, a FIFO inversion, an
orphan message, an unlogged in-transit message, a payload crossing a
flushed/draining channel, a non-empty network at fork, a stalled drain, a
blown fd budget, a zero-time cascade, a dangling wave, a lying fetch — and
asserts exactly that monitor raises.

The case table is keyed by monitor name, so
``test_every_shipped_monitor_has_a_negative`` fails the moment a new
monitor ships without a negative here.
"""

import pytest

from repro.ft.dcl import DRAIN_BUDGET
from repro.sim.trace import TraceRecord
from repro.verify import InvariantViolation, all_monitors
from repro.verify.monitors import (
    DclDrainLivenessMonitor,
    DclNetworkEmptyMonitor,
    FdBudgetMonitor,
    FifoDeliveryMonitor,
    LivelockMonitor,
    MembershipAgreementMonitor,
    MonotoneClockMonitor,
    PclFlushMonitor,
    SpareConsistencyMonitor,
    StorageDurabilityMonitor,
    VclLoggingMonitor,
    VclNoOrphanMonitor,
    WaveLivenessMonitor,
)

pytestmark = pytest.mark.unmonitored  # no simulator runs here at all


def rec(time, category, **fields):
    return TraceRecord(time, category, tuple(fields.items()))


def feed(monitor, records=(), steps=(), finish=False):
    for step in steps:
        monitor.on_step(*step)
    for record in records:
        monitor.on_record(record)
    if finish:
        monitor.finish()


# --------------------------------------------------------------- case table
#
# Each case: the clean stream must pass (including finish()), and the
# corrupt stream must raise an InvariantViolation matching ``match``.
# ``steps`` feeds the engine's raw (time, priority, seq) pop stream.
CASES = {
    "monotone-clock": [
        dict(
            label="reordered-record",
            clean=dict(records=[rec(0.5, "mpi.send"), rec(1.0, "mpi.send")]),
            corrupt=dict(records=[rec(1.0, "mpi.send"), rec(0.5, "mpi.send")]),
            match="clock ran backwards",
        ),
        dict(
            label="reordered-pop",
            # seq 3 was pushed before seq 5 at equal priority, so popping it
            # *after* seq 5 at the same timestamp breaks the total order
            clean=dict(steps=[(1.0, 1, 3), (1.0, 1, 5)]),
            corrupt=dict(steps=[(1.0, 1, 5), (1.0, 1, 3)]),
            match="total order broken",
        ),
    ],
    "fifo-delivery": [
        dict(
            label="fifo-inversion",
            clean=dict(records=[
                rec(1.0, "mpi.deliver", job="j", rank=0, src=1, seq=1),
                rec(1.1, "mpi.deliver", job="j", rank=0, src=1, seq=2),
            ]),
            corrupt=dict(records=[
                rec(1.0, "mpi.deliver", job="j", rank=0, src=1, seq=2),
                rec(1.1, "mpi.deliver", job="j", rank=0, src=1, seq=1),
            ]),
            match="FIFO delivery order broken",
        ),
        dict(
            label="pipe-duplicate",
            clean=dict(records=[
                rec(1.0, "net.sent", pipe="a->b", msg=1),
                rec(1.1, "net.delivered", pipe="a->b", msg=1),
            ]),
            corrupt=dict(records=[
                rec(1.0, "net.sent", pipe="a->b", msg=1),
                rec(1.1, "net.delivered", pipe="a->b", msg=1),
                rec(1.2, "net.delivered", pipe="a->b", msg=1),
            ]),
            match="out-of-order",
        ),
    ],
    "vcl-no-orphan": [
        dict(
            label="orphan-message",
            # clean: the receiver snapshots wave 1 before the delivery
            clean=dict(records=[
                rec(1.0, "mpi.send", protocol="vcl", job="j", src=1, seq=4,
                    wave=1),
                rec(1.1, "ft.local_checkpoint", protocol="vcl", rank=0,
                    wave=1),
                rec(1.2, "mpi.deliver", job="j", rank=0, src=1, seq=4),
            ]),
            # corrupt: a post-snapshot send delivered pre-snapshot
            corrupt=dict(records=[
                rec(1.0, "mpi.send", protocol="vcl", job="j", src=1, seq=4,
                    wave=1),
                rec(1.2, "mpi.deliver", job="j", rank=0, src=1, seq=4),
            ]),
            match="orphan message",
        ),
    ],
    "vcl-logging": [
        dict(
            label="unlogged-in-transit",
            # clean: the in-transit message is copied to the daemon log
            clean=dict(records=[
                rec(1.0, "ft.logging_open", rank=0, peers=(1,), wave=1),
                rec(1.1, "ft.logged", rank=0, src=1, seq=2, wave=1),
                rec(1.2, "mpi.deliver", job="j", rank=0, src=1, seq=2),
            ]),
            # corrupt: same delivery crossing the cut, but no log entry
            corrupt=dict(records=[
                rec(1.0, "ft.logging_open", rank=0, peers=(1,), wave=1),
                rec(1.2, "mpi.deliver", job="j", rank=0, src=1, seq=2),
            ]),
            match="not logged",
        ),
    ],
    "pcl-flush": [
        dict(
            label="send-while-checkpointing",
            # clean: the rank resumes before committing the next payload
            clean=dict(records=[
                rec(1.0, "ft.enter_wave", rank=0, wave=1),
                rec(1.2, "ft.resume", rank=0, wave=1),
                rec(1.3, "mpi.send", job="j", src=0, dst=1, seq=3,
                    nbytes=100.0),
            ]),
            corrupt=dict(records=[
                rec(1.0, "ft.enter_wave", rank=0, wave=1),
                rec(1.1, "mpi.send", job="j", src=0, dst=1, seq=3,
                    nbytes=100.0),
            ]),
            match="while checkpointing",
        ),
    ],
    "dcl-network-empty": [
        dict(
            label="send-while-draining",
            clean=dict(records=[
                rec(1.0, "mpi.send", protocol="dcl", job="j", src=0, dst=1,
                    seq=3, wave=1, state="normal", nbytes=100.0),
            ]),
            corrupt=dict(records=[
                rec(1.0, "mpi.send", protocol="dcl", job="j", src=0, dst=1,
                    seq=3, wave=1, state="draining", nbytes=100.0),
            ]),
            match="while draining",
        ),
        dict(
            label="network-not-empty-at-fork",
            # clean: the pre-wave send is delivered before any rank forks
            clean=dict(records=[
                rec(1.0, "mpi.send", protocol="dcl", job="j", src=1, dst=0,
                    seq=9, wave=0, state="normal", nbytes=100.0),
                rec(1.4, "mpi.deliver", job="j", rank=0, src=1, seq=9),
                rec(1.5, "ft.local_checkpoint", protocol="dcl", rank=0,
                    wave=1),
            ]),
            corrupt=dict(records=[
                rec(1.0, "mpi.send", protocol="dcl", job="j", src=1, dst=0,
                    seq=9, wave=0, state="normal", nbytes=100.0),
                rec(1.5, "ft.local_checkpoint", protocol="dcl", rank=0,
                    wave=1),
            ]),
            match="still in flight",
        ),
    ],
    "dcl-drain-liveness": [
        dict(
            label="drain-over-budget",
            clean=dict(records=[
                rec(0.0, "ft.wave_started", protocol="dcl", wave=1),
                rec(0.5, "ft.drain_quiesced", wave=1),
                rec(1.0, "ft.wave_completed", protocol="dcl", wave=1),
            ]),
            corrupt=dict(records=[
                rec(0.0, "ft.wave_started", protocol="dcl", wave=1),
                rec(DRAIN_BUDGET + 1.0, "ft.drain_quiesced", wave=1),
            ]),
            match="over the drain budget",
        ),
        dict(
            label="fork-before-quiescence",
            clean=dict(records=[
                rec(0.0, "ft.wave_started", protocol="dcl", wave=1),
                rec(0.5, "ft.drain_quiesced", wave=1),
                rec(0.6, "ft.local_checkpoint", protocol="dcl", rank=0,
                    wave=1),
                rec(1.0, "ft.wave_completed", protocol="dcl", wave=1),
            ]),
            corrupt=dict(records=[
                rec(0.0, "ft.wave_started", protocol="dcl", wave=1),
                rec(0.4, "ft.local_checkpoint", protocol="dcl", rank=0,
                    wave=1),
            ]),
            match="outran the drain",
        ),
        dict(
            label="stalled-drain",
            # clean: an aborted wave legally ends the run mid-drain
            clean=dict(records=[
                rec(0.0, "ft.wave_started", protocol="dcl", wave=1),
                rec(0.4, "ft.wave_aborted", protocol="dcl", wave=1),
            ], finish=True),
            corrupt=dict(records=[
                rec(0.0, "ft.wave_started", protocol="dcl", wave=1),
            ], finish=True),
            match="stalled drain",
        ),
    ],
    "fd-budget": [
        dict(
            label="select-wall",
            clean=dict(records=[
                rec(0.0, "runtime.validated", launcher="dispatcher",
                    fd_limit=1024, sockets_per_process=3, reserved_fds=10,
                    n_ranks=300),
            ]),
            corrupt=dict(records=[
                rec(0.0, "runtime.validated", launcher="dispatcher",
                    fd_limit=1024, sockets_per_process=3, reserved_fds=10,
                    n_ranks=400),
            ]),
            match="fd limit",
        ),
    ],
    "engine-liveness": [
        dict(
            label="zero-time-cascade",
            factory=lambda: LivelockMonitor(max_same_time_events=32),
            clean=dict(steps=[(i * 0.25, 1, i) for i in range(40)]),
            corrupt=dict(steps=[(2.0, 1, i) for i in range(40)]),
            match="livelock",
        ),
    ],
    "wave-liveness": [
        dict(
            label="overlapping-waves",
            clean=dict(records=[
                rec(0.0, "ft.wave_started", protocol="pcl", wave=1),
                rec(1.0, "ft.wave_completed", protocol="pcl", wave=1),
                rec(2.0, "ft.wave_started", protocol="pcl", wave=2),
                rec(3.0, "ft.wave_completed", protocol="pcl", wave=2),
            ], finish=True),
            corrupt=dict(records=[
                rec(0.0, "ft.wave_started", protocol="pcl", wave=1),
                rec(2.0, "ft.wave_started", protocol="pcl", wave=2),
            ]),
            match="still open",
        ),
        dict(
            label="dangling-wave",
            clean=dict(records=[
                rec(0.0, "ft.wave_started", protocol="pcl", wave=1),
                rec(1.0, "ft.wave_aborted", protocol="pcl", wave=1),
            ], finish=True),
            corrupt=dict(records=[
                rec(0.0, "ft.wave_started", protocol="pcl", wave=1),
            ], finish=True),
            match="the wave hung",
        ),
    ],
    "storage-durability": [
        dict(
            label="fetch-checksum-mismatch",
            clean=dict(records=[
                rec(1.0, "ft.replica_stored", server="cs0", wave=1, rank=0,
                    checksum=111),
                rec(2.0, "ft.fetch_ok", server="cs0", wave=1, rank=0,
                    checksum=111),
            ]),
            corrupt=dict(records=[
                rec(1.0, "ft.replica_stored", server="cs0", wave=1, rank=0,
                    checksum=111),
                rec(2.0, "ft.fetch_ok", server="cs0", wave=1, rank=0,
                    checksum=222),
            ]),
            match="sealed replica recorded",
        ),
        dict(
            label="fetch-from-dead-server",
            clean=dict(records=[
                rec(1.0, "ft.replica_stored", server="cs0", wave=1, rank=0,
                    checksum=111),
                rec(1.5, "ft.failure", kind="server", server="cs1"),
                rec(2.0, "ft.fetch_ok", server="cs0", wave=1, rank=0,
                    checksum=111),
            ]),
            corrupt=dict(records=[
                rec(1.0, "ft.replica_stored", server="cs0", wave=1, rank=0,
                    checksum=111),
                rec(1.5, "ft.failure", kind="server", server="cs0"),
                rec(2.0, "ft.fetch_ok", server="cs0", wave=1, rank=0,
                    checksum=111),
            ]),
            match="already died",
        ),
    ],
    "membership-agreement": [
        dict(
            label="survivors-disagree",
            # clean: ballot 1 proposes failed={2}, every survivor commits
            # exactly that set, then recovery begins
            clean=dict(records=[
                rec(1.0, "ft.membership_round", ballot=1, coordinator=0,
                    failed=(2,), survivors=3),
                rec(1.1, "ft.membership_commit", rank=0, ballot=1,
                    failed=(2,)),
                rec(1.1, "ft.membership_commit", rank=1, ballot=1,
                    failed=(2,)),
                rec(1.1, "ft.membership_commit", rank=3, ballot=1,
                    failed=(2,)),
                rec(1.2, "ft.recovery_begin", policy="spare", ballot=1,
                    failed=(2,), n_ranks=4, committed=1, incarnation=1),
            ]),
            # corrupt: rank 1 commits a different failed set — a partial view
            corrupt=dict(records=[
                rec(1.0, "ft.membership_round", ballot=1, coordinator=0,
                    failed=(2,), survivors=3),
                rec(1.1, "ft.membership_commit", rank=0, ballot=1,
                    failed=(2,)),
                rec(1.1, "ft.membership_commit", rank=1, ballot=1,
                    failed=(3,)),
            ]),
            match="survivors disagree",
        ),
        dict(
            label="recovery-without-full-commit",
            clean=dict(records=[
                rec(1.0, "ft.membership_round", ballot=1, coordinator=0,
                    failed=(2,), survivors=3),
                rec(1.1, "ft.membership_commit", rank=0, ballot=1,
                    failed=(2,)),
                rec(1.1, "ft.membership_commit", rank=1, ballot=1,
                    failed=(2,)),
                rec(1.1, "ft.membership_commit", rank=3, ballot=1,
                    failed=(2,)),
                rec(1.2, "ft.recovery_begin", policy="spare", ballot=1,
                    failed=(2,), n_ranks=4, committed=1, incarnation=1),
            ]),
            # corrupt: recovery acts before survivor 3 committed the ballot
            corrupt=dict(records=[
                rec(1.0, "ft.membership_round", ballot=1, coordinator=0,
                    failed=(2,), survivors=3),
                rec(1.1, "ft.membership_commit", rank=0, ballot=1,
                    failed=(2,)),
                rec(1.1, "ft.membership_commit", rank=1, ballot=1,
                    failed=(2,)),
                rec(1.2, "ft.recovery_begin", policy="spare", ballot=1,
                    failed=(2,), n_ranks=4, committed=1, incarnation=1),
            ]),
            match="not exactly the survivors",
        ),
    ],
    "spare-consistency": [
        dict(
            label="stale-wave-restore",
            # clean: the promoted spare restores the newest committed wave
            clean=dict(records=[
                rec(1.0, "ft.recovery_begin", policy="spare", ballot=1,
                    failed=(2,), n_ranks=4, committed=2, incarnation=1),
                rec(1.1, "ft.promoted", rank=2, node="spare-0",
                    incarnation=1),
                rec(1.2, "ft.spare_restore", rank=2, wave=2, node="spare-0"),
                rec(1.3, "ft.restarted", wave=2, incarnation=1),
            ]),
            # corrupt: it restores an older wave without a recorded fallback
            corrupt=dict(records=[
                rec(1.0, "ft.recovery_begin", policy="spare", ballot=1,
                    failed=(2,), n_ranks=4, committed=2, incarnation=1),
                rec(1.1, "ft.promoted", rank=2, node="spare-0",
                    incarnation=1),
                rec(1.2, "ft.spare_restore", rank=2, wave=1, node="spare-0"),
            ]),
            match="newest committed image",
        ),
        dict(
            label="promoted-surviving-rank",
            # clean: a cascading node kill inside the recovery legitimizes
            # promoting a rank outside the agreed failed set
            clean=dict(records=[
                rec(1.0, "ft.recovery_begin", policy="spare", ballot=1,
                    failed=(2,), n_ranks=4, committed=2, incarnation=1),
                rec(1.05, "ft.failure", kind="node", node="cluster-001"),
                rec(1.1, "ft.promoted", rank=1, node="spare-0",
                    incarnation=1),
                rec(1.2, "ft.spare_restore", rank=1, wave=2, node="spare-0"),
                rec(1.3, "ft.restarted", wave=2, incarnation=1),
            ]),
            # corrupt: same promotion with no casualty — a surviving rank
            # was evicted from its engine
            corrupt=dict(records=[
                rec(1.0, "ft.recovery_begin", policy="spare", ballot=1,
                    failed=(2,), n_ranks=4, committed=2, incarnation=1),
                rec(1.1, "ft.promoted", rank=1, node="spare-0",
                    incarnation=1),
            ]),
            match="surviving rank lost its engine",
        ),
        dict(
            label="restore-outside-recovery",
            clean=dict(records=[
                rec(1.0, "ft.recovery_begin", policy="spare", ballot=1,
                    failed=(2,), n_ranks=4, committed=2, incarnation=1),
                rec(1.2, "ft.spare_restore", rank=2, wave=2, node="spare-0"),
                rec(1.3, "ft.restarted", wave=2, incarnation=1),
            ]),
            corrupt=dict(records=[
                rec(1.2, "ft.spare_restore", rank=2, wave=2, node="spare-0"),
            ]),
            match="outside an open spare recovery",
        ),
    ],
}

_MONITOR_CLASSES = {
    "monotone-clock": MonotoneClockMonitor,
    "fifo-delivery": FifoDeliveryMonitor,
    "vcl-no-orphan": VclNoOrphanMonitor,
    "vcl-logging": VclLoggingMonitor,
    "pcl-flush": PclFlushMonitor,
    "dcl-network-empty": DclNetworkEmptyMonitor,
    "dcl-drain-liveness": DclDrainLivenessMonitor,
    "fd-budget": FdBudgetMonitor,
    "engine-liveness": LivelockMonitor,
    "wave-liveness": WaveLivenessMonitor,
    "storage-durability": StorageDurabilityMonitor,
    "membership-agreement": MembershipAgreementMonitor,
    "spare-consistency": SpareConsistencyMonitor,
}

_ALL_CASES = [
    (name, case) for name, cases in CASES.items() for case in cases
]


def _make(name, case):
    factory = case.get("factory") or _MONITOR_CLASSES[name]
    monitor = factory()
    assert monitor.name == name
    return monitor


@pytest.mark.parametrize(
    "name,case", _ALL_CASES,
    ids=[f"{name}-{case['label']}" for name, case in _ALL_CASES])
def test_clean_stream_passes(name, case):
    """The uncorrupted twin of each negative is accepted (minimality)."""
    monitor = _make(name, case)
    clean = dict(case["clean"])
    clean.setdefault("finish", True)
    feed(monitor, **clean)  # must not raise
    assert monitor.checked > 0


@pytest.mark.parametrize(
    "name,case", _ALL_CASES,
    ids=[f"{name}-{case['label']}" for name, case in _ALL_CASES])
def test_corrupted_stream_fires(name, case):
    monitor = _make(name, case)
    with pytest.raises(InvariantViolation, match=case["match"]) as err:
        feed(monitor, **case["corrupt"])
    assert err.value.monitor == name


def test_every_shipped_monitor_has_a_negative():
    shipped = {monitor.name for monitor in all_monitors()}
    assert shipped == set(CASES), (
        "every monitor in all_monitors() needs a negative case here "
        f"(missing: {shipped - set(CASES)}, stale: {set(CASES) - shipped})"
    )
