"""Framework-level tests: bus routing, violation windows, tracer plumbing,
the offline CLI, and monitor unit behaviour on synthetic record streams."""

import pytest

from repro.sim import Simulator
from repro.sim.trace import TraceRecord, Tracer, dump_jsonl, load_jsonl
from repro.verify import (
    FdBudgetMonitor,
    FifoDeliveryMonitor,
    InvariantViolation,
    Monitor,
    MonitorBus,
    MonotoneClockMonitor,
    PclFlushMonitor,
    VclLoggingMonitor,
    VclNoOrphanMonitor,
    all_monitors,
)
from repro.verify.cli import check_trace, main

pytestmark = pytest.mark.unmonitored


def rec(time, category, **fields):
    return TraceRecord(time, category, tuple(fields.items()))


# --------------------------------------------------------------------- tracer
def test_tracer_subscription_delivers_matching_categories():
    tracer = Tracer(enabled=False)
    seen = []
    tracer.subscribe(seen.append, ["a", "b"])
    assert tracer.wants("a") and tracer.wants("b") and not tracer.wants("c")
    tracer.record(1.0, "a", x=1)
    tracer.record(2.0, "c", x=2)
    tracer.record(3.0, "b", x=3)
    assert [r.category for r in seen] == ["a", "b"]
    assert tracer.records == []  # storage disabled, delivery still live
    tracer.unsubscribe(seen.append)
    tracer.record(4.0, "a", x=4)
    assert len(seen) == 2 and not tracer.wants("a")


def test_tracer_wildcard_subscription_sees_everything():
    tracer = Tracer(enabled=False)
    seen = []
    tracer.subscribe(seen.append)  # categories=None
    tracer.record(1.0, "whatever", n=1)
    assert tracer.wants("anything") and len(seen) == 1


def test_jsonl_roundtrip(tmp_path):
    records = [rec(0.5, "mpi.send", src=0, dst=1, seq=3),
               rec(0.7, "ft.marker_recv", rank=1, src=0, wave=1)]
    path = str(tmp_path / "trace.jsonl")
    assert dump_jsonl(records, path) == 2
    loaded = list(load_jsonl(path))
    assert loaded[0].get("seq") == 3
    assert loaded[1].category == "ft.marker_recv"
    assert loaded[1].time == 0.7


# ------------------------------------------------------------------------ bus
def test_bus_routes_by_category_and_reports_window():
    class OnlyA(Monitor):
        name = "only-a"
        categories = ("a",)

        def on_record(self, record):
            self.checked += 1
            if record.get("bad"):
                self.violation(record.time, "bad record")

    monitor = OnlyA()
    bus = MonitorBus([monitor], window=4)
    bus.dispatch(rec(1.0, "b", bad=True))  # wrong category: ignored
    bus.dispatch(rec(2.0, "a"))
    assert monitor.checked == 1
    with pytest.raises(InvariantViolation) as err:
        bus.dispatch(rec(3.0, "a", bad=True))
    violation = err.value
    assert violation.monitor == "only-a"
    assert [r.time for r in violation.window] == [1.0, 2.0, 3.0]
    assert "event window" in str(violation)
    assert not bus.ok


def test_bus_collect_mode_and_verdicts():
    class Grumpy(Monitor):
        name = "grumpy"
        categories = ("x",)

        def on_record(self, record):
            self.checked += 1
            self.violation(record.time, "always unhappy")

    bus = MonitorBus([Grumpy()], raise_on_violation=False)
    bus.dispatch(rec(1.0, "x"))
    bus.dispatch(rec(2.0, "x"))
    assert len(bus.finish()) == 2
    verdict = bus.verdicts()["grumpy"]
    assert verdict == {"ok": False, "checked": 2,
                       "violations": ["always unhappy", "always unhappy"]}


def test_bus_attach_detach_on_simulator():
    sim = Simulator(seed=1)
    bus = MonitorBus(all_monitors())
    bus.attach(sim)
    assert sim.trace.step_listeners  # the clock monitor wants steps
    sim.call_at(1.0, lambda: None)
    sim.run()
    clock = bus.monitors[0]
    assert isinstance(clock, MonotoneClockMonitor) and clock.checked > 0
    bus.detach()
    assert not sim.trace.step_listeners
    bus.attach(sim)  # re-attach after detach is allowed
    with pytest.raises(RuntimeError):
        bus.attach(sim)  # double attach is not


def test_standalone_monitor_raises_without_bus():
    monitor = FdBudgetMonitor()
    with pytest.raises(InvariantViolation):
        monitor.on_record(rec(0.0, "runtime.validated", n_ranks=400,
                              launcher="Dispatcher", fd_limit=1024,
                              sockets_per_process=3, reserved_fds=16,
                              max_processes=336))


# ------------------------------------------------------------ monitors (unit)
def test_monotone_clock_accepts_urgent_events_scheduled_in_place():
    monitor = MonotoneClockMonitor()
    monitor.on_step(1.0, 1, 5)
    monitor.on_step(1.0, 0, 9)   # pushed during seq 5's processing: legal
    monitor.on_step(1.0, 1, 10)
    monitor.on_step(2.0, 1, 2)   # later time, recycled-looking seq: legal


def test_monotone_clock_rejects_clock_regression_and_stale_urgent():
    monitor = MonotoneClockMonitor()
    monitor.on_step(2.0, 1, 5)
    with pytest.raises(InvariantViolation):
        monitor.on_step(1.0, 1, 6)
    monitor = MonotoneClockMonitor()
    monitor.on_step(1.0, 1, 7)
    with pytest.raises(InvariantViolation):
        # seq 3 was pushed before seq 7 at equal urgency, yet popped after
        monitor.on_step(1.0, 1, 3)


def test_fifo_monitor_rejects_out_of_order_and_unsent_deliveries():
    monitor = FifoDeliveryMonitor()
    monitor.on_record(rec(0.1, "net.sent", pipe="conn1.ab", msg=1, nbytes=8))
    monitor.on_record(rec(0.2, "net.sent", pipe="conn1.ab", msg=2, nbytes=8))
    monitor.on_record(rec(0.3, "net.delivered", pipe="conn1.ab", msg=1))
    with pytest.raises(InvariantViolation):  # duplicate / regression
        monitor.on_record(rec(0.4, "net.delivered", pipe="conn1.ab", msg=1))
    with pytest.raises(InvariantViolation):  # never sent
        monitor.on_record(rec(0.5, "net.delivered", pipe="conn1.ab", msg=9))


def test_fifo_monitor_rejects_out_of_order_channel_delivery():
    monitor = FifoDeliveryMonitor()
    monitor.on_record(rec(0.1, "mpi.deliver", job=1, rank=1, src=0, seq=2))
    with pytest.raises(InvariantViolation):
        monitor.on_record(rec(0.2, "mpi.deliver", job=1, rank=1, src=0, seq=1))
    # distinct jobs have independent sequence spaces
    monitor.on_record(rec(0.3, "mpi.deliver", job=2, rank=1, src=0, seq=1))


def test_orphan_monitor_flags_post_snapshot_send_delivered_pre_snapshot():
    monitor = VclNoOrphanMonitor()
    monitor.on_record(rec(1.0, "ft.local_checkpoint", rank=0, wave=1,
                          protocol="vcl"))
    monitor.on_record(rec(1.1, "mpi.send", job=1, src=0, dst=1, seq=4,
                          nbytes=100, wave=1, state="normal", protocol="vcl"))
    with pytest.raises(InvariantViolation) as err:
        # rank 1 has not checkpointed wave 1 yet
        monitor.on_record(rec(1.2, "mpi.deliver", job=1, rank=1, src=0, seq=4))
    assert "orphan" in str(err.value)


def test_orphan_monitor_accepts_marker_first_order():
    monitor = VclNoOrphanMonitor()
    monitor.on_record(rec(1.0, "ft.local_checkpoint", rank=0, wave=1,
                          protocol="vcl"))
    monitor.on_record(rec(1.1, "mpi.send", job=1, src=0, dst=1, seq=4,
                          nbytes=100, wave=1, state="normal", protocol="vcl"))
    monitor.on_record(rec(1.2, "ft.local_checkpoint", rank=1, wave=1,
                          protocol="vcl"))
    monitor.on_record(rec(1.3, "mpi.deliver", job=1, rank=1, src=0, seq=4))


def test_logging_monitor_requires_log_before_cut_crossing_delivery():
    monitor = VclLoggingMonitor()
    monitor.on_record(rec(1.0, "ft.logging_open", rank=1, wave=1, peers=(0,)))
    monitor.on_record(rec(1.1, "ft.logged", rank=1, src=0, seq=7, wave=1,
                          nbytes=64))
    monitor.on_record(rec(1.1, "mpi.deliver", job=1, rank=1, src=0, seq=7))
    with pytest.raises(InvariantViolation):  # seq 8 crosses the cut unlogged
        monitor.on_record(rec(1.2, "mpi.deliver", job=1, rank=1, src=0, seq=8))


def test_logging_monitor_replay_must_be_exactly_once():
    monitor = VclLoggingMonitor()
    monitor.on_record(rec(1.0, "ft.logging_open", rank=1, wave=1, peers=(0,)))
    monitor.on_record(rec(1.1, "ft.logged", rank=1, src=0, seq=7, wave=1,
                          nbytes=64))
    monitor.on_record(rec(2.0, "ft.restarted", wave=1, incarnation=1))
    monitor.on_record(rec(2.1, "ft.replayed", rank=1, src=0, seq=7, wave=1))
    with pytest.raises(InvariantViolation):  # twice
        monitor.on_record(rec(2.2, "ft.replayed", rank=1, src=0, seq=7, wave=1))
    monitor.finish()  # session complete: no missing replays


def test_logging_monitor_flags_lost_log_at_session_end():
    monitor = VclLoggingMonitor()
    monitor.on_record(rec(1.0, "ft.logging_open", rank=1, wave=1, peers=(0,)))
    monitor.on_record(rec(1.1, "ft.logged", rank=1, src=0, seq=7, wave=1,
                          nbytes=64))
    monitor.on_record(rec(2.0, "ft.restarted", wave=1, incarnation=1))
    with pytest.raises(InvariantViolation) as err:
        monitor.finish()  # wave-1 log never replayed
    assert "never replayed" in str(err.value)


def test_pcl_monitor_flags_send_and_frozen_delivery_while_checkpointing():
    monitor = PclFlushMonitor()
    monitor.on_record(rec(1.0, "ft.enter_wave", rank=0, wave=1))
    with pytest.raises(InvariantViolation):
        monitor.on_record(rec(1.1, "mpi.send", job=1, src=0, dst=1, seq=3,
                              nbytes=64, wave=1, state="checkpointing",
                              protocol="pcl"))
    monitor = PclFlushMonitor()
    monitor.on_record(rec(1.0, "ft.enter_wave", rank=1, wave=1))
    monitor.on_record(rec(1.1, "ft.marker_recv", rank=1, src=0, wave=1,
                          protocol="pcl"))
    with pytest.raises(InvariantViolation):
        monitor.on_record(rec(1.2, "mpi.deliver", job=1, rank=1, src=0, seq=9))
    # after the resume the very same delivery is the delayed queue draining
    monitor = PclFlushMonitor()
    monitor.on_record(rec(1.0, "ft.enter_wave", rank=1, wave=1))
    monitor.on_record(rec(1.1, "ft.marker_recv", rank=1, src=0, wave=1,
                          protocol="pcl"))
    monitor.on_record(rec(1.5, "ft.resume", rank=1, wave=1))
    monitor.on_record(rec(1.5, "mpi.deliver", job=1, rank=1, src=0, seq=9))


def test_fd_budget_monitor_boundary():
    monitor = FdBudgetMonitor()
    budget = dict(launcher="Dispatcher", fd_limit=1024, sockets_per_process=3,
                  reserved_fds=16, max_processes=336)
    monitor.on_record(rec(0.0, "runtime.validated", n_ranks=336, **budget))
    with pytest.raises(InvariantViolation):
        monitor.on_record(rec(0.0, "runtime.validated", n_ranks=337, **budget))
    # launchers without an fd wall are not judged
    monitor.on_record(rec(0.0, "runtime.validated", n_ranks=10_000,
                          launcher="InstantLauncher"))


# ------------------------------------------------------------------- offline
def test_offline_cli_flags_bad_trace_and_accepts_good_one(tmp_path, capsys):
    good = str(tmp_path / "good.jsonl")
    dump_jsonl([
        rec(0.1, "net.sent", pipe="conn1.ab", msg=1, nbytes=8),
        rec(0.2, "net.delivered", pipe="conn1.ab", msg=1),
    ], good)
    bad = str(tmp_path / "bad.jsonl")
    dump_jsonl([
        rec(0.1, "net.sent", pipe="conn1.ab", msg=1, nbytes=8),
        rec(0.2, "net.delivered", pipe="conn1.ab", msg=1),
        rec(0.3, "net.delivered", pipe="conn1.ab", msg=1),
    ], bad)
    assert main([good]) == 0
    assert check_trace(good).ok
    assert main([bad, "--keep-going"]) == 1
    out = capsys.readouterr().out
    assert "good.jsonl: OK" in out
    assert "bad.jsonl: FAIL" in out and "fifo-delivery" in out


def test_offline_cli_checks_a_real_simulation_dump(tmp_path):
    """End-to-end: dump a monitored categories trace of a real run, then
    re-check it offline."""
    from tests.ft.conftest import build_ft_run, ring_app_factory

    tracer = Tracer(enabled=True, categories=MonitorBus(all_monitors()).categories())
    sim = Simulator(seed=7, trace=tracer)
    run, _ = build_ft_run(sim, ring_app_factory(iters=10), size=2,
                          protocol="vcl", period=0.2)
    run.start()
    sim.run_until_complete(run.completed, limit=1e5)
    path = str(tmp_path / "run.jsonl")
    assert dump_jsonl(tracer.records, path) > 0
    bus = check_trace(path)
    assert bus.ok, [str(v) for v in bus.violations]
    assert sum(m.checked for m in bus.monitors) > 0
