"""Break a protocol on purpose; the online monitors must catch it.

These are the end-to-end proofs that the monitors watch the real event
stream rather than vacuously passing: each test flips one documented
test-only knob that removes a correctness mechanism, runs an otherwise
normal simulation, and asserts the matching monitor raises a precise
:class:`~repro.verify.InvariantViolation`.
"""

import pytest

from repro.ft import PclProtocol, VclProtocol
from repro.mpi import FtSockChannel, NemesisChannel
from repro.net import ClusterNetwork
from repro.net.topology import Endpoint
from repro.ft.recovery import FTRun
from repro.runtime import Dispatcher
from repro.sim import Simulator
from repro.verify import InvariantViolation, MonitorBus, all_monitors

from tests.ft.conftest import build_ft_run, ring_app_factory
from tests.ft.test_vcl_replay_order import seq_stream_app

pytestmark = pytest.mark.unmonitored  # each test attaches its own bus


def attach_monitors(sim):
    bus = MonitorBus(all_monitors(), raise_on_violation=True)
    bus.attach(sim)
    return bus


def test_pcl_without_channel_gating_is_caught(monkeypatch):
    """Remove the send gates / Nemesis stopper: payload crosses the channel
    while the rank checkpoints, which is exactly the pcl-flush invariant."""
    monkeypatch.setattr(PclProtocol, "channel_gating_enabled", False)
    sim = Simulator(seed=7)
    attach_monitors(sim)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.05), size=3,
                          protocol="pcl", period=0.4)
    run.start()
    with pytest.raises(InvariantViolation) as err:
        sim.run_until_complete(run.completed, limit=1e5)
    assert err.value.monitor == "pcl-flush"
    assert "while checkpointing" in err.value.message
    assert err.value.window  # the violation carries its event context


def test_pcl_nemesis_without_gating_is_caught(monkeypatch):
    """Same break on the Nemesis channel (stopper-based flush)."""
    monkeypatch.setattr(PclProtocol, "channel_gating_enabled", False)
    sim = Simulator(seed=7)
    attach_monitors(sim)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.05), size=3,
                          protocol="pcl", channel_cls=NemesisChannel,
                          period=0.4)
    run.start()
    with pytest.raises(InvariantViolation) as err:
        sim.run_until_complete(run.completed, limit=1e5)
    assert err.value.monitor == "pcl-flush"


def test_vcl_without_message_logging_is_caught(monkeypatch):
    """Disable the daemon's in-transit logging under streaming traffic: a
    message crosses the Chandy–Lamport cut with no logged copy."""
    monkeypatch.setattr(VclProtocol, "logging_enabled", False)
    sim = Simulator(seed=31)
    attach_monitors(sim)
    run, _ = build_ft_run(sim, seq_stream_app(n_msgs=60, nbytes=800_000,
                                              work=0.01),
                          size=2, protocol="vcl", period=0.12,
                          image_bytes=1e6, fork_latency=0.005)
    run.start()
    with pytest.raises(InvariantViolation) as err:
        sim.run_until_complete(run.completed, limit=1e5)
    assert err.value.monitor == "vcl-logging"
    assert "not logged" in err.value.message


def test_oversubscribed_dispatcher_is_caught():
    """With fd-limit enforcement off, a 337-process launch must be flagged
    by the fd-budget monitor at the runtime.validated record."""
    n_ranks = Dispatcher().max_processes() + 1  # 337
    sim = Simulator(seed=7)
    attach_monitors(sim)
    net = ClusterNetwork(sim, n_nodes=n_ranks)
    endpoints = [Endpoint(node, 0) for node in net.nodes]
    run = FTRun(sim, net, endpoints, ring_app_factory(iters=1), FtSockChannel,
                None, [], launcher=Dispatcher(enforce_fd_limit=False))
    with pytest.raises(InvariantViolation) as err:
        run.start()
    assert err.value.monitor == "fd-budget"
    assert "select() fd limit of 1024" in err.value.message


def test_unbroken_runs_stay_clean():
    """Control: the same scenarios with the knobs untouched are monitor-clean
    and every monitor actually inspected events."""
    sim = Simulator(seed=7)
    bus = attach_monitors(sim)
    run, _ = build_ft_run(sim, ring_app_factory(iters=30, work=0.05), size=3,
                          protocol="pcl", period=0.4)
    run.start()
    sim.run_until_complete(run.completed, limit=1e5)
    assert bus.finish() == []
    verdicts = bus.verdicts()
    for name in ("monotone-clock", "fifo-delivery", "pcl-flush"):
        assert verdicts[name]["ok"] and verdicts[name]["checked"] > 0
