"""Regenerate the survivor-recovery ablation (see repro.harness.figures.recovery)."""


def test_recovery(regenerate):
    regenerate("recovery")
