"""Regenerate the paper's fig10 experiment (see repro.harness.figures.fig10)."""


def test_fig10(regenerate):
    regenerate("fig10")
