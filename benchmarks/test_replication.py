"""Regenerate the replication ablation (see repro.harness.figures.replication)."""


def test_replication(regenerate):
    regenerate("replication")
