"""Regenerate the paper's fig7 experiment (see repro.harness.figures.fig7)."""


def test_fig7(regenerate):
    regenerate("fig7")
