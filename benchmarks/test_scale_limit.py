"""Regenerate the paper's scale_limit experiment (see repro.harness.figures.scale_limit)."""


def test_scale_limit(regenerate):
    regenerate("scale_limit")
