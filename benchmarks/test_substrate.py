"""Micro-benchmarks of the simulation substrate itself.

These are conventional multi-round pytest benchmarks (not figure
regenerations): they track the event-loop, network and MPI message rates
that determine how large a reproduction profile is affordable.
"""

from repro.mpi import FtSockChannel, MPIJob
from repro.net import ClusterNetwork
from repro.sim import Simulator


def test_event_loop_throughput(benchmark):
    """Raw timeout churn through the event heap."""

    def run():
        sim = Simulator()

        def ticker():
            for _ in range(2000):
                yield sim.timeout(0.001)

        for _ in range(8):
            sim.process(ticker())
        sim.run()
        return sim.now

    assert benchmark(run) > 0


def test_p2p_message_rate(benchmark):
    """Messages per second through the full channel + network stack."""

    def run():
        sim = Simulator()
        net = ClusterNetwork(sim, n_nodes=2)

        def app(ctx):
            if ctx.rank == 0:
                for i in range(2000):
                    yield from ctx.send(1, tag=1, data=None, nbytes=1024)
            else:
                for i in range(2000):
                    yield from ctx.recv(0, tag=1)

        job = MPIJob(sim, net, net.place(2), app, FtSockChannel)
        job.start()
        sim.run_until_complete(job.completed)
        return sim.now

    assert benchmark(run) > 0


def test_collective_rate(benchmark):
    """Allreduce rounds on 16 ranks."""

    def run():
        sim = Simulator()
        net = ClusterNetwork(sim, n_nodes=16)

        def app(ctx):
            for _ in range(50):
                yield from ctx.allreduce(1, lambda a, b: a + b, nbytes=8)

        job = MPIJob(sim, net, net.place(16), app, FtSockChannel)
        job.start()
        sim.run_until_complete(job.completed)
        return sim.now

    assert benchmark(run) > 0


def test_fluid_flow_contention(benchmark):
    """Flow add/remove churn on a shared link."""
    from repro.net.flows import FlowScheduler
    from repro.net.link import Link

    def run():
        sim = Simulator()
        scheduler = FlowScheduler(sim)
        link = Link("l", 1e9)

        def churner():
            for _ in range(500):
                flow = scheduler.start([link], 1e6)
                yield flow.done

        for _ in range(8):
            sim.process(churner())
        sim.run()
        return sim.now

    assert benchmark(run) > 0
