"""Regenerate the paper's fig8 experiment (see repro.harness.figures.fig8)."""


def test_fig8(regenerate):
    regenerate("fig8")
