"""Regenerate the paper's ablations experiment (see repro.harness.figures.ablations)."""


def test_ablations(regenerate):
    regenerate("ablations")
