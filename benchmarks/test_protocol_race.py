"""Regenerate the three-way protocol race (see repro.harness.figures.protocol_race)."""


def test_protocol_race(regenerate):
    regenerate("protocol_race")
