"""Regenerate the paper's fig9 experiment (see repro.harness.figures.fig9)."""


def test_fig9(regenerate):
    regenerate("fig9")
