"""pytest-benchmark harness for the figure reproductions.

Each ``test_fig*.py`` regenerates one of the paper's tables/figures and
asserts its qualitative shape checks.  The profile defaults to ``smoke`` so
the suite stays fast; export ``REPRO_PROFILE=quick`` (or ``paper``) for the
real reproductions — EXPERIMENTS.md records the quick-profile numbers.
"""

import os

import pytest

from repro.harness import get_profile, get_experiment, render, save_json


@pytest.fixture(scope="session")
def profile():
    name = os.environ.get("REPRO_PROFILE", "smoke")
    return get_profile(name, seed=int(os.environ.get("REPRO_SEED", "0")))


@pytest.fixture
def regenerate(benchmark, profile):
    """Run one experiment exactly once under the benchmark timer."""

    def _run(experiment_id, require_checks=True):
        result = benchmark.pedantic(
            get_experiment(experiment_id), args=(profile,),
            rounds=1, iterations=1,
        )
        print(render(result))
        save_json(result, os.environ.get("REPRO_RESULTS", "results"))
        if require_checks:
            failed = [name for name, ok in result.checks.items() if not ok]
            assert not failed, f"shape checks failed: {failed}"
        return result

    return _run
