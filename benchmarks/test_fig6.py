"""Regenerate the paper's fig6 experiment (see repro.harness.figures.fig6)."""


def test_fig6(regenerate):
    regenerate("fig6")
