"""Regenerate the MTTF extension experiment (repro.harness.figures.mttf)."""


def test_mttf(regenerate):
    regenerate("mttf")
