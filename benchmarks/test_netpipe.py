"""Regenerate the paper's netpipe experiment (see repro.harness.figures.netpipe)."""


def test_netpipe(regenerate):
    regenerate("netpipe")
