"""Regenerate the paper's fig5 experiment (see repro.harness.figures.fig5)."""


def test_fig5(regenerate):
    regenerate("fig5")
