"""MPI constants and tag-space layout."""

from __future__ import annotations

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX_USER_TAG",
    "COLLECTIVE_TAG_BASE",
    "EAGER_THRESHOLD",
]

#: wildcard source for receives
ANY_SOURCE = -1

#: wildcard tag for receives
ANY_TAG = -1

#: user tags must stay below this; collectives use the space above it
MAX_USER_TAG = 1 << 20

#: base of the reserved tag space used by collective operations.  Each
#: collective call on a communicator gets a unique tag derived from the
#: communicator's collective sequence number, so user traffic can never match
#: collective traffic.
COLLECTIVE_TAG_BASE = 1 << 20

#: messages at or below this size are sent eagerly; larger ones behave the
#: same in this model but the constant is exposed for the channel layer and
#: future rendezvous modelling
EAGER_THRESHOLD = 64 * 1024
