"""Non-blocking communication requests.

A :class:`Request` wraps the completion of an ``isend``/``irecv``.
``wait()`` is a generator to use with ``yield from``; ``test()`` polls.

Op-id bookkeeping (see :mod:`repro.mpi.context`): the underlying operation
commits at its commit point (enqueue for sends, match for receives) via the
context, independent of when — or whether — the application waits.  A request
created during restart replay is born complete and ``wait()`` returns the
retained receive value (or :data:`~repro.mpi.context.SKIPPED`).
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Request"]


class Request:
    """Handle for an in-flight non-blocking operation."""

    __slots__ = ("context", "event", "kind", "_replayed", "_stored", "_op_id")

    def __init__(self, context: "RankContext", event: Optional["Event"], kind: str,
                 replayed: bool = False) -> None:
        self.context = context
        self.event = event
        self.kind = kind
        self._replayed = replayed
        self._stored: Any = None
        self._op_id: Optional[int] = None

    @property
    def complete(self) -> bool:
        if self._replayed:
            return True
        return self.event is not None and self.event.processed

    def test(self) -> bool:
        """Non-blocking completion check.  No progress is driven here: the
        channel receiver loops advance communication independently, like a
        progress thread."""
        return self.complete

    def wait(self):
        """Generator: block until complete.

        Returns ``(data, Status)`` for receives (``(SKIPPED, None)`` when the
        value predates the restored snapshot), ``None`` for sends.
        """
        from repro.mpi.context import SKIPPED  # local import to avoid a cycle

        if self._replayed:
            if self.kind == "recv":
                if self._stored is SKIPPED or self._stored is None:
                    return SKIPPED, None
                return self._stored
            return None
        value = yield self.event
        if self._op_id is not None:
            self.context._pending_values.pop(self._op_id, None)
        return value
