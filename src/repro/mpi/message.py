"""Wire-level packet types.

Everything that crosses a connection between two MPI processes is one of
these packets.  ``AppPacket`` carries application payloads; the rest are
control packets consumed by the channel/protocol layer and never seen by the
application.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "Packet",
    "AppPacket",
    "MarkerPacket",
    "CheckpointDonePacket",
    "DrainCountPacket",
    "DrainGoPacket",
    "ControlPacket",
    "MARKER_BYTES",
]

#: size of a marker packet on the wire (a header-only packet)
MARKER_BYTES = 64.0


class Packet:
    """Base class for everything sent over a channel connection."""

    __slots__ = ("src",)

    def __init__(self, src: int) -> None:
        self.src = src


class AppPacket(Packet):
    """An application message: MPI envelope plus payload."""

    __slots__ = ("tag", "data", "nbytes", "seq")

    def __init__(self, src: int, tag: int, data: Any, nbytes: float, seq: int) -> None:
        super().__init__(src)
        self.tag = tag
        self.data = data
        self.nbytes = nbytes
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AppPacket src={self.src} tag={self.tag} {self.nbytes:.0f}B #{self.seq}>"


class MarkerPacket(Packet):
    """A Chandy–Lamport / Pcl checkpoint-wave marker."""

    __slots__ = ("wave",)

    def __init__(self, src: int, wave: int) -> None:
        super().__init__(src)
        self.wave = wave

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Marker wave={self.wave} src={self.src}>"


class CheckpointDonePacket(Packet):
    """Pcl: 'my image is stored' notification sent to rank 0."""

    __slots__ = ("wave",)

    def __init__(self, src: int, wave: int) -> None:
        super().__init__(src)
        self.wave = wave


class DrainCountPacket(Packet):
    """Dcl: a rank's cumulative send/receive counters, reported to the
    initiator while the network drains (the CVC quiescence idiom)."""

    __slots__ = ("wave", "sent", "recvd")

    def __init__(self, src: int, wave: int, sent: int, recvd: int) -> None:
        super().__init__(src)
        self.wave = wave
        self.sent = sent
        self.recvd = recvd

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DrainCount wave={self.wave} src={self.src} "
                f"sent={self.sent} recvd={self.recvd}>")


class DrainGoPacket(Packet):
    """Dcl: the initiator's 'network is empty, checkpoint now' order."""

    __slots__ = ("wave",)

    def __init__(self, src: int, wave: int) -> None:
        super().__init__(src)
        self.wave = wave


class ControlPacket(Packet):
    """Generic runtime control message (dispatcher/FTPM traffic)."""

    __slots__ = ("kind", "payload")

    def __init__(self, src: int, kind: str, payload: Any = None) -> None:
        super().__init__(src)
        self.kind = kind
        self.payload = payload
