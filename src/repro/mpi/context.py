"""Per-rank MPI execution context with restartable-operation semantics.

The central difficulty of reproducing *process* checkpointing in a simulator
is that Python generators cannot be snapshotted.  Instead, every MPI-visible
operation an application performs (send, recv, compute, state update, and the
point-to-point constituents of collectives) is assigned an **operation id in
program order** at initiation and marked **completed** at its commit point:

========  ==========================================================
op        commit point
========  ==========================================================
send      payload enqueued on the connection (bytes will arrive or be
          captured by the wave's channel state — see DESIGN.md)
recv      message matched to the posted receive (value retained until
          the application consumes it)
compute   the modelled compute delay elapsed
update    immediately (synchronous mutation of the snapshot state)
========  ==========================================================

A checkpoint snapshot records the completed-op set, the application state
dict, the values of completed-but-unconsumed receives, and the matching
engine's unexpected queue.  On rollback, the application generator is simply
re-created and re-executed: operations in the completed set are *skipped*
(sends are not re-sent, receives return their retained value or
:data:`SKIPPED`), so execution fast-forwards to the exact logical point of
the snapshot.  Because the coordinated checkpointing protocols guarantee a
consistent cut at this operation granularity, replay composes correctly
across ranks.

Applications that carry data across a rollback must keep it in ``ctx.state``
via :meth:`RankContext.update` — mutations of plain local variables are
re-executed on replay with :data:`SKIPPED` receive values.

**Determinism rule**: operation *initiation* must be unconditional with
respect to replay-visible values.  Never write
``if x is not SKIPPED: ctx.update(...)`` — that desynchronizes the replayed
op stream from the original.  Call the op unconditionally; ops skip
themselves during replay, and a skipped ``update`` never executes its
function, so SKIPPED values cannot corrupt state.  (Replayed values that feed
a *live* op cannot be SKIPPED: a receive's retained value survives in the
snapshot exactly until the op consuming it has itself committed.)
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.mpi import collectives as _collectives
from repro.mpi.consts import ANY_SOURCE, ANY_TAG, COLLECTIVE_TAG_BASE
from repro.mpi.request import Request
from repro.mpi.status import Status

__all__ = ["RankContext", "Snapshot", "SKIPPED", "CompletedSet"]


class _Skipped:
    """Sentinel returned by operations skipped during restart replay."""

    _instance: Optional["_Skipped"] = None

    def __new__(cls) -> "_Skipped":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<SKIPPED>"

    def __bool__(self) -> bool:
        return False


SKIPPED = _Skipped()


class CompletedSet:
    """A set of op ids compacted as (watermark, sparse extras).

    All ids below ``watermark`` are complete.  Completion is almost always in
    program order, so ``extras`` stays tiny (out-of-order isend/irecv only).
    """

    __slots__ = ("watermark", "extras")

    def __init__(self, watermark: int = 0, extras: Optional[Set[int]] = None) -> None:
        self.watermark = watermark
        self.extras: Set[int] = set(extras) if extras else set()

    def add(self, op_id: int) -> None:
        if op_id == self.watermark:
            self.watermark += 1
            while self.watermark in self.extras:
                self.extras.discard(self.watermark)
                self.watermark += 1
        elif op_id > self.watermark:
            self.extras.add(op_id)
        # op_id < watermark: already recorded; idempotent

    def __contains__(self, op_id: int) -> bool:
        return op_id < self.watermark or op_id in self.extras

    def __len__(self) -> int:
        return self.watermark + len(self.extras)

    def copy(self) -> "CompletedSet":
        return CompletedSet(self.watermark, set(self.extras))


class Snapshot:
    """A rank's checkpointable state at one instant."""

    __slots__ = (
        "rank",
        "wave",
        "time",
        "completed",
        "state",
        "pending_values",
        "unexpected",
        "image_bytes",
    )

    def __init__(self, rank, wave, time, completed, state, pending_values,
                 unexpected, image_bytes) -> None:
        self.rank = rank
        self.wave = wave
        self.time = time
        self.completed = completed
        self.state = state
        self.pending_values = pending_values
        self.unexpected = unexpected
        self.image_bytes = image_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Snapshot rank={self.rank} wave={self.wave} "
            f"t={self.time:.3f} ops={len(self.completed)}>"
        )


class RankContext:
    """The MPI library as one application process sees it."""

    def __init__(
        self,
        job: "MPIJob",
        rank: int,
        size: int,
        channel: "BaseChannel",
        image_bytes: float = 0.0,
    ) -> None:
        self.job = job
        self.sim = job.sim
        self.rank = rank
        self.size = size
        self.channel = channel
        #: application-visible checkpointed state (mutate via :meth:`update`)
        self.state: Dict[str, Any] = {}
        #: process image size excluding channel state (set by the app model)
        self.image_bytes = image_bytes
        self._next_op = 0
        self._completed = CompletedSet()
        self._pending_values: Dict[int, Any] = {}
        self._coll_seq = 0
        self._pending_stall = 0.0

    # ----------------------------------------------------------- op plumbing
    def _new_op(self) -> int:
        op_id = self._next_op
        self._next_op += 1
        return op_id

    def _skip(self, op_id: int) -> bool:
        return op_id in self._completed

    def _commit(self, op_id: int, value: Any = None, retain: bool = False) -> None:
        self._completed.add(op_id)
        if retain:
            self._pending_values[op_id] = value

    def _consume(self, op_id: int) -> Any:
        return self._pending_values.pop(op_id, SKIPPED)

    @property
    def replay_remaining(self) -> int:
        """Ops still to be skipped before execution goes live (0 normally)."""
        return max(0, len(self._completed) - self._next_op)

    # ------------------------------------------------------------- compute
    def add_stall(self, seconds: float) -> None:
        """Charge a process-wide pause (e.g. the checkpoint fork) against
        the next compute phase — the cheapest faithful way to suspend a
        generator-based process that may be mid-timeout."""
        self._pending_stall += seconds

    def compute(self, seconds: float):
        """Model ``seconds`` of local computation (generator)."""
        op_id = self._new_op()
        if self._skip(op_id):
            return SKIPPED
        stall, self._pending_stall = self._pending_stall, 0.0
        if seconds + stall > 0:
            yield self.sim.timeout(seconds + stall)
        self._commit(op_id)
        return None

    def update(self, fn: Callable[[Dict[str, Any]], Any]) -> Any:
        """Atomically mutate the checkpointed state; returns ``fn``'s result.

        Skipped on replay (its effect is already in the restored state).
        """
        op_id = self._new_op()
        if self._skip(op_id):
            return SKIPPED
        result = fn(self.state)
        self._commit(op_id)
        return result

    # ---------------------------------------------------------------- sends
    def send(self, dst: int, tag: int = 0, data: Any = None, nbytes: float = 0.0):
        """Blocking send (generator): returns after the payload left the NIC.

        The op commits when the payload is accepted by the connection, i.e.
        earlier than the return — see the module docstring for why this is
        the correct cut point.
        """
        op_id = self._new_op()
        if self._skip(op_id):
            return SKIPPED
        sent = self.channel.try_fast_send(dst, tag, data, nbytes)
        if sent is None:
            sent = yield from self.channel.post_send(dst, tag, data, nbytes)
        self._commit(op_id)
        yield sent
        return None

    def isend(self, dst: int, tag: int = 0, data: Any = None, nbytes: float = 0.0) -> Request:
        """Non-blocking send; ``yield from req.wait()`` for completion."""
        op_id = self._new_op()
        if self._skip(op_id):
            return Request(self, None, "send", replayed=True)
        sent = self.channel.try_fast_send(dst, tag, data, nbytes)
        if sent is not None:
            self._commit(op_id)
            return Request(self, sent, "send")

        def _pusher():
            try:
                slow_sent = yield from self.channel.post_send(dst, tag, data, nbytes)
                self._commit(op_id)
                yield slow_sent
            except ConnectionError:
                # The pipe broke mid-send (peer death).  A blocking send
                # surfaces this in the app generator, which the job parks;
                # the pusher has no waiter to throw into, so report the
                # closure the way channel receivers do and let recovery
                # roll the op back.
                if not self.channel.down:
                    self.channel.job.notify_socket_closed(self.rank, dst)

        proc = self.sim.process(_pusher(), name=f"isend:r{self.rank}->r{dst}")
        return Request(self, proc, "send")

    # ------------------------------------------------------------- receives
    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (generator): returns the payload data."""
        data, _status = yield from self.recv_status(source, tag)
        return data

    def recv_status(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive returning ``(data, Status)``."""
        op_id = self._new_op()
        if self._skip(op_id):
            value = self._consume(op_id)
            if value is SKIPPED:
                return SKIPPED, None
            return value
        event = self.channel.matching.post_recv(source, tag)
        event.callbacks.append(
            lambda ev: self._commit(op_id, ev.value, retain=True) if ev.ok else None
        )
        value = yield event
        self._pending_values.pop(op_id, None)
        return value

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; wait() returns ``(data, Status)``."""
        op_id = self._new_op()
        if self._skip(op_id):
            value = self._consume(op_id)
            request = Request(self, None, "recv", replayed=True)
            request._stored = value  # type: ignore[attr-defined]
            return request
        event = self.channel.matching.post_recv(source, tag)
        event.callbacks.append(
            lambda ev: self._commit(op_id, ev.value, retain=True) if ev.ok else None
        )
        request = Request(self, event, "recv")
        request._op_id = op_id  # type: ignore[attr-defined]
        return request

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking probe (not an op: has no effect on state)."""
        return self.channel.matching.probe(source, tag)

    # ------------------------------------------------------------ composite
    def sendrecv(self, dst: int, src: int, send_tag: int = 0,
                 recv_tag: Optional[int] = None, data: Any = None,
                 nbytes: float = 0.0):
        """Paired exchange (generator): isend to ``dst``, recv from ``src``,
        wait — the deadlock-free idiom every skeleton uses."""
        if recv_tag is None:
            recv_tag = send_tag
        request = self.isend(dst, send_tag, data, nbytes)
        received = yield from self.recv(src, recv_tag)
        yield from request.wait()
        return received

    def waitall(self, requests):
        """Generator: complete every request; returns their values in order."""
        values = []
        for request in requests:
            values.append((yield from request.wait()))
        return values

    # ----------------------------------------------------------- collectives
    def _next_coll_tag(self) -> int:
        self._coll_seq += 1
        return COLLECTIVE_TAG_BASE + self._coll_seq

    def barrier(self):
        return _collectives.barrier(self)

    def bcast(self, value: Any, root: int = 0, nbytes: float = 0.0):
        return _collectives.bcast(self, value, root, nbytes)

    def reduce(self, value: Any, op: Callable[[Any, Any], Any], root: int = 0,
               nbytes: float = 0.0):
        return _collectives.reduce(self, value, op, root, nbytes)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any], nbytes: float = 0.0):
        return _collectives.allreduce(self, value, op, nbytes)

    def gather(self, value: Any, root: int = 0, nbytes: float = 0.0):
        return _collectives.gather(self, value, root, nbytes)

    def allgather(self, value: Any, nbytes: float = 0.0):
        return _collectives.allgather(self, value, nbytes)

    def alltoall(self, values, nbytes_each: float = 0.0):
        return _collectives.alltoall(self, values, nbytes_each)

    def scatter(self, values, root: int = 0, nbytes_each: float = 0.0):
        return _collectives.scatter(self, values, root, nbytes_each)

    # -------------------------------------------------------------- snapshot
    def take_snapshot(self, wave: int) -> Snapshot:
        """Capture this rank's checkpointable state (synchronous).

        Called by the checkpoint protocol at the local-checkpoint instant.
        The image size models a BLCR-style full-process dump: the application
        memory plus the runtime's buffered channel state.
        """
        unexpected = self.channel.matching.snapshot()
        buffered_bytes = sum(p.nbytes for p in unexpected)
        return Snapshot(
            rank=self.rank,
            wave=wave,
            time=self.sim.now,
            completed=self._completed.copy(),
            state=copy.deepcopy(self.state),
            pending_values=copy.deepcopy(self._pending_values),
            unexpected=unexpected,
            image_bytes=self.image_bytes + buffered_bytes,
        )

    def restore_snapshot(self, snapshot: Snapshot) -> None:
        """Load a snapshot into a *fresh* context before the app restarts."""
        if self._next_op != 0:
            raise RuntimeError("restore_snapshot on a used context")
        self._completed = snapshot.completed.copy()
        self.state = copy.deepcopy(snapshot.state)
        self._pending_values = dict(snapshot.pending_values)
        self.channel.matching.restore(list(snapshot.unexpected))
