"""Channel base: connection management, gating, delayed receives, hooks.

A channel is one rank's communication engine.  It owns:

* lazily established connections to peers (two processes connect on their
  first communication, like MPICH2 — except channels with ``eager_connect``,
  which build the full mesh at startup like MPICH-1's ch_p4/ch_v);
* per-destination *send gates* and a global send gate (the Nemesis "stopper
  request"), closed by the blocking protocol during a wave;
* per-source *receive freezing* with a delayed receive queue: frozen sources'
  application packets are parked and handed to matching only when the
  protocol thaws them (after the local checkpoint).  The delayed queue is
  deliberately **not** part of a snapshot: its packets were sent after the
  sender's checkpoint, so a restart discards them and the sender re-sends —
  exactly the Nemesis behaviour described in the paper (Sec. 4.2);
* protocol hooks: control packets are routed to the attached protocol
  endpoint, and application packets are offered to it first (the Vcl
  protocol uses this to log in-transit messages).

Channels never interpret payloads; everything above the envelope is opaque.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

from repro.mpi.matching import MatchingEngine
from repro.mpi.message import AppPacket, MarkerPacket, Packet
from repro.net.connection import BrokenConnectionError, ConnectionEnd
from repro.sim.primitives import Gate

__all__ = ["BaseChannel", "ChannelDownError"]

#: envelope bytes added to every application payload on the wire
HEADER_BYTES = 32.0


class ChannelDownError(ConnectionError):
    """Raised when operating on a channel after shutdown."""


class BaseChannel:
    """One rank's communication engine.  Subclasses set the cost model."""

    #: establish the full connection mesh at job start (MPICH-1 style)
    eager_connect = False
    #: human-readable channel name for traces and reports
    channel_name = "base"
    #: progress-engine coupling of checkpoint-image streaming (Sec. 5.2):
    #: while this rank's image is in flight, every application send stalls
    #: for roughly one image chunk's service time at the transfer's current
    #: rate, scaled by this factor.  1.0 for the MPICH2 channels (the MPI
    #: process's own engine pipelines the file to the server); small for
    #: ch_v (the daemon's data connection decouples the transfer from the
    #: computation — why Vcl's completion stays flat in Fig. 5).
    transfer_coupling = 1.0
    #: pipelining chunk of the image streaming path
    TRANSFER_CHUNK_BYTES = 128 * 1024.0
    #: fold per-message engine costs into delivery latency (cheap) instead
    #: of blocking the sender (ch_v overrides: the daemon really serializes)
    defer_send_overhead = True

    def __init__(self, job: "MPIJob", rank: int) -> None:
        self.job = job
        self.sim = job.sim
        self.rank = rank
        self.matching = MatchingEngine(self.sim, rank)
        self.conns: Dict[int, ConnectionEnd] = {}
        self._send_gates: Dict[int, Gate] = {}
        self.global_send_gate = Gate(self.sim, open=True, name=f"g:r{rank}")
        self._frozen_sources: set = set()
        self.delayed_queue: Deque[AppPacket] = deque()
        self.protocol: Optional[Any] = None
        self.down = False
        self._seq = 0
        self._receivers: list = []
        #: the connection end streaming this rank's checkpoint image, set by
        #: the protocol endpoint for the duration of the transfer
        self.active_transfer_end = None

    # ----------------------------------------------------------- cost model
    def recv_overhead(self, nbytes: float) -> float:
        """Per-message receive-side host cost (seconds); subclass hook."""
        return 0.0

    def send_overhead(self, nbytes: float) -> float:
        """Per-message send-side host cost (seconds); subclass hook."""
        return 0.0

    # ----------------------------------------------------------------- gates
    def send_gate(self, dst: int) -> Gate:
        gate = self._send_gates.get(dst)
        if gate is None:
            gate = Gate(self.sim, open=True, name=f"g:r{self.rank}->r{dst}")
            self._send_gates[dst] = gate
        return gate

    def close_send_gates(self, dsts) -> None:
        for dst in dsts:
            self.send_gate(dst).close()

    def open_send_gates(self) -> None:
        for gate in self._send_gates.values():
            gate.open()

    # --------------------------------------------------------------- freezing
    def freeze_source(self, src: int) -> None:
        self._frozen_sources.add(src)

    def thaw_sources(self) -> None:
        """Deliver the delayed receive queue in arrival order, then unfreeze."""
        self._frozen_sources.clear()
        drained = len(self.delayed_queue)
        while self.delayed_queue:
            self._deliver_app(self.delayed_queue.popleft())
        if drained and self.sim.metrics is not None:
            self.sim.metrics.set("channel.delayed_queue_depth", 0.0,
                                 rank=self.rank)

    @property
    def frozen_sources(self):
        return frozenset(self._frozen_sources)

    # ------------------------------------------------------------------ send
    def post_send(self, dst: int, tag: int, data: Any, nbytes: float):
        """Generator: enqueue an application message to ``dst``.

        Returns the transmit-complete event.  The payload is *committed*
        (guaranteed to reach the peer's channel or the wave's channel state)
        once this generator returns.
        """
        if self.down:
            raise ChannelDownError(f"rank {self.rank} channel is down")
        packet = AppPacket(self.rank, tag, data, nbytes + HEADER_BYTES, self._next_seq())
        sent = yield from self._send_packet(dst, packet, gated=True)
        self.sim.trace.count("mpi.messages")
        self.sim.trace.count("mpi.bytes", nbytes)
        if self.sim.trace.wants("mpi.send"):
            self._record_send(packet, dst)
        if self.sim.metrics is not None:
            self._metrics_sent(packet, dst)
        if self.protocol is not None:
            # Commit-point hook (seq assignment above is *pre*-gate, so a
            # packet parked at a closed gate has not been sent): Dcl counts
            # committed application sends here for counter quiescence.
            self.protocol.on_app_sent(packet, dst)
        return sent

    def send_control(self, dst: int, packet: Packet, nbytes: float):
        """Generator: send a protocol packet, bypassing the send gates."""
        if self.down:
            raise ChannelDownError(f"rank {self.rank} channel is down")
        result = yield from self._send_packet(dst, packet, gated=False)
        return result

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _gates_open(self, dst: int) -> bool:
        if not self.global_send_gate.is_open:
            return False
        gate = self._send_gates.get(dst)
        return gate is None or gate.is_open

    def _send_packet(self, dst: int, packet: Packet, gated: bool):
        while True:
            if gated and not self._gates_open(dst):
                yield self.send_gate(dst).wait()
                yield self.global_send_gate.wait()
                continue
            end = self.conns.get(dst)
            if end is None:
                end = yield from self.job.establish(self.rank, dst)
                if self.down:
                    raise ChannelDownError(f"rank {self.rank} channel is down")
                continue  # gates may have moved while connecting; re-check
            break
        if self.down:
            raise ChannelDownError(f"rank {self.rank} channel is down")
        nbytes = getattr(packet, "nbytes", HEADER_BYTES)
        overhead = self.send_overhead(nbytes)
        if gated:
            overhead += self.transfer_tax()
        # Channels with ``defer_send_overhead`` push their (tiny) per-message
        # engine costs onto the message's delivery latency instead of
        # blocking the sender — behaviourally equivalent for microsecond
        # costs but one event cheaper per message.  ch_v keeps the blocking
        # path: its daemon serialization is load-bearing.
        if overhead > 0.0 and not self.defer_send_overhead:
            yield from self._host_cost(overhead)
            overhead = 0.0
        return end.send(packet, nbytes, extra_latency=overhead)

    def try_fast_send(self, dst: int, tag: int, data: Any, nbytes: float):
        """Non-yielding send when the path is clear: connection up, gates
        open.  Returns the transmit-complete event, or None if the slow
        (generator) path is required."""
        if self.down:
            raise ChannelDownError(f"rank {self.rank} channel is down")
        end = self.conns.get(dst)
        if end is None or not self._gates_open(dst):
            return None
        wire_bytes = nbytes + HEADER_BYTES
        overhead = self.send_overhead(wire_bytes) + self.transfer_tax()
        if overhead > 0.0 and not self.defer_send_overhead:
            return None
        packet = AppPacket(self.rank, tag, data, wire_bytes, self._next_seq())
        self.sim.trace.count("mpi.messages")
        self.sim.trace.count("mpi.bytes", nbytes)
        if self.sim.trace.wants("mpi.send"):
            self._record_send(packet, dst)
        if self.sim.metrics is not None:
            self._metrics_sent(packet, dst)
        if self.protocol is not None:
            self.protocol.on_app_sent(packet, dst)
        return end.send(packet, wire_bytes, extra_latency=overhead)

    def _record_send(self, packet: AppPacket, dst: int) -> None:
        """Emit the mpi.send record at the commit point (monitored runs).

        The record carries the sender's protocol view *at commit time* —
        its latest snapshot wave and blocking state — which is exactly what
        the orphan/flush invariants quantify over.
        """
        endpoint = self.protocol
        self.sim.trace.record(
            self.sim.now, "mpi.send",
            job=self.job.uid, src=self.rank, dst=dst, seq=packet.seq,
            nbytes=packet.nbytes,
            wave=getattr(endpoint, "wave", 0),
            state=getattr(endpoint, "state", "normal"),
            protocol=getattr(getattr(endpoint, "protocol", None),
                             "protocol_name", None),
        )

    def _metrics_sent(self, packet: AppPacket, dst: int) -> None:
        """Per-link wire accounting at the send commit point (metrics on).

        Counts *wire* bytes (payload + envelope) so the send and receive
        sides of a link agree byte-for-byte — the conservation law the
        property tests assert.  Control packets are deliberately excluded
        on both sides: markers and acks are protocol traffic, not
        application traffic.
        """
        metrics = self.sim.metrics
        metrics.count("channel.messages_sent", 1.0,
                      channel=self.channel_name, src=self.rank, dst=dst)
        metrics.count("channel.bytes_sent", packet.nbytes,
                      channel=self.channel_name, src=self.rank, dst=dst)

    def transfer_tax(self) -> float:
        """Engine stall imposed on application messages while this rank's
        checkpoint image streams to its server."""
        end = self.active_transfer_end
        if end is None or self.transfer_coupling <= 0.0:
            return 0.0
        flow = end.active_flow
        if flow is None or not flow.active or flow.rate <= 0.0:
            return 0.0
        return self.transfer_coupling * self.TRANSFER_CHUNK_BYTES / flow.rate

    def _host_cost(self, seconds: float):
        """Model host CPU time for message processing; subclasses may
        serialize this through a daemon resource."""
        yield self.sim.timeout(seconds)

    # -------------------------------------------------------------- receive
    def attach(self, peer: int, end: ConnectionEnd) -> None:
        """Register a connection end for ``peer`` and start receiving."""
        self.conns[peer] = end
        receiver = self.sim.process(
            self._receiver(peer, end), name=f"rx:r{self.rank}<-r{peer}"
        )
        self._receivers.append(receiver)

    def _receiver(self, peer: int, end: ConnectionEnd):
        while True:
            try:
                packet = yield end.recv()
            except ConnectionError:
                if not self.down:
                    self.job.notify_socket_closed(self.rank, peer)
                return
            overhead = self.recv_overhead(getattr(packet, "nbytes", HEADER_BYTES))
            if overhead > 0.0:
                yield from self._host_cost(overhead)
            self.handle_packet(packet)

    def handle_packet(self, packet: Packet) -> None:
        if self.down:
            return
        if isinstance(packet, AppPacket):
            trace = self.sim.trace
            if trace.wants("mpi.recv"):
                trace.record(self.sim.now, "mpi.recv", job=self.job.uid,
                             rank=self.rank, src=packet.src, seq=packet.seq)
            metrics = self.sim.metrics
            if metrics is not None:
                metrics.count("channel.messages_received", 1.0,
                              channel=self.channel_name,
                              src=packet.src, dst=self.rank)
                metrics.count("channel.bytes_received", packet.nbytes,
                              channel=self.channel_name,
                              src=packet.src, dst=self.rank)
            if self.protocol is not None:
                self.protocol.on_app_packet(packet)
            if packet.src in self._frozen_sources:
                self.delayed_queue.append(packet)
                self.sim.trace.count("channel.delayed_packets")
                if metrics is not None:
                    # gauge (not counter): current depth of the Pcl
                    # delayed-receive queue; peak is kept by the instrument
                    metrics.set("channel.delayed_queue_depth",
                                float(len(self.delayed_queue)),
                                rank=self.rank)
            else:
                self._deliver_app(packet)
        else:
            if self.protocol is not None:
                self.protocol.on_control(packet)
            else:
                self.job.on_unclaimed_control(self.rank, packet)

    def _deliver_app(self, packet: AppPacket) -> None:
        trace = self.sim.trace
        if trace.wants("mpi.deliver"):
            trace.record(self.sim.now, "mpi.deliver", job=self.job.uid,
                         rank=self.rank, src=packet.src, seq=packet.seq)
        self.matching.deliver(packet)

    # -------------------------------------------------------------- shutdown
    def shutdown(self, error: Optional[BaseException] = None) -> None:
        """Tear the channel down (process killed or job dismantled)."""
        if self.down:
            return
        self.down = True
        error = error or ChannelDownError(f"rank {self.rank} shut down")
        for end in self.conns.values():
            end.connection.break_()
        self.conns.clear()
        self.matching.fail_all(error)
        for receiver in self._receivers:
            receiver.interrupt(error)
        self._receivers.clear()
        self.delayed_queue.clear()
