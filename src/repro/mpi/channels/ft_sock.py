"""The ft-sock channel: MPICH2's TCP sock channel with checkpoint hooks.

This is the paper's new blocking-checkpoint channel (Sec. 4.2): a derivation
of the existing sock implementation whose only protocol-relevant change is a
hook in the request-posting path that delays posts while a checkpoint wave is
active — which is exactly what the base channel's send gates implement.  Host
overheads are those of a poll+iovec TCP engine and are already folded into
the fabric latency, so the cost-model hooks stay at zero.
"""

from __future__ import annotations

from repro.mpi.channels.base import BaseChannel

__all__ = ["FtSockChannel"]


class FtSockChannel(BaseChannel):
    """TCP sock channel with Pcl gating hooks."""

    channel_name = "ft-sock"
    eager_connect = False
