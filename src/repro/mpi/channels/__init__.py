"""MPI channel implementations.

Three channels reproduce the paper's communication substrates:

* :class:`~repro.mpi.channels.ft_sock.FtSockChannel` — MPICH2's ft-sock (a
  TCP sock derivative with checkpoint hooks in the request-posting path).
* :class:`~repro.mpi.channels.ch_v.ChVChannel` — MPICH-V's ch_v device with
  its per-process communication daemon (two extra Unix-socket hops per
  message, single-threaded multiplexing, message logging for Vcl).
* :class:`~repro.mpi.channels.nemesis.NemesisChannel` — shared memory
  intranode + GM internode, with the single-send-queue *stopper request* and
  a *delayed receive queue*.
"""

from repro.mpi.channels.base import BaseChannel, ChannelDownError
from repro.mpi.channels.ch_v import ChVChannel
from repro.mpi.channels.ft_sock import FtSockChannel
from repro.mpi.channels.nemesis import NemesisChannel

__all__ = [
    "BaseChannel",
    "ChannelDownError",
    "ChVChannel",
    "FtSockChannel",
    "NemesisChannel",
]
