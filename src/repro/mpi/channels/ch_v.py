"""The ch_v device: MPICH-V's communication-daemon channel.

Every MPI process is paired with a single-threaded communication daemon
(Sec. 4.1).  Application messages traverse two extra Unix-socket hops (MPI
process -> local daemon on the send side, daemon -> MPI process on the
receive side) plus one memory copy per hop, and all of a process's traffic is
multiplexed through the one daemon thread (select()-based).

This is what the paper blames for Vcl's poor latency on Myrinet ("each
message has to pass through two UNIX sockets ..., resulting in unnecessary
copies and a high latency overhead", Sec. 5.3), so the cost model here is
the load-bearing part: a per-message daemon cost on each side, *serialized*
through a single daemon resource per process, plus a per-byte copy charge.

The daemon is also where Vcl logs in-transit messages during a checkpoint
wave; the logging bookkeeping itself lives in the protocol
(:mod:`repro.ft.vcl`) via the ``on_app_packet`` hook, but the channel exposes
the volatile log buffer accounting the daemon would hold.
"""

from __future__ import annotations

from repro.mpi.channels.base import BaseChannel
from repro.sim.primitives import Resource

__all__ = ["ChVChannel"]

#: one Unix-socket hop: write + select() wakeup + read + scheduling in the
#: single-threaded daemon under load (the MPICH-V line of papers reports
#: multi-fold small-message latency over the raw device)
UNIX_HOP_SECONDS = 120e-6

#: daemon memcpy bandwidth for the extra copy per hop
COPY_BANDWIDTH = 1.2e9

#: per-socket cost of each select() scan in the single-threaded daemon
SELECT_SCAN_PER_SOCKET = 0.25e-6


class ChVChannel(BaseChannel):
    """MPICH-V's daemon-mediated channel."""

    channel_name = "ch_v"
    #: ch_p4-style runtimes open all sockets at startup
    eager_connect = True
    #: the daemon thread genuinely serializes message processing
    defer_send_overhead = False
    #: the clone + daemon data connection stream the image out of band, so
    #: the MPI process's communication barely couples to the transfer
    transfer_coupling = 0.15

    def __init__(self, job: "MPIJob", rank: int) -> None:
        super().__init__(job, rank)
        #: the single daemon thread all messages serialize through
        self._daemon = Resource(self.sim, capacity=1, name=f"vdaemon:r{rank}")
        #: bytes of in-transit messages currently held in daemon memory
        self.log_buffer_bytes = 0.0

    def _scan_cost(self) -> float:
        # the daemon select()s over one socket per peer plus the servers
        return SELECT_SCAN_PER_SOCKET * max(1, len(self.conns) + 2)

    def send_overhead(self, nbytes: float) -> float:
        return UNIX_HOP_SECONDS + nbytes / COPY_BANDWIDTH + self._scan_cost()

    def recv_overhead(self, nbytes: float) -> float:
        return UNIX_HOP_SECONDS + nbytes / COPY_BANDWIDTH + self._scan_cost()

    def _host_cost(self, seconds: float):
        metrics = self.sim.metrics
        start = self.sim.now if metrics is not None else 0.0
        yield self._daemon.acquire()
        try:
            yield self.sim.timeout(seconds)
        finally:
            self._daemon.release()
            if metrics is not None:
                # total hop latency = queueing behind the single daemon
                # thread + the hop's own service time; the queueing share is
                # what blows up under load (the paper's Sec. 5.3 complaint)
                metrics.observe("channel.daemon_hop_seconds",
                                self.sim.now - start, rank=self.rank)
