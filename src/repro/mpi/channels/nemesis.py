"""The Nemesis channel: shared-memory intranode, GM internode.

Nemesis (Sec. 4.2) has a *single send queue*, which makes blocking sends for
a checkpoint wave simple: a special **stopper request** is enqueued after the
markers, preventing every subsequent send until it is dequeued.  In this
model that is the channel's *global* send gate — contrast with ft-sock's
per-destination gating.

Reception blocking is per-process despite the single receive queue: packets
arriving from a process whose marker has been seen are copied to a *delayed
receive queue* and handled after the checkpoint; on restart the delayed queue
is discarded (base-channel behaviour, verbatim from the paper).

Intranode the network layer already routes same-node connections over the
node's memory link at shared-memory latency, so the channel itself only
contributes its (tiny) per-message engine cost.
"""

from __future__ import annotations

from repro.mpi.channels.base import BaseChannel

__all__ = ["NemesisChannel"]

#: Nemesis' lock-free queue cost per message (charged as deferred delivery
#: latency on the send side; the receive side is folded into fabric latency)
ENGINE_OVERHEAD_SECONDS = 0.6e-6


class NemesisChannel(BaseChannel):
    """High-performance channel with single-queue send blocking."""

    channel_name = "nemesis"
    eager_connect = False

    def send_overhead(self, nbytes: float) -> float:
        return 2 * ENGINE_OVERHEAD_SECONDS  # enqueue + dequeue engine costs

    # --- stopper request ---------------------------------------------------
    def enqueue_stopper(self) -> None:
        """Block all subsequent sends (markers already queued pass through)."""
        self.global_send_gate.close()

    def dequeue_stopper(self) -> None:
        """Discard the stopper; queued sends resume."""
        self.global_send_gate.open()
