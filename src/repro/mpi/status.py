"""Receive status, mirroring ``MPI_Status``."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Status"]


@dataclass(frozen=True)
class Status:
    """Envelope information of a completed receive."""

    source: int
    tag: int
    nbytes: float
