"""MPI message matching: posted receives and the unexpected queue.

Matching follows the MPI rules: a receive matches the oldest unexpected
message with a compatible (source, tag); an arriving message matches the
oldest compatible posted receive.  Wildcards ``ANY_SOURCE``/``ANY_TAG`` are
supported.

The unexpected queue is part of a process's checkpointable state (in the real
systems it lives in the process image), so the engine supports snapshot and
restore.  Posted receives are *not* snapshotted: a receive pending at
checkpoint time is an incomplete operation and is re-posted by the restart
replay (see :mod:`repro.mpi.context`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.mpi.consts import ANY_SOURCE, ANY_TAG
from repro.mpi.message import AppPacket
from repro.mpi.status import Status

__all__ = ["MatchingEngine"]


class _PostedRecv:
    __slots__ = ("source", "tag", "event")

    def __init__(self, source: int, tag: int, event: "Event") -> None:
        self.source = source
        self.tag = tag
        self.event = event

    def matches(self, packet: AppPacket) -> bool:
        return (self.source in (ANY_SOURCE, packet.src)) and (
            self.tag in (ANY_TAG, packet.tag)
        )


class MatchingEngine:
    """Per-rank matching state."""

    def __init__(self, sim: "Simulator", rank: int) -> None:
        self.sim = sim
        self.rank = rank
        self.posted: Deque[_PostedRecv] = deque()
        self.unexpected: Deque[AppPacket] = deque()

    # ----------------------------------------------------------------- post
    def post_recv(self, source: int, tag: int) -> "Event":
        """Post a receive; the event fires with ``(data, Status)``."""
        event = self.sim.event(name=f"recv:r{self.rank}")
        for index, packet in enumerate(self.unexpected):
            if (source in (ANY_SOURCE, packet.src)) and (tag in (ANY_TAG, packet.tag)):
                del self.unexpected[index]
                event.succeed((packet.data, Status(packet.src, packet.tag, packet.nbytes)))
                return event
        self.posted.append(_PostedRecv(source, tag, event))
        return event

    def cancel(self, event: "Event") -> None:
        """Withdraw a posted receive (used on teardown)."""
        self.posted = deque(p for p in self.posted if p.event is not event)

    # -------------------------------------------------------------- delivery
    def deliver(self, packet: AppPacket) -> None:
        """Hand an arriving application packet to matching."""
        for index, posted in enumerate(self.posted):
            if posted.matches(packet):
                del self.posted[index]
                posted.event.succeed(
                    (packet.data, Status(packet.src, packet.tag, packet.nbytes))
                )
                return
        self.unexpected.append(packet)

    def probe(self, source: int, tag: int) -> Optional[Status]:
        """Non-blocking probe of the unexpected queue."""
        for packet in self.unexpected:
            if (source in (ANY_SOURCE, packet.src)) and (tag in (ANY_TAG, packet.tag)):
                return Status(packet.src, packet.tag, packet.nbytes)
        return None

    # --------------------------------------------------------------- failure
    def fail_all(self, error: BaseException) -> None:
        """Fail every posted receive (process/job teardown)."""
        posted, self.posted = self.posted, deque()
        for recv in posted:
            if not recv.event.triggered:
                recv.event.defused = True
                recv.event.fail(error)

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> List[AppPacket]:
        """Copy of the unexpected queue for inclusion in a checkpoint image."""
        return list(self.unexpected)

    def restore(self, packets: List[AppPacket]) -> None:
        """Reload the unexpected queue from a checkpoint image."""
        if self.posted:
            raise RuntimeError("restore() with receives posted")
        self.unexpected = deque(packets)

    @property
    def unexpected_bytes(self) -> float:
        return sum(p.nbytes for p in self.unexpected)
