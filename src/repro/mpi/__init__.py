"""A simulated MPI library: ranks, matching, collectives, channels, jobs.

Public surface:

* :class:`~repro.mpi.job.MPIJob` — build and run a parallel application.
* :class:`~repro.mpi.context.RankContext` — what application code programs
  against (send/recv/isend/irecv, collectives, compute, checkpointable
  state).
* :mod:`~repro.mpi.channels` — the three communication substrates from the
  paper (ft-sock, ch_v, Nemesis).
* :data:`~repro.mpi.consts.ANY_SOURCE` / :data:`~repro.mpi.consts.ANY_TAG`.
"""

from repro.mpi.consts import ANY_SOURCE, ANY_TAG, EAGER_THRESHOLD
from repro.mpi.context import RankContext, SKIPPED, Snapshot
from repro.mpi.job import MPIJob
from repro.mpi.matching import MatchingEngine
from repro.mpi.message import AppPacket, ControlPacket, MarkerPacket
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.mpi.channels import (
    BaseChannel,
    ChannelDownError,
    ChVChannel,
    FtSockChannel,
    NemesisChannel,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "AppPacket",
    "BaseChannel",
    "ChannelDownError",
    "ChVChannel",
    "ControlPacket",
    "EAGER_THRESHOLD",
    "FtSockChannel",
    "MPIJob",
    "MarkerPacket",
    "MatchingEngine",
    "NemesisChannel",
    "RankContext",
    "Request",
    "SKIPPED",
    "Snapshot",
    "Status",
]
