"""Collective operations built on point-to-point messages.

The algorithms mirror MPICH's defaults at these scales: binomial trees for
bcast/reduce, dissemination for barrier, ring for allgather and a pairwise
exchange for alltoall.  Message counts and sizes therefore scale like the
real library (O(p log p) markers-equivalent traffic for trees, O(p) ring
steps), which matters because checkpoint waves interact with bursts of
collective traffic (Sec. 5.2 of the paper).

Every constituent point-to-point call is an op of the calling context, so
collectives replay correctly across a rollback; reduction operators are only
applied to live data (replayed receives return SKIPPED and contribute
nothing — the reduced value those ops produced is already in the restored
application state).
"""

from __future__ import annotations

from typing import Any, Callable, List

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "alltoall",
    "scatter",
]

#: wire size of a zero-payload collective control message
_HEADER_BYTES = 16.0


def _is_skipped(value: Any) -> bool:
    from repro.mpi.context import SKIPPED

    return value is SKIPPED


def barrier(ctx: "RankContext"):
    """Dissemination barrier: ceil(log2 p) rounds of shifted exchanges."""
    tag = ctx._next_coll_tag()
    p = ctx.size
    if p == 1:
        return None
    # One tag is enough: each round's sender is distinct (rank-k mod p over
    # distinct powers of two), so (source, tag) disambiguates rounds.
    k = 1
    while k < p:
        dst = (ctx.rank + k) % p
        src = (ctx.rank - k) % p
        request = ctx.isend(dst, tag, None, _HEADER_BYTES)
        yield from ctx.recv(src, tag)
        yield from request.wait()
        k <<= 1
    return None


def bcast(ctx: "RankContext", value: Any, root: int, nbytes: float):
    """Binomial-tree broadcast; returns the broadcast value on every rank."""
    tag = ctx._next_coll_tag()
    p = ctx.size
    if p == 1:
        return value
    vrank = (ctx.rank - root) % p

    # Receive phase: non-roots wait for their parent in the binomial tree.
    mask = 1
    if vrank != 0:
        while mask < p:
            if vrank & mask:
                parent = ((vrank - mask) + root) % p
                value = yield from ctx.recv(parent, tag)
                break
            mask <<= 1
    else:
        while mask < p:
            mask <<= 1

    # Forward phase: relay to children.
    mask >>= 1
    while mask > 0:
        if vrank + mask < p and not (vrank & mask):
            child = (vrank + mask + root) % p
            yield from ctx.send(child, tag, value, nbytes)
        mask >>= 1
    return value


def reduce(ctx: "RankContext", value: Any, op: Callable[[Any, Any], Any],
           root: int, nbytes: float):
    """Binomial-tree reduction; the result is returned at ``root`` only."""
    tag = ctx._next_coll_tag()
    p = ctx.size
    if p == 1:
        return value
    vrank = (ctx.rank - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = ((vrank - mask) + root) % p
            yield from ctx.send(parent, tag, acc, nbytes)
            return None
        peer = vrank | mask
        if peer < p:
            data = yield from ctx.recv((peer + root) % p, tag)
            if not (_is_skipped(data) or _is_skipped(acc)):
                acc = op(acc, data)
            elif _is_skipped(acc) and not _is_skipped(data):
                acc = data
        mask <<= 1
    return acc


def allreduce(ctx: "RankContext", value: Any, op: Callable[[Any, Any], Any],
              nbytes: float):
    """Reduce to rank 0 followed by a broadcast (MPICH's small-comm default)."""
    reduced = yield from reduce(ctx, value, op, 0, nbytes)
    result = yield from bcast(ctx, reduced, 0, nbytes)
    return result


def gather(ctx: "RankContext", value: Any, root: int, nbytes: float):
    """Direct gather; returns the rank-ordered list at ``root``, None elsewhere."""
    tag = ctx._next_coll_tag()
    if ctx.rank != root:
        yield from ctx.send(root, tag, (ctx.rank, value), nbytes)
        return None
    collected: List[Any] = [None] * ctx.size
    collected[root] = value
    for _ in range(ctx.size - 1):
        data = yield from ctx.recv(tag=tag)
        if not _is_skipped(data):
            src, item = data
            collected[src] = item
    return collected


def allgather(ctx: "RankContext", value: Any, nbytes: float):
    """Ring allgather: p-1 steps, each forwarding one contribution."""
    tag = ctx._next_coll_tag()
    p = ctx.size
    collected: List[Any] = [None] * p
    collected[ctx.rank] = value
    right = (ctx.rank + 1) % p
    left = (ctx.rank - 1) % p
    carry = (ctx.rank, value)
    for _step in range(p - 1):
        request = ctx.isend(right, tag, carry, nbytes)
        data = yield from ctx.recv(left, tag)
        yield from request.wait()
        if _is_skipped(data):
            carry = data
        else:
            src, item = data
            collected[src] = item
            carry = data
    return collected


def alltoall(ctx: "RankContext", values: List[Any], nbytes_each: float):
    """Pairwise-exchange alltoall; ``values[i]`` goes to rank ``i``."""
    tag = ctx._next_coll_tag()
    p = ctx.size
    if values is not None and len(values) != p:
        raise ValueError(f"alltoall needs {p} values, got {len(values)}")
    received: List[Any] = [None] * p
    received[ctx.rank] = values[ctx.rank] if values is not None else None
    for step in range(1, p):
        dst = (ctx.rank + step) % p
        src = (ctx.rank - step) % p
        payload = values[dst] if values is not None else None
        request = ctx.isend(dst, tag, payload, nbytes_each)
        data = yield from ctx.recv(src, tag)
        yield from request.wait()
        if not _is_skipped(data):
            received[src] = data
    return received


def scatter(ctx: "RankContext", values: List[Any], root: int, nbytes_each: float):
    """Root sends the i-th value to rank i; returns the local piece."""
    tag = ctx._next_coll_tag()
    if ctx.rank == root:
        if values is None or len(values) != ctx.size:
            raise ValueError("scatter root needs one value per rank")
        for dst in range(ctx.size):
            if dst != root:
                yield from ctx.send(dst, tag, values[dst], nbytes_each)
        return values[root]
    piece = yield from ctx.recv(root, tag)
    return piece
