"""The MPI job: ranks, channels, lazy connections, and lifecycle.

An :class:`MPIJob` binds one application function to a set of endpoints on a
network, one :class:`~repro.mpi.context.RankContext` per rank.  Connections
between ranks are established on the first communication between them
(MPICH2 semantics); channels with ``eager_connect`` (MPICH-1/ch_v) build the
full mesh during :meth:`start`.

The job is the unit of failure handling: a node death surfaces as socket
closures, which the channels report through :meth:`notify_socket_closed`; the
attached failure listener (the dispatcher or FTPM of :mod:`repro.runtime`)
then kills the job and drives recovery, recreating a new job from the last
completed checkpoint wave's snapshots.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.mpi.context import RankContext, Snapshot
from repro.mpi.message import Packet
from repro.net.topology import BaseNetwork, Endpoint
from repro.sim.process import Interrupt

__all__ = ["MPIJob"]

#: TCP-style connection establishment: one round trip before data flows
_HANDSHAKE_RTTS = 2.0


class MPIJob:
    """One parallel application run."""

    def __init__(
        self,
        sim: "Simulator",
        net: BaseNetwork,
        endpoints: Sequence[Endpoint],
        app_factory: Callable[[RankContext], Any],
        channel_cls: type,
        name: str = "job",
        image_bytes: float = 0.0,
        inherited_links: Optional[Dict[Tuple[int, int], Tuple[Any, Any]]] = None,
    ) -> None:
        self.sim = sim
        self.net = net
        self.endpoints = list(endpoints)
        self.size = len(self.endpoints)
        if self.size < 1:
            raise ValueError("a job needs at least one rank")
        self.app_factory = app_factory
        self.name = name
        # Per-simulator unique id: names may repeat across incarnations and
        # tests, but trace records (and the repro.verify monitors keying on
        # them) need an unambiguous, deterministic job identity.
        uid = getattr(sim, "_job_counter", 0) + 1
        sim._job_counter = uid
        self.uid = uid
        self.channels = [channel_cls(self, rank) for rank in range(self.size)]
        per_rank = image_bytes if callable(image_bytes) else (lambda _r: image_bytes)
        self.contexts = [
            RankContext(self, rank, self.size, self.channels[rank],
                        image_bytes=float(per_rank(rank)))
            for rank in range(self.size)
        ]
        self.app_processes: List["Process"] = []
        self.completed = sim.event(name=f"{name}:completed")
        self.failure_listener: Optional[Callable[[int, Optional[int]], None]] = None
        self._links: Dict[Tuple[int, int], "Event"] = {}
        self._finished = 0
        self._started = False
        self.killed = False
        #: survivor connections harvested from the previous incarnation
        #: (ULFM-style recovery); adopted in start()
        self._inherited_links = dict(inherited_links or {})

    # ------------------------------------------------------------- lifecycle
    def start(
        self,
        snapshots: Optional[Sequence[Optional[Snapshot]]] = None,
        start_delays: Optional[Sequence[float]] = None,
    ) -> None:
        """Spawn every rank's application process.

        ``snapshots`` restores each rank from a checkpoint before execution
        (restart path).  ``start_delays`` models launch skew (ssh spawning).
        """
        if self._started:
            raise RuntimeError(f"job {self.name} already started")
        self._started = True
        if snapshots is not None:
            for rank, snapshot in enumerate(snapshots):
                if snapshot is not None:
                    self.contexts[rank].restore_snapshot(snapshot)
        if self._inherited_links:
            self._adopt_links()
        if self.channels and self.channels[0].eager_connect:
            self.sim.process(self._mesh_connect(), name=f"{self.name}:mesh")
        for rank in range(self.size):
            delay = 0.0 if start_delays is None else start_delays[rank]
            process = self.sim.process(
                self._app_wrapper(rank, delay), name=f"{self.name}:r{rank}"
            )
            self.app_processes.append(process)

    def _mesh_connect(self):
        for a in range(self.size):
            for b in range(a + 1, self.size):
                if self.killed:
                    return
                try:
                    yield from self.establish(a, b)
                except ConnectionError:
                    # The job died under the mesh builder (e.g. a failure in
                    # the very first instants of the run).  establish() has
                    # already failed the link event to wake queued ranks;
                    # the teardown/recovery machinery owns the rest.
                    if self.killed:
                        return
                    # A refused connect is itself failure detection: one
                    # endpoint's machine is gone but the job outlives it
                    # (survivor policies agree on membership before the
                    # kill).  Report the dead side and park the builder.
                    dead = [r for r in (a, b)
                            if not self.endpoints[r].node.alive]
                    if not dead:
                        raise
                    for r in dead:
                        self.notify_socket_closed(r, None)
                    return

    def _app_wrapper(self, rank: int, delay: float):
        if delay > 0.0:
            yield self.sim.timeout(delay)
        context = self.contexts[rank]
        try:
            result = yield from self.app_factory(context)
        except Interrupt:
            raise  # killed: let the process machinery absorb it
        except ConnectionError:
            # A peer vanished mid-operation; report and park this rank until
            # the runtime tears the job down.
            self.notify_socket_closed(rank, None)
            return None
        self._finished += 1
        self.sim.trace.record(self.sim.now, "app.rank_done", job=self.name, rank=rank)
        if self._finished == self.size and not self.completed.triggered:
            self.completed.succeed(self.sim.now)
        return result

    def kill(self) -> None:
        """Tear everything down: channels, connections, rank processes."""
        if self.killed:
            return
        self.killed = True
        if self.sim.trace.wants("job.killed"):
            self.sim.trace.record(self.sim.now, "job.killed",
                                  job=self.uid, name=self.name)
        for channel in self.channels:
            channel.shutdown()
        for process in self.app_processes:
            process.interrupt("job killed")

    @property
    def running(self) -> bool:
        return self._started and not self.killed and not self.completed.triggered

    # ------------------------------------------------------------ connections
    def _adopt_links(self) -> None:
        """Attach connections harvested from the previous incarnation.

        Survivor pairs skip the TCP handshake entirely: the ends are attached
        to the fresh channels and the link event is pre-succeeded, so both
        :meth:`establish` and the eager mesh builder see the pair as already
        connected.  Links whose connection broke since the harvest (a
        cascading node kill) are silently skipped — those pairs reconnect
        lazily like any cold pair.
        """
        for key in sorted(self._inherited_links):
            end_lo, end_hi = self._inherited_links[key]
            if end_lo.connection.broken:
                continue
            lo, hi = key
            if lo >= self.size or hi >= self.size:
                continue
            self.channels[lo].attach(hi, end_lo)
            self.channels[hi].attach(lo, end_hi)
            ready = self.sim.event(name=f"{self.name}:link{key}")
            ready.succeed()
            self._links[key] = ready
        self._inherited_links = {}

    def harvest_links(self, survivors: Sequence[int]
                      ) -> Dict[Tuple[int, int], Tuple[Any, Any]]:
        """Detach healthy survivor<->survivor connections from this job.

        Popping the ends out of the channels' connection tables means the
        subsequent :meth:`kill` (whose shutdown breaks every *registered*
        connection) leaves them untouched; the receiver processes are still
        interrupted, so nothing reads from the harvested ends until the next
        incarnation adopts them via ``inherited_links``.
        """
        alive = set(survivors)
        links: Dict[Tuple[int, int], Tuple[Any, Any]] = {}
        for lo, hi in sorted(self._links):
            if lo not in alive or hi not in alive:
                continue
            end_lo = self.channels[lo].conns.pop(hi, None)
            end_hi = self.channels[hi].conns.pop(lo, None)
            if end_lo is None or end_hi is None or end_lo.connection.broken:
                continue
            links[(lo, hi)] = (end_lo, end_hi)
        return links

    def establish(self, a: int, b: int):
        """Generator: ensure ranks ``a`` and ``b`` are connected; returns
        rank ``a``'s connection end."""
        key = (a, b) if a < b else (b, a)
        ready = self._links.get(key)
        if ready is None:
            ready = self.sim.event(name=f"{self.name}:link{key}")
            self._links[key] = ready
            lo, hi = key
            try:
                connection = self.net.connect(self.endpoints[lo], self.endpoints[hi])
                yield self.sim.timeout(_HANDSHAKE_RTTS * connection.end_a.latency)
                if self.killed:
                    connection.break_()
                    raise ConnectionResetError(
                        f"job {self.name} killed during connect"
                    )
            except BaseException as error:
                # Wake every rank queued behind this handshake; otherwise a
                # refused connection deadlocks them forever.
                del self._links[key]
                if not ready.triggered:
                    ready.defused = True
                    if isinstance(error, Exception):
                        ready.fail(error)
                    else:
                        ready.fail(ConnectionResetError("connect aborted"))
                raise
            self.channels[lo].attach(hi, connection.end_a)
            self.channels[hi].attach(lo, connection.end_b)
            ready.succeed()
        elif not ready.processed:
            yield ready
        end = self.channels[a].conns.get(b)
        if end is None:
            raise ConnectionResetError(f"link {a}<->{b} vanished during establish")
        return end

    # --------------------------------------------------------------- failure
    def notify_socket_closed(self, rank: int, peer: Optional[int]) -> None:
        """A channel observed an unexpected socket closure."""
        self.sim.trace.record(
            self.sim.now, "job.socket_closed", job=self.name, rank=rank, peer=peer
        )
        if self.failure_listener is not None:
            self.failure_listener(rank, peer)

    def on_unclaimed_control(self, rank: int, packet: Packet) -> None:
        """Control packet arriving with no protocol attached — a stale wave
        message after a protocol detach; dropped, like a packet for a closed
        port."""
        self.sim.trace.count("job.unclaimed_control")
