"""The shipped invariant monitors.

Provenance of each invariant:

* **monotone-clock** — the deterministic total event order of
  :class:`repro.sim.engine.Simulator` (DESIGN.md §7): heap pops are ordered
  by ``(time, priority, seq)`` and the clock never runs backwards.
* **fifo-delivery** — Chandy & Lamport's channel assumption ("Distributed
  snapshots", 1985) that both protocols inherit: every connection delivers
  messages in send order, at the pipe level and per (receiver, source) MPI
  channel.
* **vcl-no-orphan** — the no-orphan-message property of the Chandy–Lamport
  cut (paper Sec. 3, Fig. 1): a message received before the receiver's wave-w
  snapshot must have been sent before the sender's wave-w snapshot.
* **vcl-logging** — channel-state completeness (paper Sec. 3/4.1): every
  in-transit message crossing the cut (delivered after the receiver's
  snapshot, before the sender's marker) is copied into the daemon log and
  replayed exactly once per restart from that wave.
* **pcl-flush** — the channel-flush property of the blocking protocol
  (paper Sec. 3, Fig. 2): after the marker, no application payload crosses
  a channel until the local checkpoint completes — sends are gated (the
  Nemesis stopper) and receptions from marked sources are delayed.
* **dcl-network-empty** — the message-drain protocol's defining property
  (:mod:`repro.ft.dcl`): a draining rank commits no application send, and
  when a rank forks its wave-*w* image no pre-wave-*w* application message
  is still in flight anywhere — counter quiescence really emptied the
  network, so the images alone form a consistent global state.
* **dcl-drain-liveness** — counter quiescence terminates: every Dcl wave
  reaches ``ft.drain_quiesced`` within :data:`repro.ft.dcl.DRAIN_BUDGET`
  of its start (and before any rank forks or the wave commits); a drain
  that never converges is a stalled wave, not a slow one.
* **fd-budget** — the MPICH-V dispatcher's scalability wall (paper
  Sec. 5.4): 3 sockets per process multiplexed with ``select()``, whose fd
  set caps at 1024.
* **engine-liveness** — the monitor-side mirror of the engine's
  :class:`repro.sim.engine.Watchdog`: the simulation must keep advancing
  its clock; a zero-time event cascade past the watchdog's budget is a
  livelock (the failure mode behind the historical Pcl
  ``procs_per_node=2`` hang).
* **wave-liveness** — every checkpoint wave terminates: each
  ``ft.wave_started`` record must be matched by ``ft.wave_completed`` or,
  when the job dies or completes mid-wave, ``ft.wave_aborted``.  A second
  wave starting while one is open, or a dangling wave at end of run, means
  the driver's commit plumbing wedged.
* **membership-agreement** — the survivor-recovery agreement contract
  (:mod:`repro.ft.membership`, docs/RECOVERY.md): recovery acts on an
  *agreed* failed set, never a partial view — every commit matches the
  ballot's proposed failed set, no failed rank commits, and by the time
  ``ft.recovery_begin`` fires every survivor of that ballot has committed.
* **spare-consistency** — the spare-promotion contract
  (:mod:`repro.ft.recovery`, docs/RECOVERY.md): only ranks of the agreed
  failed set are promoted onto spares, and a promoted spare restores the
  recovery's newest committed wave (or the wave the restore legitimately
  fell back to), inside an open recovery — never a stale or future image.
* **storage-durability** — the replicated checkpoint store's contract
  (:mod:`repro.ft.server`): a committed wave is restorable — every rank has
  at least one sealed, checksum-intact replica on a live server when the
  commit lands and, with replication ≥ 2, still after any single server
  death; a successful fetch returns the checksum that was sealed, never a
  corrupted or dead-server copy; a run only declares
  ``storage-unrecoverable`` when no committed wave is fully covered; a
  restart restores a wave some server actually committed.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.ft.dcl import DRAIN_BUDGET
from repro.sim.engine import DEFAULT_MAX_SAME_TIME_EVENTS
from repro.sim.trace import TraceRecord
from repro.verify.base import Monitor

__all__ = [
    "MonotoneClockMonitor",
    "FifoDeliveryMonitor",
    "VclNoOrphanMonitor",
    "VclLoggingMonitor",
    "PclFlushMonitor",
    "DclNetworkEmptyMonitor",
    "DclDrainLivenessMonitor",
    "FdBudgetMonitor",
    "LivelockMonitor",
    "WaveLivenessMonitor",
    "StorageDurabilityMonitor",
    "MembershipAgreementMonitor",
    "SpareConsistencyMonitor",
    "all_monitors",
]

#: sentinel ranks (the Vcl scheduler) that never appear in logging windows
_PSEUDO_RANK_CEILING = 0


def _is_pseudo(rank: int) -> bool:
    return rank < _PSEUDO_RANK_CEILING


class MonotoneClockMonitor(Monitor):
    """Simulation time is monotone; event pops follow the total order.

    Events scheduled *while processing* a same-timestamp event legally pop
    after it despite a more urgent (priority, seq) key, so the checkable
    property is: within one timestamp, a pop must never be preceded by the
    pop of a *later-pushed* (higher seq) event of equal or lower urgency —
    an earlier-pushed event at equal-or-higher urgency can never still be
    pending when a dominated one pops.
    """

    name = "monotone-clock"
    categories = None  # every record carries a timestamp to check
    wants_steps = True

    def __init__(self) -> None:
        super().__init__()
        self._time = -1.0
        # Highest seq popped at the current timestamp, split by the engine's
        # two priority levels (URGENT=0, NORMAL=1).  Scalars, not a dict:
        # this method runs once per heap pop, millions of times per run.
        self._max_urgent = -1
        self._max_normal = -1
        self._last_record_time = -1.0

    def on_step(self, time: float, priority: int, seq: int) -> None:
        self.checked += 1
        if time != self._time:
            if time < self._time:
                self.violation(
                    time,
                    f"event pop at t={time} after a pop at t={self._time} — "
                    "the simulation clock ran backwards",
                )
            self._time = time
            if priority:
                self._max_normal = seq
                self._max_urgent = -1
            else:
                self._max_urgent = seq
                self._max_normal = -1
            return
        # A pop is dominated when an event popped earlier at this timestamp
        # had equal-or-lower urgency (priority >= ours) yet a higher seq
        # (pushed later): we were already pending and should have won.
        if priority:
            if self._max_normal > seq:
                self.violation(
                    time,
                    f"event (priority={priority}, seq={seq}) popped after "
                    f"(priority=1, seq={self._max_normal}) at the same "
                    f"t={time} although it was pushed earlier at equal or "
                    "higher urgency — deterministic total order broken",
                )
            else:
                self._max_normal = seq
        else:
            worst = self._max_normal if self._max_normal > self._max_urgent \
                else self._max_urgent
            if worst > seq:
                self.violation(
                    time,
                    f"event (priority={priority}, seq={seq}) popped after "
                    f"(seq={worst}) at the same t={time} although it was "
                    "pushed earlier at equal or higher urgency — "
                    "deterministic total order broken",
                )
            if seq > self._max_urgent:
                self._max_urgent = seq

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        if record.time < self._last_record_time - 1e-12:
            self.violation(
                record.time,
                f"trace record {record.category!r} at t={record.time} emitted "
                f"after a record at t={self._last_record_time} — simulation "
                "clock ran backwards",
            )
        else:
            self._last_record_time = record.time


class FifoDeliveryMonitor(Monitor):
    """Connections deliver FIFO: per pipe and per (receiver, source)."""

    name = "fifo-delivery"
    categories = ("net.sent", "net.delivered", "mpi.recv", "mpi.deliver")

    def __init__(self) -> None:
        super().__init__()
        #: pipe name -> (highest id accepted for send, highest id delivered)
        self._pipes: Dict[str, Tuple[int, int]] = {}
        #: (job, rank, src) -> last seq seen arriving at the channel
        self._arrivals: Dict[Tuple[str, int, int], int] = {}
        #: (job, rank, src) -> last seq handed to the matching engine
        self._deliveries: Dict[Tuple[str, int, int], int] = {}

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        category = record.category
        fields = dict(record.fields)  # one C-level build beats repeated get()
        if category == "net.sent":
            pipe = fields["pipe"]
            sent, delivered = self._pipes.get(pipe, (0, 0))
            self._pipes[pipe] = (max(sent, fields.get("msg", 0)), delivered)
        elif category == "net.delivered":
            pipe = fields["pipe"]
            msg = fields.get("msg", 0)
            sent, delivered = self._pipes.get(pipe, (0, 0))
            if msg <= delivered:
                self.violation(
                    record.time,
                    f"pipe {pipe}: message #{msg} delivered after #{delivered} "
                    "— out-of-order (or duplicate) delivery on a FIFO pipe",
                )
            if msg > sent:
                self.violation(
                    record.time,
                    f"pipe {pipe}: message #{msg} delivered but only #{sent} "
                    "was ever sent",
                )
            self._pipes[pipe] = (sent, max(delivered, msg))
        elif category == "mpi.recv":
            key = (fields.get("job"), fields.get("rank"), fields.get("src"))
            seq = fields.get("seq", 0)
            last = self._arrivals.get(key, 0)
            if seq <= last:
                self.violation(
                    record.time,
                    f"rank {key[1]} received packet #{seq} from rank {key[2]} "
                    f"after #{last} (job {key[0]}) — per-connection FIFO "
                    "arrival order broken",
                )
            self._arrivals[key] = max(last, seq)
        else:  # mpi.deliver
            key = (fields.get("job"), fields.get("rank"), fields.get("src"))
            seq = fields.get("seq", 0)
            last = self._deliveries.get(key, 0)
            if seq <= last:
                self.violation(
                    record.time,
                    f"rank {key[1]} delivered packet #{seq} from rank {key[2]} "
                    f"to matching after #{last} (job {key[0]}) — per-channel "
                    "FIFO delivery order broken (delayed queue released out "
                    "of order?)",
                )
            self._deliveries[key] = max(last, seq)


class VclNoOrphanMonitor(Monitor):
    """No orphan messages in a Vcl cut.

    A message delivered to rank *r* while *r*'s latest Vcl snapshot is wave
    ``w_r`` must not have been sent by a rank whose snapshot wave at send
    time exceeded ``w_r``: that message would be *received* in the global
    checkpoint without its *send* being part of it (and it is not channel
    state — it was sent after the sender's checkpoint).  FIFO plus
    marker-before-payload makes this impossible in a correct run.
    """

    name = "vcl-no-orphan"
    categories = ("mpi.send", "mpi.deliver", "ft.local_checkpoint",
                  "ft.restarted", "job.killed")

    def __init__(self) -> None:
        super().__init__()
        #: (job, src, seq) -> sender's snapshot wave when the send committed
        self._sends: Dict[Tuple[str, int, int], int] = {}
        #: rank -> latest Vcl snapshot wave
        self._rank_wave: Dict[int, int] = {}

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        category = record.category
        if category == "mpi.send":
            if record.get("protocol") != "vcl":
                return  # waves of other protocols are not Chandy–Lamport cuts
            key = (record.get("job"), record.get("src"), record.get("seq"))
            self._sends[key] = record.get("wave", 0)
        elif category == "mpi.deliver":
            key = (record.get("job"), record.get("src"), record.get("seq"))
            send_wave = self._sends.pop(key, 0)
            if not send_wave:
                return
            rank = record.get("rank")
            rank_wave = self._rank_wave.get(rank, 0)
            if send_wave > rank_wave:
                self.violation(
                    record.time,
                    f"orphan message: rank {key[1]} sent packet #{key[2]} "
                    f"after its wave-{send_wave} snapshot, but rank {rank} "
                    f"received it before its own wave-{send_wave} snapshot "
                    f"(receiver is still at wave {rank_wave}) — the cut "
                    "records a receive without its send",
                )
        elif category == "ft.local_checkpoint":
            if record.get("protocol") == "vcl":
                rank = record.get("rank")
                self._rank_wave[rank] = max(
                    self._rank_wave.get(rank, 0), record.get("wave", 0)
                )
        elif category == "ft.restarted":
            # Roll every mirror back to the restart wave: the new
            # incarnation's endpoints restart their wave counters from it.
            wave = record.get("wave", 0)
            for rank in self._rank_wave:
                self._rank_wave[rank] = wave
            self._sends.clear()
        else:  # job.killed — in-flight sends of that job will never deliver
            job = record.get("job")
            for key in [k for k in self._sends if k[0] == job]:
                del self._sends[key]


class VclLoggingMonitor(Monitor):
    """Vcl channel-state completeness: log in-transit, replay exactly once.

    While rank *r* is logging for wave *w* (between its snapshot and the
    marker of peer *p* on that channel), every application packet from *p*
    delivered at *r* crosses the cut and must appear in the daemon log.
    After a rollback to wave *w*, the replayed messages must be exactly the
    wave-*w* log — nothing lost, nothing duplicated, nothing invented.
    """

    name = "vcl-logging"
    categories = ("ft.logging_open", "ft.marker_recv", "ft.logged",
                  "mpi.deliver", "ft.replayed", "ft.restarted",
                  "ft.failure_detected")

    def __init__(self) -> None:
        super().__init__()
        #: rank -> set of peers whose marker is still outstanding
        self._window: Dict[int, Set[int]] = {}
        #: rank -> wave the open window belongs to
        self._window_wave: Dict[int, int] = {}
        #: (wave, rank) -> {(src, seq), ...} logged by the daemon
        self._logged: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
        #: active replay session: wave and per-rank replayed sets
        self._replay_wave: Optional[int] = None
        self._replayed: Dict[int, Set[Tuple[int, int]]] = {}

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        category = record.category
        if category == "ft.logging_open":
            rank = record.get("rank")
            self._window[rank] = set(record.get("peers", ()))
            self._window_wave[rank] = record.get("wave", 0)
        elif category == "ft.marker_recv":
            if record.get("protocol") == "vcl":
                src = record.get("src")
                if not _is_pseudo(src):
                    self._window.get(record.get("rank"), set()).discard(src)
        elif category == "ft.logged":
            rank = record.get("rank")
            src = record.get("src")
            wave = record.get("wave", 0)
            if src not in self._window.get(rank, ()):
                self.violation(
                    record.time,
                    f"rank {rank} logged packet #{record.get('seq')} from "
                    f"rank {src} outside its wave-{wave} logging window — "
                    "over-logging would replay a message whose send is "
                    "already in the cut",
                )
            self._logged.setdefault((wave, rank), set()).add(
                (src, record.get("seq"))
            )
        elif category == "mpi.deliver":
            rank = record.get("rank")
            src = record.get("src")
            window = self._window.get(rank)
            if window and src in window:
                wave = self._window_wave.get(rank, 0)
                entry = (src, record.get("seq"))
                if entry not in self._logged.get((wave, rank), ()):
                    self.violation(
                        record.time,
                        f"in-transit message crossing the wave-{wave} cut was "
                        f"not logged: rank {rank} delivered packet "
                        f"#{record.get('seq')} from rank {src} after its "
                        "snapshot and before that channel's marker, but the "
                        "daemon log has no copy — the channel state is "
                        "incomplete and a rollback would lose this message",
                    )
        elif category == "ft.replayed":
            rank = record.get("rank")
            wave = record.get("wave", 0)
            entry = (record.get("src"), record.get("seq"))
            logged = self._logged.get((wave, rank), set())
            if self._replay_wave != wave:
                self.violation(
                    record.time,
                    f"rank {rank} replayed a wave-{wave} message but the "
                    f"restart rolled back to wave {self._replay_wave}",
                )
            if entry not in logged:
                self.violation(
                    record.time,
                    f"rank {rank} replayed packet #{entry[1]} from rank "
                    f"{entry[0]} that was never logged for wave {wave}",
                )
            replayed = self._replayed.setdefault(rank, set())
            if entry in replayed:
                self.violation(
                    record.time,
                    f"rank {rank} replayed packet #{entry[1]} from rank "
                    f"{entry[0]} twice in one restart",
                )
            replayed.add(entry)
        elif category == "ft.restarted":
            self._close_replay_session(record.time)
            wave = record.get("wave", 0)
            self._replay_wave = wave
            self._replayed = {}
            # windows of the dead incarnation are gone, and so are the logs
            # of every wave past the rollback point: those waves never
            # committed, and the new incarnation's packet seq counters
            # restart, so their (src, seq) entries must not linger
            self._window.clear()
            self._window_wave.clear()
            self._logged = {
                key: entries for key, entries in self._logged.items()
                if key[0] <= wave
            }
        else:  # ft.failure_detected: logging windows die with the job
            self._window.clear()
            self._window_wave.clear()

    def _close_replay_session(self, time: float) -> None:
        if self._replay_wave is None:
            return
        wave = self._replay_wave
        for (logged_wave, rank), entries in self._logged.items():
            if logged_wave != wave:
                continue
            missing = entries - self._replayed.get(rank, set())
            if missing:
                self.violation(
                    time,
                    f"rank {rank} never replayed {len(missing)} logged "
                    f"wave-{wave} message(s) after the rollback to wave "
                    f"{wave}: {sorted(missing)[:5]} — logged channel state "
                    "was lost",
                )
        self._replay_wave = None
        self._replayed = {}

    def finish(self) -> None:
        self._close_replay_session(-1.0)


class PclFlushMonitor(Monitor):
    """Pcl channel flush: nothing crosses between marker and checkpoint.

    Send side: a rank in the ``checkpointing`` state must not commit an
    application payload to the wire (its gates are closed / the Nemesis
    stopper is queued).  Receive side: once rank *r* holds the marker of
    peer *p*, application packets from *p* must not reach the matching
    engine until *r*'s local checkpoint completes (the delayed receive
    queue).
    """

    name = "pcl-flush"
    categories = ("mpi.send", "mpi.deliver", "ft.enter_wave", "ft.resume",
                  "ft.marker_recv", "ft.restarted", "ft.failure_detected",
                  "job.killed")

    def __init__(self) -> None:
        super().__init__()
        #: ranks currently between wave entry and post-checkpoint resume
        self._checkpointing: Set[int] = set()
        #: rank -> wave being checkpointed
        self._wave: Dict[int, int] = {}
        #: rank -> sources whose marker arrived (receptions must be delayed)
        self._frozen: Dict[int, Set[int]] = {}

    def _reset(self) -> None:
        self._checkpointing.clear()
        self._wave.clear()
        self._frozen.clear()

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        category = record.category
        if category == "mpi.send":
            src = record.get("src")
            if src in self._checkpointing:
                self.violation(
                    record.time,
                    f"rank {src} put application packet #{record.get('seq')} "
                    f"({record.get('nbytes', 0):.0f}B to rank "
                    f"{record.get('dst')}) on the wire while checkpointing "
                    f"wave {self._wave.get(src)} — payload crossed the "
                    "channel between the marker and the local checkpoint "
                    "(send gates / Nemesis stopper bypassed)",
                )
        elif category == "mpi.deliver":
            rank = record.get("rank")
            src = record.get("src")
            if rank in self._checkpointing and src in self._frozen.get(rank, ()):
                self.violation(
                    record.time,
                    f"rank {rank} delivered packet #{record.get('seq')} from "
                    f"rank {src} to matching while checkpointing wave "
                    f"{self._wave.get(rank)} although rank {src}'s marker "
                    "had arrived — the reception must sit in the delayed "
                    "queue until the local checkpoint completes",
                )
        elif category == "ft.enter_wave":
            rank = record.get("rank")
            self._checkpointing.add(rank)
            self._wave[rank] = record.get("wave", 0)
            self._frozen[rank] = set()
        elif category == "ft.resume":
            rank = record.get("rank")
            self._checkpointing.discard(rank)
            self._frozen.pop(rank, None)
        elif category == "ft.marker_recv":
            if record.get("protocol") == "pcl":
                rank = record.get("rank")
                if rank in self._checkpointing and \
                        record.get("wave", 0) == self._wave.get(rank):
                    self._frozen.setdefault(rank, set()).add(record.get("src"))
        else:  # ft.restarted / ft.failure_detected / job.killed
            self._reset()


class DclNetworkEmptyMonitor(Monitor):
    """Dcl network-empty-at-fork: the drain really drained.

    Send side: a rank in the ``draining`` state must not commit an
    application payload to the wire (its gates are closed — Pcl's very
    machinery, so a bypass is the same bug class as a flush violation).
    Fork side: when a rank takes its wave-*w* Dcl checkpoint, no
    application message committed before the wave (send wave < *w*) may
    still be undelivered anywhere — otherwise counter quiescence was
    declared with bytes in flight and the images do not form a consistent
    cut.  Post-resume sends of faster ranks carry wave *w* and are legal.
    """

    name = "dcl-network-empty"
    categories = ("mpi.send", "mpi.deliver", "ft.local_checkpoint",
                  "ft.restarted", "ft.failure_detected", "job.killed")

    def __init__(self) -> None:
        super().__init__()
        #: (job, src, seq) -> sender's wave when the dcl send committed
        self._outstanding: Dict[Tuple[str, int, int], int] = {}

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        category = record.category
        if category == "mpi.send":
            if record.get("protocol") != "dcl":
                return
            if record.get("state") == "draining":
                self.violation(
                    record.time,
                    f"rank {record.get('src')} committed application packet "
                    f"#{record.get('seq')} ({record.get('nbytes', 0):.0f}B "
                    f"to rank {record.get('dst')}) while draining wave "
                    f"{record.get('wave')} — the drain request froze this "
                    "rank's sends (send gates / Nemesis stopper bypassed)",
                )
            key = (record.get("job"), record.get("src"), record.get("seq"))
            self._outstanding[key] = record.get("wave", 0)
        elif category == "mpi.deliver":
            self._outstanding.pop(
                (record.get("job"), record.get("src"), record.get("seq")),
                None)
        elif category == "ft.local_checkpoint":
            if record.get("protocol") != "dcl":
                return
            wave = record.get("wave", 0)
            stale = [(key, w) for key, w in self._outstanding.items()
                     if w < wave]
            if stale:
                (job, src, seq), send_wave = stale[0]
                self.violation(
                    record.time,
                    f"rank {record.get('rank')} forked its wave-{wave} image "
                    f"but packet #{seq} from rank {src} (sent at wave "
                    f"{send_wave}, job {job}) is still in flight — counter "
                    f"quiescence declared the network empty with "
                    f"{len(stale)} undelivered pre-wave message(s)",
                )
        elif category == "job.killed":
            job = record.get("job")
            for key in [k for k in self._outstanding if k[0] == job]:
                del self._outstanding[key]
        else:  # ft.restarted / ft.failure_detected
            self._outstanding.clear()


class DclDrainLivenessMonitor(Monitor):
    """Dcl drains terminate: quiescence lands within the watchdog budget.

    Shares :data:`repro.ft.dcl.DRAIN_BUDGET` with the protocol (the same
    pattern as :class:`LivelockMonitor` and the engine watchdog) so monitor
    and implementation agree on what counts as a stalled drain.  A Dcl wave
    must reach ``ft.drain_quiesced`` within the budget of its
    ``ft.wave_started``, before any rank forks its image and before the
    wave commits; a wave that ends the run still draining never converged.
    """

    name = "dcl-drain-liveness"
    categories = ("ft.wave_started", "ft.drain_quiesced",
                  "ft.local_checkpoint", "ft.wave_completed",
                  "ft.wave_aborted")

    def __init__(self, budget: Optional[float] = None) -> None:
        super().__init__()
        self.budget = budget if budget is not None else DRAIN_BUDGET
        #: (wave, start time) of the open dcl wave, if any
        self._open: Optional[Tuple[int, float]] = None
        self._quiesced = False

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        category = record.category
        if category != "ft.drain_quiesced" and record.get("protocol") != "dcl":
            return
        wave = record.get("wave", 0)
        if category == "ft.wave_started":
            self._open = (wave, record.time)
            self._quiesced = False
        elif category == "ft.drain_quiesced":
            if self._open is None or self._open[0] != wave:
                self.violation(
                    record.time,
                    f"drain quiescence reported for wave {wave} but the open "
                    f"dcl wave is "
                    f"{self._open[0] if self._open else 'none'} — quiescence "
                    "without a drain in progress",
                )
                return
            elapsed = record.time - self._open[1]
            if elapsed > self.budget:
                self.violation(
                    record.time,
                    f"wave {wave} needed {elapsed:.3f}s to reach counter "
                    f"quiescence, over the drain budget of {self.budget}s — "
                    "the drain stalled (a counter report lost, or sends not "
                    "actually frozen)",
                )
            self._quiesced = True
        elif category == "ft.local_checkpoint":
            if (self._open is not None and self._open[0] == wave
                    and not self._quiesced):
                self.violation(
                    record.time,
                    f"rank {record.get('rank')} forked its wave-{wave} image "
                    "before the initiator declared counter quiescence — the "
                    "checkpoint order outran the drain",
                )
        elif category == "ft.wave_completed":
            if self._open is not None and self._open[0] == wave \
                    and not self._quiesced:
                self.violation(
                    record.time,
                    f"dcl wave {wave} committed without ever reaching "
                    "counter quiescence",
                )
            self._open = None
        else:  # ft.wave_aborted — a mid-drain death legally closes the wave
            self._open = None

    def finish(self) -> None:
        if self._open is not None and not self._quiesced:
            wave, started_at = self._open
            self.violation(
                started_at,
                f"dcl wave {wave} started at t={started_at} and the run "
                "finished with the drain still in progress — counter "
                "quiescence never converged (stalled drain)",
            )
        self._open = None


class FdBudgetMonitor(Monitor):
    """The dispatcher's select() budget: 3 sockets/process, 1024 fds."""

    name = "fd-budget"
    categories = ("runtime.validated",)

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        limit = record.get("fd_limit")
        per_process = record.get("sockets_per_process")
        if limit is None or per_process is None:
            return  # launcher without an fd budget (InstantLauncher, FTPM)
        n_ranks = record.get("n_ranks", 0)
        reserved = record.get("reserved_fds", 0)
        fds = reserved + n_ranks * per_process
        if fds > limit:
            self.violation(
                record.time,
                f"{record.get('launcher')} launched {n_ranks} processes "
                f"needing {fds} descriptors ({per_process}/process + "
                f"{reserved} reserved), over the select() fd limit of "
                f"{limit} — the run would fail on real MPICH-V hardware",
            )
        max_processes = record.get("max_processes")
        if max_processes is not None and n_ranks > max_processes:
            self.violation(
                record.time,
                f"{record.get('launcher')} admitted {n_ranks} processes past "
                f"its modeled maximum of {max_processes}",
            )


class LivelockMonitor(Monitor):
    """Engine liveness: the simulation clock must keep advancing.

    The monitor-side twin of :class:`repro.sim.engine.Watchdog`, sharing its
    :data:`~repro.sim.engine.DEFAULT_MAX_SAME_TIME_EVENTS` budget so the two
    agree on what counts as a livelock.  The engine watchdog raises
    :class:`~repro.sim.engine.LivelockError` with the repeating event cycle;
    this monitor only sees the raw ``(time, priority, seq)`` pop stream, so
    it reports the cascade length and trip time — enough to flag a run whose
    watchdog was left disarmed.
    """

    name = "engine-liveness"
    categories = ()  # liveness is a property of the pop stream, not records
    wants_steps = True

    def __init__(self, max_same_time_events: Optional[int] = None) -> None:
        super().__init__()
        self.max_same_time_events = (
            max_same_time_events if max_same_time_events is not None
            else DEFAULT_MAX_SAME_TIME_EVENTS
        )
        self._time: Optional[float] = None
        self._streak = 0
        self._tripped = False

    def on_step(self, time: float, priority: int, seq: int) -> None:
        self.checked += 1
        if time != self._time:
            self._time = time
            self._streak = 0
            self._tripped = False
            return
        self._streak += 1
        if self._streak >= self.max_same_time_events and not self._tripped:
            self._tripped = True  # one report per cascade in collect mode
            self.violation(
                time,
                f"livelock: {self._streak + 1} consecutive event pops at "
                f"t={time!r} without the simulation clock advancing "
                f"(budget {self.max_same_time_events}) — a zero-time event "
                "cascade is spinning (arm the engine Watchdog for the "
                "repeating cycle)",
            )


class WaveLivenessMonitor(Monitor):
    """Checkpoint waves terminate: started ⇒ completed or aborted.

    Both drivers emit ``ft.wave_started`` when markers go out and
    ``ft.wave_completed`` when every rank reported in; ``BaseProtocol.detach``
    emits ``ft.wave_aborted`` when the job dies or completes with a wave
    still in flight.  The ledger per protocol must therefore never hold two
    open waves, never complete a wave that was not started, and be empty
    when the run finishes.
    """

    name = "wave-liveness"
    categories = ("ft.wave_started", "ft.wave_completed", "ft.wave_aborted")

    def __init__(self) -> None:
        super().__init__()
        #: protocol name -> (open wave number, start time)
        self._open: Dict[str, Tuple[int, float]] = {}

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        protocol = record.get("protocol", "?")
        wave = record.get("wave", 0)
        if record.category == "ft.wave_started":
            stale = self._open.get(protocol)
            if stale is not None:
                self.violation(
                    record.time,
                    f"{protocol} started wave {wave} while wave {stale[0]} "
                    f"(started at t={stale[1]}) is still open — the previous "
                    "wave neither completed nor aborted",
                )
            self._open[protocol] = (wave, record.time)
        else:  # ft.wave_completed / ft.wave_aborted
            stale = self._open.pop(protocol, None)
            if stale is None or stale[0] != wave:
                closing = record.category.rsplit("_", 1)[1]
                self.violation(
                    record.time,
                    f"{protocol} wave {wave} {closing} but the open wave is "
                    f"{stale[0] if stale else 'none'} — wave ledger out of "
                    "sync",
                )

    def finish(self) -> None:
        for protocol, (wave, started_at) in sorted(self._open.items()):
            self.violation(
                started_at,
                f"{protocol} wave {wave} started at t={started_at} but the "
                "run finished without ft.wave_completed or ft.wave_aborted — "
                "the wave hung",
            )
        self._open.clear()


class StorageDurabilityMonitor(Monitor):
    """Committed checkpoint waves stay restorable; fetches return what was
    sealed.

    The ledger mirrors the storage tier from its trace records: sealed
    replicas (``ft.replica_stored``), commits (``ft.commit``), garbage
    collection (``ft.wave_gc``), server deaths (``ft.failure`` with
    ``kind="server"``) and injected corruption (``ft.image_corrupted``).
    Against it the monitor checks:

    1. at every commit, each rank of the job has at least one sealed,
       intact replica of the committed wave on a live server;
    2. with replication ≥ 2, the *first* server death still leaves the
       newest committed wave fully covered (K-way replication must
       tolerate one loss);
    3. a successful fetch (``ft.fetch_ok``) comes from a live server, is
       not a corrupted copy, and returns the sealed checksum;
    4. ``ft.storage_unrecoverable`` is only declared when no committed
       wave is fully covered by live intact replicas;
    5. a restart (``ft.restarted``) restores a wave some server committed.

    Job-wide coverage checks (1, 2, 4) need the rank count, learned from
    ``runtime.validated``; without it (bare unit tests driving a server
    directly) they are skipped rather than guessed.
    """

    name = "storage-durability"
    categories = ("ft.storage_config", "runtime.validated",
                  "ft.replica_stored", "ft.commit", "ft.wave_gc",
                  "ft.failure", "ft.image_corrupted", "ft.fetch_ok",
                  "ft.storage_unrecoverable", "ft.restarted")

    def __init__(self) -> None:
        super().__init__()
        self._replication = 1
        #: rank count of the (single) validated job; None when unknown or
        #: when several jobs of different sizes share the simulator
        self._n_ranks: Optional[int] = None
        self._ambiguous = False
        #: (wave, rank) -> {server name: sealed checksum}
        self._replicas: Dict[Tuple[int, int], Dict[str, int]] = {}
        #: (server, wave, rank) replicas corrupted by injection
        self._corrupt: Set[Tuple[str, int, int]] = set()
        self._dead: Set[str] = set()
        #: wave -> servers that committed it (and still retain it)
        self._committed: Dict[int, Set[str]] = {}

    def _covered(self, wave: int, rank: int) -> bool:
        """Does some live server hold an intact sealed replica?"""
        for server in self._replicas.get((wave, rank), ()):
            if server in self._dead:
                continue
            if (server, wave, rank) in self._corrupt:
                continue
            return True
        return False

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        category = record.category
        if category == "ft.replica_stored":
            key = (record.get("wave", 0), record.get("rank", 0))
            server = record.get("server")
            self._replicas.setdefault(key, {})[server] = record.get("checksum")
            # a fresh upload replaces any corrupted copy
            self._corrupt.discard((server, key[0], key[1]))
        elif category == "ft.commit":
            wave = record.get("wave", 0)
            self._committed.setdefault(wave, set()).add(record.get("server"))
            if self._n_ranks is None:
                return
            for rank in range(self._n_ranks):
                if not self._covered(wave, rank):
                    self.violation(
                        record.time,
                        f"wave {wave} committed but rank {rank} has no "
                        "sealed, intact replica on a live server — the "
                        "commit is not durable",
                    )
        elif category == "ft.wave_gc":
            wave = record.get("wave", 0)
            server = record.get("server")
            servers = self._committed.get(wave)
            if servers is not None:
                servers.discard(server)
                if not servers:
                    del self._committed[wave]
            for (w, rank) in [k for k in self._replicas if k[0] == wave]:
                self._replicas[(w, rank)].pop(server, None)
                if not self._replicas[(w, rank)]:
                    del self._replicas[(w, rank)]
                self._corrupt.discard((server, w, rank))
        elif category == "ft.failure":
            if record.get("kind") != "server":
                return
            self._dead.add(record.get("server"))
            if (self._replication < 2 or len(self._dead) != 1
                    or self._n_ranks is None or not self._committed):
                return
            newest = max(self._committed)
            for rank in range(self._n_ranks):
                if not self._covered(newest, rank):
                    self.violation(
                        record.time,
                        f"first server death ({record.get('server')}) lost "
                        f"rank {rank} of committed wave {newest} although "
                        f"replication is {self._replication} — K-way "
                        "replication must survive one server loss",
                    )
        elif category == "ft.image_corrupted":
            self._corrupt.add((record.get("server"), record.get("wave", 0),
                               record.get("rank", 0)))
        elif category == "ft.fetch_ok":
            wave = record.get("wave", 0)
            rank = record.get("rank", 0)
            server = record.get("server")
            if server in self._dead:
                self.violation(
                    record.time,
                    f"rank {rank} fetched wave {wave} from {server}, a "
                    "server that already died",
                )
            if (server, wave, rank) in self._corrupt:
                self.violation(
                    record.time,
                    f"rank {rank} fetched wave {wave} from {server} whose "
                    "replica was corrupted — the checksum verification "
                    "accepted a bad copy",
                )
            sealed = self._replicas.get((wave, rank), {}).get(server)
            if sealed is None:
                self.violation(
                    record.time,
                    f"rank {rank} fetched wave {wave} from {server} but "
                    "that server never sealed such a replica (or it was "
                    "garbage-collected)",
                )
            elif record.get("checksum") != sealed:
                self.violation(
                    record.time,
                    f"rank {rank} fetched wave {wave} from {server} with "
                    f"checksum {record.get('checksum')} but the sealed "
                    f"replica recorded {sealed}",
                )
        elif category == "ft.storage_unrecoverable":
            if self._n_ranks is None:
                return
            for wave in sorted(self._committed, reverse=True):
                if wave <= 0:
                    continue
                if all(self._covered(wave, rank)
                       for rank in range(self._n_ranks)):
                    self.violation(
                        record.time,
                        f"run declared storage-unrecoverable although "
                        f"committed wave {wave} is fully covered by live, "
                        "intact replicas — the fetch/fallback path gave up "
                        "too early",
                    )
                    return
        elif category == "ft.restarted":
            wave = record.get("wave") or 0
            if wave > 0 and self._committed and wave not in self._committed:
                self.violation(
                    record.time,
                    f"restart restored wave {wave}, which no checkpoint "
                    "server ever committed",
                )
        elif category == "ft.storage_config":
            self._replication = record.get("replication", 1)
        else:  # runtime.validated
            n_ranks = record.get("n_ranks")
            if n_ranks is None or self._ambiguous:
                return
            if self._n_ranks is None:
                self._n_ranks = n_ranks
            elif self._n_ranks != n_ranks:
                # several jobs of different sizes share this simulator —
                # job-wide coverage is no longer well-defined
                self._n_ranks = None
                self._ambiguous = True


class MembershipAgreementMonitor(Monitor):
    """Survivor recovery acts on an *agreed* failed set, never a partial
    view.

    The membership tracker proposes a failed set per ballot
    (``ft.membership_round``), every survivor commits it
    (``ft.membership_commit``), and only then does the recovery act
    (``ft.recovery_begin``).  The checkable contract:

    1. a commit names a ballot that was proposed, with exactly the
       proposed failed set;
    2. no rank of the failed set commits (the dead don't vote);
    3. no rank commits the same ballot twice;
    4. when recovery begins on a ballot, its committers are exactly the
       survivors (every rank of the job except the agreed failed set).
    """

    name = "membership-agreement"
    categories = ("ft.membership_round", "ft.membership_commit",
                  "ft.recovery_begin")

    def __init__(self) -> None:
        super().__init__()
        #: ballot -> proposed failed set (last proposal wins: the tracker
        #: re-proposes the final view when it force-commits)
        self._proposals: Dict[int, Tuple[int, ...]] = {}
        #: ballot -> ranks that committed it
        self._committers: Dict[int, Set[int]] = {}

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        category = record.category
        ballot = record.get("ballot", 0)
        if category == "ft.membership_round":
            self._proposals[ballot] = tuple(record.get("failed", ()))
        elif category == "ft.membership_commit":
            rank = record.get("rank", 0)
            failed = tuple(record.get("failed", ()))
            proposed = self._proposals.get(ballot)
            if proposed is None:
                self.violation(
                    record.time,
                    f"rank {rank} committed ballot {ballot} which was never "
                    "proposed — commit without an agreement round",
                )
            elif failed != proposed:
                self.violation(
                    record.time,
                    f"rank {rank} committed failed set {failed} for ballot "
                    f"{ballot} but the proposal was {proposed} — survivors "
                    "disagree on who failed",
                )
            if rank in failed:
                self.violation(
                    record.time,
                    f"rank {rank} committed ballot {ballot} although it is "
                    "in the failed set — the dead don't vote",
                )
            committers = self._committers.setdefault(ballot, set())
            if rank in committers:
                self.violation(
                    record.time,
                    f"rank {rank} committed ballot {ballot} twice",
                )
            committers.add(rank)
        else:  # ft.recovery_begin
            failed = set(record.get("failed", ()))
            n_ranks = record.get("n_ranks", 0)
            expected = set(range(n_ranks)) - failed
            committed = self._committers.get(ballot, set())
            if committed != expected:
                missing = sorted(expected - committed)
                extra = sorted(committed - expected)
                self.violation(
                    record.time,
                    f"recovery began on ballot {ballot} but its committers "
                    f"are not exactly the survivors — missing {missing}, "
                    f"unexpected {extra}",
                )
            # the ballot is consumed; later recoveries use fresh ballots
            self._proposals.pop(ballot, None)
            self._committers.pop(ballot, None)


class SpareConsistencyMonitor(Monitor):
    """A promoted spare restores the failed rank's newest committed image.

    ``ft.recovery_begin`` (policy "spare") opens a recovery and pins the
    wave its restores must come from — the newest committed wave at
    agreement time; a legitimate ``ft.wave_fallback`` unpins it (an older
    retained wave will be restored instead).  Against that the monitor
    checks every ``ft.promoted`` names a rank of the agreed failed set,
    every ``ft.spare_restore`` happens inside an open spare recovery at
    the pinned wave, and ``ft.restarted`` closes the recovery.

    A kill landing *inside* the open recovery (an ``ft.failure`` record
    between ``ft.recovery_begin`` and ``ft.restarted``) is a cascading
    casualty the agreement round could not have seen: a task kill adds
    its rank to the allowed set, a node kill — whose record names only
    the machine, not the ranks on it — unpins the rank check for the rest
    of this recovery (the retry loop may then promote any casualty).
    """

    name = "spare-consistency"
    categories = ("ft.recovery_begin", "ft.promoted", "ft.spare_restore",
                  "ft.wave_fallback", "ft.restarted", "ft.failure")

    def __init__(self) -> None:
        super().__init__()
        self._open = False
        #: failed set of the open spare recovery
        self._failed: Set[int] = set()
        #: wave the restores must come from; None = unpinned (nothing
        #: committed, or a fallback re-routed to an older wave)
        self._expected: Optional[int] = None
        #: a node died mid-recovery: its record carries no rank, so any
        #: promotion is legitimate until the recovery closes
        self._cascading = False

    def on_record(self, record: TraceRecord) -> None:
        self.checked += 1
        category = record.category
        if category == "ft.recovery_begin":
            if record.get("policy") != "spare":
                self._open = False
                self._failed = set()
                self._expected = None
                self._cascading = False
                return
            self._open = True
            self._failed = set(record.get("failed", ()))
            committed = record.get("committed", 0)
            self._expected = committed if committed > 0 else None
            self._cascading = False
        elif category == "ft.failure":
            if not self._open:
                return
            kind = record.get("kind")
            rank = record.get("rank")
            if kind == "task" and rank is not None:
                self._failed.add(rank)
            elif kind == "node":
                self._cascading = True
        elif category == "ft.promoted":
            if not self._open or self._cascading:
                return  # degraded/restart paths and cascading casualties
            rank = record.get("rank", 0)
            if rank not in self._failed:
                self.violation(
                    record.time,
                    f"rank {rank} was promoted onto a spare although the "
                    f"agreed failed set is {sorted(self._failed)} — a "
                    "surviving rank lost its engine",
                )
        elif category == "ft.spare_restore":
            wave = record.get("wave", 0)
            if not self._open:
                self.violation(
                    record.time,
                    f"spare restore of wave {wave} outside an open spare "
                    "recovery",
                )
            elif self._expected is not None and wave != self._expected:
                self.violation(
                    record.time,
                    f"promoted spare restored wave {wave} but the newest "
                    f"committed wave at agreement was {self._expected} — "
                    "a spare must restore the newest committed image",
                )
        elif category == "ft.wave_fallback":
            self._expected = None
        else:  # ft.restarted
            self._open = False
            self._failed = set()
            self._expected = None
            self._cascading = False


def all_monitors() -> list:
    """Fresh instances of every shipped monitor."""
    return [
        MonotoneClockMonitor(),
        FifoDeliveryMonitor(),
        VclNoOrphanMonitor(),
        VclLoggingMonitor(),
        PclFlushMonitor(),
        DclNetworkEmptyMonitor(),
        DclDrainLivenessMonitor(),
        FdBudgetMonitor(),
        LivelockMonitor(),
        WaveLivenessMonitor(),
        StorageDurabilityMonitor(),
        MembershipAgreementMonitor(),
        SpareConsistencyMonitor(),
    ]
