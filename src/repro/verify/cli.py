"""Offline invariant checking: ``python -m repro.verify trace.jsonl``.

Feeds a JSONL trace dump (see :func:`repro.sim.trace.dump_jsonl`) through
the same monitors that run online, and prints a per-monitor verdict.  Exit
status is non-zero when any invariant is violated.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.sim.trace import load_jsonl
from repro.verify.base import MonitorBus
from repro.verify.monitors import all_monitors

__all__ = ["main"]


def check_trace(path: str, stop_early: bool = True) -> MonitorBus:
    """Run every monitor over the records of ``path``; returns the bus."""
    bus = MonitorBus(all_monitors(), raise_on_violation=False)
    stopped = False
    for record in load_jsonl(path):
        bus.dispatch(record)
        if stop_early and bus.violations:
            stopped = True
            break
    if not stopped:
        bus.finish()
    return bus


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Check protocol invariants of dumped simulation traces.",
    )
    parser.add_argument("traces", nargs="+", metavar="trace.jsonl",
                        help="JSONL trace dump(s) to check")
    parser.add_argument("-k", "--keep-going", action="store_true",
                        help="collect every violation instead of stopping "
                             "at the first one")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only print failing traces")
    args = parser.parse_args(argv)

    failed = 0
    for path in args.traces:
        try:
            bus = check_trace(path, stop_early=not args.keep_going)
        except OSError as err:
            print(f"{path}: error: {err.strerror or err}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as err:
            print(f"{path}: error: not a JSONL trace dump ({err})",
                  file=sys.stderr)
            return 2
        if bus.ok:
            if not args.quiet:
                checked = sum(m.checked for m in bus.monitors)
                print(f"{path}: OK ({checked} checks, "
                      f"{len(bus.monitors)} monitors)")
            continue
        failed += 1
        print(f"{path}: FAIL ({len(bus.violations)} violation(s))")
        for verdict_name, verdict in bus.verdicts().items():
            if verdict["ok"]:
                continue
            for message in verdict["violations"]:
                print(f"  [{verdict_name}] {message}")
    return 1 if failed else 0
