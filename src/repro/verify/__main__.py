"""Entry point for ``python -m repro.verify``."""

from repro.verify.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
