"""Online protocol-invariant monitors.

This package watches the structured trace stream (:mod:`repro.sim.trace`)
*while the simulation runs* and validates the correctness properties both
checkpointing protocols rest on — the properties DESIGN.md's offline
hypothesis tests check at the op level, enforced continuously and at the
packet level for every monitored run:

* the simulation clock is monotone and the event order is the deterministic
  total order the engine promises;
* every connection delivers FIFO (the channel property Chandy–Lamport
  requires);
* Vcl snapshots are orphan-free cuts and the daemon logs every in-transit
  message crossing a cut, replaying it exactly once on restart;
* Pcl never lets an application payload cross a channel between the marker
  and the local checkpoint (send gates / Nemesis stopper / delayed
  receives);
* Dcl's counter quiescence really empties the network — no draining rank
  commits a send, no pre-wave message is in flight when a rank forks, and
  every drain converges within its budget;
* the MPICH-V dispatcher's 3-sockets-per-process budget never exceeds the
  1024-descriptor ``select()`` wall;
* the engine keeps making progress (no zero-time cascade livelock) and
  every checkpoint wave that starts either completes or is recorded as
  aborted (see :mod:`repro.chaos` for the campaign driver built on these);
* committed checkpoint waves stay durably restorable: every rank keeps a
  sealed, checksum-intact replica on a live server, K-way replication
  survives a single server death, and a restart never fabricates a wave;
* survivor recovery acts on an *agreed* failed set — every survivor
  commits the same ballot before any recovery action — and a promoted
  spare always restores the failed rank's newest committed image
  (docs/RECOVERY.md).

Attach all monitors to a simulator with::

    from repro.verify import MonitorBus, all_monitors
    bus = MonitorBus(all_monitors())
    bus.attach(sim)
    ...  # run; InvariantViolation raises at the offending event
    bus.finish()

Offline checking of a dumped trace: ``python -m repro.verify trace.jsonl``.
"""

from repro.verify.base import InvariantViolation, Monitor, MonitorBus
from repro.verify.monitors import (
    DclDrainLivenessMonitor,
    DclNetworkEmptyMonitor,
    FdBudgetMonitor,
    FifoDeliveryMonitor,
    LivelockMonitor,
    MembershipAgreementMonitor,
    MonotoneClockMonitor,
    PclFlushMonitor,
    SpareConsistencyMonitor,
    StorageDurabilityMonitor,
    VclLoggingMonitor,
    VclNoOrphanMonitor,
    WaveLivenessMonitor,
    all_monitors,
)

__all__ = [
    "InvariantViolation",
    "Monitor",
    "MonitorBus",
    "MonotoneClockMonitor",
    "FifoDeliveryMonitor",
    "VclNoOrphanMonitor",
    "VclLoggingMonitor",
    "PclFlushMonitor",
    "DclNetworkEmptyMonitor",
    "DclDrainLivenessMonitor",
    "FdBudgetMonitor",
    "LivelockMonitor",
    "WaveLivenessMonitor",
    "StorageDurabilityMonitor",
    "MembershipAgreementMonitor",
    "SpareConsistencyMonitor",
    "all_monitors",
]
