"""Monitor framework: the bus, the base class, the violation type.

A :class:`Monitor` is a small online state machine fed
:class:`~repro.sim.trace.TraceRecord` entries in emission order.  The
:class:`MonitorBus` owns the subscription to a simulator's tracer, routes
records to the monitors interested in their category, and keeps a sliding
window of recent records so a violation can point at the offending event
context rather than just a message.

Monitors never mutate simulation state; they mirror just enough of it
(per-rank wave counters, marker sets, frozen sources) to evaluate their
invariant, and they reset those mirrors on the failure/restart records so
rollback-recovery runs stay checkable across incarnations.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import TraceRecord

__all__ = ["InvariantViolation", "Monitor", "MonitorBus"]


class InvariantViolation(AssertionError):
    """A protocol invariant observably failed at a specific event.

    Carries the monitor name, the simulation time, and the window of trace
    records leading up to (and including) the offending one.
    """

    def __init__(
        self,
        monitor: str,
        message: str,
        time: float,
        window: Iterable[TraceRecord] = (),
    ) -> None:
        self.monitor = monitor
        self.message = message
        self.time = time
        self.window: List[TraceRecord] = list(window)
        lines = [f"[{monitor}] t={time:.6f}: {message}"]
        if self.window:
            lines.append("event window (oldest first):")
            for record in self.window:
                fields = " ".join(f"{k}={v!r}" for k, v in record.fields)
                lines.append(f"  t={record.time:.6f} {record.category} {fields}")
        super().__init__("\n".join(lines))


class Monitor:
    """Base class for one online invariant checker."""

    #: stable identifier used in verdicts and violation reports
    name = "monitor"
    #: trace categories this monitor consumes; None subscribes to everything
    categories: Optional[Tuple[str, ...]] = None
    #: set True to also receive the engine's raw (time, priority, seq) pops
    wants_steps = False

    def __init__(self) -> None:
        self.bus: Optional["MonitorBus"] = None
        #: events this monitor actually inspected (for verdict reporting)
        self.checked = 0

    # ------------------------------------------------------------- plumbing
    def attach(self, bus: "MonitorBus") -> None:
        self.bus = bus

    def violation(self, time: float, message: str) -> None:
        """Report an invariant violation (raises unless the bus collects)."""
        if self.bus is not None:
            self.bus.report(self, time, message)
        else:  # standalone monitor, e.g. in unit tests
            raise InvariantViolation(self.name, message, time)

    # ----------------------------------------------------------------- hooks
    def on_record(self, record: TraceRecord) -> None:
        """Consume one trace record (categories filtered by the bus)."""

    def on_step(self, time: float, priority: int, seq: int) -> None:
        """Consume one engine heap pop (only when ``wants_steps``)."""

    def finish(self) -> None:
        """End-of-run checks (completeness properties)."""


class MonitorBus:
    """Routes a tracer's record stream to a set of monitors.

    Parameters
    ----------
    monitors:
        Monitor instances; each is attached to this bus.
    raise_on_violation:
        When True (the default, used by tests) a violation raises
        :class:`InvariantViolation` at the offending event.  When False
        (harness mode) violations are collected and reported in
        :meth:`verdicts`.
    window:
        Number of recent records retained as the violation's event window.
    """

    def __init__(
        self,
        monitors: Iterable[Monitor],
        raise_on_violation: bool = True,
        window: int = 24,
    ) -> None:
        self.monitors: List[Monitor] = list(monitors)
        self.raise_on_violation = raise_on_violation
        self.violations: List[InvariantViolation] = []
        self._window: Deque[TraceRecord] = deque(maxlen=window)
        #: bound once: dispatch runs per record, tens of thousands per run
        self._window_append = self._window.append
        self._by_category: Dict[str, List[Monitor]] = {}
        self._wildcards: List[Monitor] = []
        #: category -> flat [interested..., wildcards...] list, built lazily
        self._route: Dict[str, List[Monitor]] = {}
        self._steppers: List[Monitor] = []
        self._tracer = None
        self._step_callbacks: List = []
        for monitor in self.monitors:
            monitor.attach(self)
            if monitor.categories is None:
                self._wildcards.append(monitor)
            else:
                for category in monitor.categories:
                    self._by_category.setdefault(category, []).append(monitor)
            if monitor.wants_steps:
                self._steppers.append(monitor)

    # ---------------------------------------------------------- attachment
    def categories(self) -> Optional[List[str]]:
        """Union of monitor category interests (None = everything)."""
        if self._wildcards:
            return None
        return sorted(self._by_category)

    def attach(self, sim: "Simulator") -> None:
        """Subscribe to ``sim``'s tracer (records and, if needed, steps)."""
        if self._tracer is not None:
            raise RuntimeError("MonitorBus is already attached")
        self._tracer = sim.trace
        self._tracer.subscribe(self.dispatch, self.categories())
        if self._steppers:
            # Register each stepper's bound method directly: the listener
            # list fires once per heap pop, millions of times per run, and
            # a fan-out trampoline here was a measurable slice of bt_wave.
            self._step_callbacks = [m.on_step for m in self._steppers]
            self._tracer.step_listeners.extend(self._step_callbacks)

    def detach(self) -> None:
        if self._tracer is None:
            return
        self._tracer.unsubscribe(self.dispatch)
        for callback in self._step_callbacks:
            if callback in self._tracer.step_listeners:
                self._tracer.step_listeners.remove(callback)
        self._step_callbacks = []
        self._tracer = None

    # ------------------------------------------------------------- dispatch
    def dispatch(self, record: TraceRecord) -> None:
        """Feed one record to every interested monitor (also the offline
        entry point: the CLI calls this for each JSONL record)."""
        self._window_append(record)
        route = self._route.get(record.category)
        if route is None:
            route = self._by_category.get(record.category, []) + self._wildcards
            self._route[record.category] = route
        for monitor in route:
            monitor.on_record(record)

    # --------------------------------------------------------------- results
    def report(self, monitor: Monitor, time: float, message: str) -> None:
        violation = InvariantViolation(monitor.name, message, time,
                                       window=self._window)
        self.violations.append(violation)
        if self.raise_on_violation:
            raise violation

    def finish(self) -> List[InvariantViolation]:
        """Run end-of-stream checks; returns all collected violations."""
        for monitor in self.monitors:
            monitor.finish()
        return self.violations

    def verdicts(self) -> Dict[str, Dict]:
        """Per-monitor verdict: ok flag, events checked, violation texts."""
        by_monitor: Dict[str, List[str]] = {m.name: [] for m in self.monitors}
        for violation in self.violations:
            by_monitor.setdefault(violation.monitor, []).append(
                violation.message
            )
        return {
            monitor.name: {
                "ok": not by_monitor.get(monitor.name),
                "checked": monitor.checked,
                "violations": by_monitor.get(monitor.name, []),
            }
            for monitor in self.monitors
        }

    @property
    def ok(self) -> bool:
        return not self.violations
