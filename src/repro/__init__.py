"""repro — blocking vs. non-blocking coordinated checkpointing for MPI.

A complete reproduction of Buntinas, Coti, Herault, Lemarinier, Pilard,
Rezmerita, Rodriguez, Cappello: "Blocking vs. non-blocking coordinated
checkpointing for large-scale fault tolerant MPI" (SC 2006 / FGCS 2008) on a
deterministic discrete-event simulation of the full system stack.

Subpackages
-----------
``repro.sim``
    Discrete-event kernel: events, generator processes, primitives, RNG,
    tracing.
``repro.net``
    Fluid-flow network model: links, NICs, connections, cluster and
    Grid'5000 topologies, fabric presets.
``repro.mpi``
    Simulated MPI: matching, collectives, restartable rank contexts, and
    the paper's three channels (ft-sock, ch_v, Nemesis).
``repro.ft``
    The protocols under study: Vcl (non-blocking Chandy-Lamport with
    message logging) and Pcl (blocking channel flushing), checkpoint
    servers, failure injection, rollback recovery, interval theory.
``repro.runtime``
    MPICH-V dispatcher, FTPM, ssh spawning, machinefiles, one-call
    deployment (:func:`repro.runtime.build_run`).
``repro.apps``
    NAS Parallel Benchmark skeletons (BT, CG, LU, MG, FT) and synthetic
    kernels.
``repro.tools``
    NetPIPE probe and trace analysis.
``repro.harness``
    Per-figure reproductions with shape checks
    (``python -m repro.harness --list``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
