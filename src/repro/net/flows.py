"""Fair-share fluid-flow bandwidth model.

Every byte transfer in the simulation is a :class:`Flow` over a path of
:class:`~repro.net.link.Link` objects.  A flow's instantaneous rate is::

    rate = min(cap, min over links of link.capacity / link.n_flows)

Whenever a flow starts, finishes or is cancelled, all flows sharing a link
with it are *settled* (their remaining bytes advanced at the old rate) and
re-rated.  This is a standard simplification of max-min fair sharing: it does
not cascade freed bandwidth to flows on other links, but it is monotone,
deterministic and captures the contention effects the paper's experiments
depend on (checkpoint image transfers competing with MPI traffic on NICs and
WAN uplinks).

Completions are driven by re-armable engine timer slots
(:class:`~repro.sim.engine.TimerHandle`): each active flow owns one finish
timer for its whole lifetime, and every re-rate moves it with
:meth:`~repro.sim.engine.TimerHandle.rearm` — no allocation, no heap
operation unless the fire time moved earlier.  Each re-arm still burns a
fresh heap sequence number, because that number is part of the
deterministic event total order (same-instant completions tie-break on it):
a "keep the live timer's sequence when the fire time is unchanged"
shortcut was tried once and reverted for reordering same-timestamp events
(see ``_schedule_finish``).  Per-link flow membership is an
insertion-ordered dict, already sorted by creation index, so the re-rate
pass merges neighbour lists instead of re-sorting them.
"""

from __future__ import annotations

import heapq
import math
import operator
from typing import Iterable, List, Optional, Sequence, Set

from repro.net.link import Link
from repro.sim.engine import _NO_ENTRY
from repro.sim.events import NORMAL

__all__ = ["Flow", "FlowScheduler"]

#: bytes below which a flow counts as finished (guards float drift)
_EPSILON_BYTES = 1e-6

_flow_index = operator.attrgetter("index")


class FlowCancelled(ConnectionError):
    """Failure value of ``flow.done`` when the flow is cancelled."""


class Flow:
    """One in-flight transfer across a path of links."""

    __slots__ = (
        "links",
        "bytes_total",
        "bytes_remaining",
        "cap",
        "rate",
        "last_settle",
        "done",
        "finished",
        "cancelled",
        "_timer",
        "index",
    )

    def __init__(self, links: Sequence[Link], nbytes: float, cap: Optional[float], done) -> None:
        self.links = tuple(links)
        #: scheduler-assigned creation index; the deterministic iteration
        #: key wherever flows are collected across links
        self.index = 0
        self.bytes_total = float(nbytes)
        self.bytes_remaining = float(nbytes)
        self.cap = cap
        self.rate = 0.0
        self.last_settle = 0.0
        self.done = done
        self.finished = False
        self.cancelled = False
        #: the live finish timer (a TimerHandle), or None
        self._timer = None

    @property
    def active(self) -> bool:
        return not (self.finished or self.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else ("cancelled" if self.cancelled else "active")
        return (
            f"<Flow {state} {self.bytes_remaining:.0f}/{self.bytes_total:.0f}B "
            f"@{self.rate:.3g}B/s over {[l.name for l in self.links]}>"
        )


class FlowScheduler:
    """Coordinates all active flows of a simulation."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.active: Set[Flow] = set()
        self._counter = 0

    # ----------------------------------------------------------------- start
    def start(
        self,
        links: Sequence[Link],
        nbytes: float,
        cap: Optional[float] = None,
    ) -> Flow:
        """Begin a transfer; returns the flow whose ``done`` event fires when
        the last byte has crossed the path."""
        if nbytes < 0:
            raise ValueError(f"negative flow size {nbytes!r}")
        done = self.sim.event(name="flow-done")
        flow = Flow(links, nbytes, cap, done)
        self._counter += 1
        flow.index = self._counter
        if nbytes <= _EPSILON_BYTES or not links:
            flow.finished = True
            done.succeed(flow)
            return flow
        # Collect neighbours before link membership changes, then settle and
        # re-rate in one fused pass: settling reads only the flow's own
        # fields (its *old* rate), never link state, so it is safe after the
        # membership update, and fusing halves the traversals on the hottest
        # path in the simulator.
        affected = self._neighbours(flow.links)
        now = self.sim.now
        for link in flow.links:
            link.flows[flow] = None
        flow.last_settle = now
        self.active.add(flow)
        self._settle_and_rerate(affected, now)
        # The new flow carries the highest index, so re-rating it last keeps
        # finish-timer sequence numbers in creation-index order.
        flow.rate = self._rate_of(flow)
        self._schedule_finish(flow)
        return flow

    # ---------------------------------------------------------------- cancel
    def cancel(self, flow: Flow) -> None:
        """Abort a flow (broken connection); its ``done`` event fails."""
        if not flow.active:
            return
        flow.cancelled = True
        self._detach(flow)
        if not flow.done.triggered:
            flow.done.defused = True
            flow.done.fail(FlowCancelled("flow cancelled"))

    # -------------------------------------------------------------- internals
    def _neighbours(self, links: Iterable[Link]) -> List[Flow]:
        """Flows sharing any of ``links``, ascending creation index.

        Each link's flow dict is already in ascending index order (flows
        join links only at creation, with a fresh highest index, and dicts
        preserve insertion order across deletions), so a k-way merge with
        adjacent dedup replaces the old sort over a set union.
        """
        streams = [link.flows for link in links if link.flows]
        if not streams:
            return []
        if len(streams) == 1:
            return list(streams[0])
        if len(streams) == 2:
            # The dominant multi-link shape (a NIC plus a shared backbone):
            # a hand-rolled two-pointer merge beats heapq.merge's generator
            # and key-wrapper machinery.  Indexes are unique per flow, so an
            # index tie means the same flow appears on both links.
            left, right = list(streams[0]), list(streams[1])
            merged = []
            append = merged.append
            i = j = 0
            ni, nj = len(left), len(right)
            while i < ni and j < nj:
                a, b = left[i], right[j]
                if a is b:
                    append(a)
                    i += 1
                    j += 1
                elif a.index < b.index:
                    append(a)
                    i += 1
                else:
                    append(b)
                    j += 1
            if i < ni:
                merged.extend(left[i:])
            elif j < nj:
                merged.extend(right[j:])
            return merged
        merged = []
        last: Optional[Flow] = None
        for flow in heapq.merge(*streams, key=_flow_index):
            if flow is not last:
                merged.append(flow)
                last = flow
        return merged

    def _settle(self, flow: Flow, now: float) -> None:
        if flow.rate > 0.0:
            elapsed = now - flow.last_settle
            if elapsed > 0.0:
                flow.bytes_remaining = max(
                    0.0, flow.bytes_remaining - flow.rate * elapsed
                )
        flow.last_settle = now

    def _rate_of(self, flow: Flow) -> float:
        # Inlined fair_share: a running min over the links performs the same
        # float comparisons and divisions, in the same order, as the old
        # ``min(link.fair_share() for link in flow.links)`` — without a
        # generator frame and a method call per link.
        rate = math.inf
        for link in flow.links:
            n = len(link.flows)
            share = link.capacity if n <= 1 else link.capacity / n
            if share < rate:
                rate = share
        cap = flow.cap
        if cap is not None and cap < rate:
            rate = cap
        return rate

    def _settle_and_rerate(self, flows: Iterable[Flow], now: float) -> None:
        # ``flows`` arrives in creation-index order (see _neighbours): the
        # order finish timers are re-armed assigns event seq numbers, and
        # same-instant completions must tie-break the same way every run or
        # traces stop being reproducible.  Settling and re-rating fuse into
        # one pass because a settle reads only its own flow's fields at the
        # flow's *old* rate — an earlier flow's re-rate cannot disturb it.
        # The loop body manually inlines _settle, _rate_of and the live
        # branch of _schedule_finish — this runs once per (neighbour,
        # churn event) pair, the single hottest path in the simulator, and
        # two method calls per flow were a measurable share of bt_wave.
        # Any semantic change here must be mirrored in those methods.
        sim = self.sim
        inf = math.inf
        nextafter = math.nextafter
        call_at = sim.call_at
        heappush = heapq.heappush
        maybe_compact = sim._maybe_compact
        for flow in flows:
            old_rate = flow.rate
            if old_rate > 0.0:
                elapsed = now - flow.last_settle
                if elapsed > 0.0:
                    remaining_bytes = flow.bytes_remaining - old_rate * elapsed
                    flow.bytes_remaining = (
                        remaining_bytes if remaining_bytes > 0.0 else 0.0
                    )
            flow.last_settle = now
            if not flow.active:  # pragma: no cover - links hold active flows
                continue
            rate = inf
            for link in flow.links:
                flows_on_link = link.flows
                n = len(flows_on_link)
                share = link.capacity if n <= 1 else link.capacity / n
                if share < rate:
                    rate = share
            cap = flow.cap
            if cap is not None and cap < rate:
                rate = cap
            flow.rate = rate
            if rate <= 0.0:  # pragma: no cover - capacities are positive
                self._schedule_finish(flow)
                continue
            bytes_remaining = flow.bytes_remaining
            remaining = (bytes_remaining if bytes_remaining > 0.0 else 0.0) / rate
            if now + remaining <= now:
                # sub-ulp residue: see _schedule_finish
                remaining = nextafter(now, inf) - now
            timer = flow._timer
            if timer is not None:
                # Inline of TimerHandle.rearm (~87k calls per bt_wave run,
                # 81% of them the lazy no-heap-op path).  The guard checks
                # rearm performs are invariants here: ``remaining`` is
                # non-negative by construction and a flow's stored timer is
                # never cancelled (_detach and the zero-rate branch null it
                # out when they cancel).
                seq = sim._seq + 1
                sim._seq = seq
                fire = now + remaining
                timer.time = fire
                timer.seq = seq
                hseq = timer.heap_seq
                if hseq == _NO_ENTRY or fire < timer.heap_time:
                    if hseq != _NO_ENTRY:
                        sim._tombstones += 1
                        sim._tombstones_total += 1
                    timer.heap_time = fire
                    timer.heap_seq = seq
                    heappush(sim._heap, (fire, NORMAL, seq, timer))
                    maybe_compact()
            else:
                flow._timer = call_at(
                    remaining, self._on_timer, flow, name="flow-finish"
                )

    def _schedule_finish(self, flow: Flow) -> None:
        timer = flow._timer
        if flow.rate <= 0.0:  # pragma: no cover - capacities are positive
            if timer is not None:
                timer.cancel()
                flow._timer = None
            return
        remaining = max(flow.bytes_remaining, 0.0) / flow.rate
        now = self.sim.now
        if now + remaining <= now:
            # The residual transfer time is below the clock's float
            # resolution (at t~73 one ulp is ~1.4e-14 s): scheduling it
            # verbatim would fire the timer at the *same* timestamp, settle
            # zero elapsed time, make no progress and reschedule forever —
            # the Pcl procs_per_node=2 livelock.  Round the delay up to one
            # ulp so the clock advances and the settle drains the residue.
            remaining = math.nextafter(now, math.inf) - now
        # Re-arm the flow's slot in place.  Every re-rate still burns a
        # fresh heap sequence number — rearm() is seq-for-seq equivalent to
        # the cancel()+call_at() pair it replaced, because the sequence
        # number is part of the deterministic total order (same-instant
        # completions tie-break on it) and freezing it was measured to
        # reorder same-timestamp events (last-ulp drift in figure rows).
        # What rearm() *does* skip is the heap traffic: a finish time that
        # stayed put or moved later keeps its existing heap entry, and the
        # engine reconciles the entry to the authoritative (time, seq) if
        # it ever surfaces early.
        if timer is not None:
            timer.rearm(remaining)
        else:
            flow._timer = self.sim.call_at(
                remaining, self._on_timer, flow, name="flow-finish"
            )

    def _on_timer(self, flow: Flow) -> None:
        flow._timer = None
        if not flow.active:  # pragma: no cover - cancel() cancels the timer
            return
        now = self.sim.now
        self._settle(flow, now)
        if flow.bytes_remaining <= _EPSILON_BYTES:
            flow.finished = True
            flow.bytes_remaining = 0.0
            self._detach(flow)
            flow.done.succeed(flow)
        else:  # pragma: no cover - float drift safety net
            self._schedule_finish(flow)

    def _detach(self, flow: Flow) -> None:
        self.active.discard(flow)
        timer = flow._timer
        if timer is not None:
            timer.cancel()
            flow._timer = None
        for link in flow.links:
            link.flows.pop(flow, None)
        affected = self._neighbours(flow.links)
        self._settle_and_rerate(affected, self.sim.now)
