"""Fair-share fluid-flow bandwidth model.

Every byte transfer in the simulation is a :class:`Flow` over a path of
:class:`~repro.net.link.Link` objects.  A flow's instantaneous rate is::

    rate = min(cap, min over links of link.capacity / link.n_flows)

Whenever a flow starts, finishes or is cancelled, all flows sharing a link
with it are *settled* (their remaining bytes advanced at the old rate) and
re-rated.  This is a standard simplification of max-min fair sharing: it does
not cascade freed bandwidth to flows on other links, but it is monotone,
deterministic and captures the contention effects the paper's experiments
depend on (checkpoint image transfers competing with MPI traffic on NICs and
WAN uplinks).

Completions are driven by cancellable engine timers
(:class:`~repro.sim.engine.TimerHandle`): each active flow owns at most one
finish timer, and every re-rate cancels and re-arms it in O(1) — the fresh
heap sequence number each re-arm takes is part of the deterministic event
total order, so a "keep the live timer when the fire time is unchanged"
shortcut is deliberately *not* taken (see ``_schedule_finish``).  Per-link
flow membership is an insertion-ordered dict, already sorted by creation
index, so the re-rate pass merges neighbour lists instead of re-sorting
them.
"""

from __future__ import annotations

import heapq
import math
import operator
from typing import Iterable, List, Optional, Sequence, Set

from repro.net.link import Link

__all__ = ["Flow", "FlowScheduler"]

#: bytes below which a flow counts as finished (guards float drift)
_EPSILON_BYTES = 1e-6

_flow_index = operator.attrgetter("index")


class FlowCancelled(ConnectionError):
    """Failure value of ``flow.done`` when the flow is cancelled."""


class Flow:
    """One in-flight transfer across a path of links."""

    __slots__ = (
        "links",
        "bytes_total",
        "bytes_remaining",
        "cap",
        "rate",
        "last_settle",
        "done",
        "finished",
        "cancelled",
        "_timer",
        "index",
    )

    def __init__(self, links: Sequence[Link], nbytes: float, cap: Optional[float], done) -> None:
        self.links = tuple(links)
        #: scheduler-assigned creation index; the deterministic iteration
        #: key wherever flows are collected across links
        self.index = 0
        self.bytes_total = float(nbytes)
        self.bytes_remaining = float(nbytes)
        self.cap = cap
        self.rate = 0.0
        self.last_settle = 0.0
        self.done = done
        self.finished = False
        self.cancelled = False
        #: the live finish timer (a TimerHandle), or None
        self._timer = None

    @property
    def active(self) -> bool:
        return not (self.finished or self.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.finished else ("cancelled" if self.cancelled else "active")
        return (
            f"<Flow {state} {self.bytes_remaining:.0f}/{self.bytes_total:.0f}B "
            f"@{self.rate:.3g}B/s over {[l.name for l in self.links]}>"
        )


class FlowScheduler:
    """Coordinates all active flows of a simulation."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.active: Set[Flow] = set()
        self._counter = 0

    # ----------------------------------------------------------------- start
    def start(
        self,
        links: Sequence[Link],
        nbytes: float,
        cap: Optional[float] = None,
    ) -> Flow:
        """Begin a transfer; returns the flow whose ``done`` event fires when
        the last byte has crossed the path."""
        if nbytes < 0:
            raise ValueError(f"negative flow size {nbytes!r}")
        done = self.sim.event(name="flow-done")
        flow = Flow(links, nbytes, cap, done)
        self._counter += 1
        flow.index = self._counter
        if nbytes <= _EPSILON_BYTES or not links:
            flow.finished = True
            done.succeed(flow)
            return flow
        # Settle neighbours at their old rates before link counts change.
        affected = self._neighbours(flow.links)
        now = self.sim.now
        for other in affected:
            self._settle(other, now)
        for link in flow.links:
            link.flows[flow] = None
        flow.last_settle = now
        self.active.add(flow)
        # The new flow carries the highest index, so appending keeps the
        # list in creation-index order.
        affected.append(flow)
        self._rerate(affected)
        return flow

    # ---------------------------------------------------------------- cancel
    def cancel(self, flow: Flow) -> None:
        """Abort a flow (broken connection); its ``done`` event fails."""
        if not flow.active:
            return
        flow.cancelled = True
        self._detach(flow)
        if not flow.done.triggered:
            flow.done.defused = True
            flow.done.fail(FlowCancelled("flow cancelled"))

    # -------------------------------------------------------------- internals
    def _neighbours(self, links: Iterable[Link]) -> List[Flow]:
        """Flows sharing any of ``links``, ascending creation index.

        Each link's flow dict is already in ascending index order (flows
        join links only at creation, with a fresh highest index, and dicts
        preserve insertion order across deletions), so a k-way merge with
        adjacent dedup replaces the old sort over a set union.
        """
        streams = [link.flows for link in links if link.flows]
        if not streams:
            return []
        if len(streams) == 1:
            return list(streams[0])
        merged: List[Flow] = []
        last: Optional[Flow] = None
        for flow in heapq.merge(*streams, key=_flow_index):
            if flow is not last:
                merged.append(flow)
                last = flow
        return merged

    def _settle(self, flow: Flow, now: float) -> None:
        if flow.rate > 0.0:
            elapsed = now - flow.last_settle
            if elapsed > 0.0:
                flow.bytes_remaining = max(
                    0.0, flow.bytes_remaining - flow.rate * elapsed
                )
        flow.last_settle = now

    def _rate_of(self, flow: Flow) -> float:
        rate = min(link.fair_share() for link in flow.links)
        if flow.cap is not None:
            rate = min(rate, flow.cap)
        return rate

    def _rerate(self, flows: Iterable[Flow]) -> None:
        # ``flows`` arrives in creation-index order (see _neighbours): the
        # order finish timers are (re)armed assigns event seq numbers, and
        # same-instant completions must tie-break the same way every run or
        # traces stop being reproducible.
        for flow in flows:
            if not flow.active:
                continue
            flow.rate = self._rate_of(flow)
            self._schedule_finish(flow)

    def _schedule_finish(self, flow: Flow) -> None:
        timer = flow._timer
        if flow.rate <= 0.0:  # pragma: no cover - capacities are positive
            if timer is not None:
                timer.cancel()
                flow._timer = None
            return
        remaining = max(flow.bytes_remaining, 0.0) / flow.rate
        now = self.sim.now
        if now + remaining <= now:
            # The residual transfer time is below the clock's float
            # resolution (at t~73 one ulp is ~1.4e-14 s): scheduling it
            # verbatim would fire the timer at the *same* timestamp, settle
            # zero elapsed time, make no progress and reschedule forever —
            # the Pcl procs_per_node=2 livelock.  Round the delay up to one
            # ulp so the clock advances and the settle drains the residue.
            remaining = math.nextafter(now, math.inf) - now
        # Always cancel and re-arm, even when the recomputed fire time is
        # unchanged: the finish timer's heap sequence number is part of the
        # deterministic total order (same-instant completions tie-break on
        # it), and the pre-TimerHandle kernel re-armed on every re-rate.
        # Keeping a live timer would freeze its old sequence number and
        # reorder same-timestamp events — observable as last-ulp drift in
        # figure rows.  Cancellation is O(1) and the tombstone is discarded
        # without event dispatch, so re-arming is still far cheaper than the
        # old abandoned-Timeout scheme.
        if timer is not None:
            timer.cancel()
        flow._timer = self.sim.call_at(
            remaining, self._on_timer, flow, name="flow-finish"
        )

    def _on_timer(self, flow: Flow) -> None:
        flow._timer = None
        if not flow.active:  # pragma: no cover - cancel() cancels the timer
            return
        now = self.sim.now
        self._settle(flow, now)
        if flow.bytes_remaining <= _EPSILON_BYTES:
            flow.finished = True
            flow.bytes_remaining = 0.0
            self._detach(flow)
            flow.done.succeed(flow)
        else:  # pragma: no cover - float drift safety net
            self._schedule_finish(flow)

    def _detach(self, flow: Flow) -> None:
        self.active.discard(flow)
        timer = flow._timer
        if timer is not None:
            timer.cancel()
            flow._timer = None
        for link in flow.links:
            link.flows.pop(flow, None)
        affected = self._neighbours(flow.links)
        now = self.sim.now
        for other in affected:
            self._settle(other, now)
        self._rerate(affected)
