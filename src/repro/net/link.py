"""Directed capacity-limited links.

A :class:`Link` is pure bookkeeping — the set of flows currently crossing it
and its capacity.  Rate arithmetic lives in
:class:`~repro.net.flows.FlowScheduler`.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["Link"]


class Link:
    """A directed link with a fixed capacity in bytes/second.

    Capacity is split evenly among the flows crossing the link (fair-share
    fluid model, see :mod:`repro.net.flows`).

    ``flows`` is an insertion-ordered dict used as an ordered set: flows
    only ever join a link at creation time, with a monotonically increasing
    creation index, so iteration yields flows in ascending index order —
    the deterministic order the scheduler's re-rate pass needs — without
    sorting.
    """

    __slots__ = ("name", "capacity", "flows")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"link {name!r}: capacity must be positive")
        self.name = name
        self.capacity = float(capacity)
        self.flows: Dict["Flow", None] = {}

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    def fair_share(self) -> float:
        """Capacity available to each flow currently on the link."""
        n = len(self.flows)
        return self.capacity if n <= 1 else self.capacity / n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} cap={self.capacity:.3g}B/s flows={len(self.flows)}>"
