"""Compute nodes and their local devices.

A :class:`Node` models one machine of a cluster: a full-duplex NIC (two
directed :class:`~repro.net.link.Link` objects shared by every process slot on
the node — the source of the paper's dual-processor NIC-sharing dips), a
memory link for intranode copies, and a local :class:`Disk` used for
checkpoint images.
"""

from __future__ import annotations

from typing import Optional

from repro.net.fabrics import Fabric
from repro.net.link import Link
from repro.sim.primitives import Resource

__all__ = ["Disk", "Node"]


class Disk:
    """A serialized block device with distinct read/write bandwidths.

    Operations queue FIFO (one transfer at a time), which is how a single
    SATA spindle behaves for the large sequential checkpoint writes the paper
    performs.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        write_bandwidth: float = 55e6,
        read_bandwidth: float = 60e6,
    ) -> None:
        self.sim = sim
        self.name = name
        self.write_bandwidth = float(write_bandwidth)
        self.read_bandwidth = float(read_bandwidth)
        self._arm = Resource(sim, capacity=1, name=f"disk:{name}")
        self.bytes_written = 0.0
        self.bytes_read = 0.0

    def write(self, nbytes: float) -> "Process":
        """Spawn a write; yield the returned process to wait for completion."""
        return self.sim.process(self._io(nbytes, self.write_bandwidth, "w"),
                                name=f"disk-write:{self.name}")

    def read(self, nbytes: float) -> "Process":
        """Spawn a read; yield the returned process to wait for completion."""
        return self.sim.process(self._io(nbytes, self.read_bandwidth, "r"),
                                name=f"disk-read:{self.name}")

    def _io(self, nbytes: float, bandwidth: float, kind: str):
        if nbytes < 0:
            raise ValueError(f"negative I/O size {nbytes!r}")
        yield self._arm.acquire()
        try:
            yield self.sim.timeout(nbytes / bandwidth)
            if kind == "w":
                self.bytes_written += nbytes
            else:
                self.bytes_read += nbytes
        finally:
            self._arm.release()


class Node:
    """One machine: NIC, memory link, disk and process slots.

    Parameters
    ----------
    n_slots:
        Number of processors; the paper's machines are dual-processor
        (``n_slots=2``) but most experiments deploy one MPI process per node
        until the node count runs out.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        fabric: Fabric,
        cluster: str = "local",
        n_slots: int = 2,
        disk: Optional[Disk] = None,
        memory_bandwidth: float = 1.5e9,
    ) -> None:
        self.sim = sim
        self.name = name
        self.cluster = cluster
        self.fabric = fabric
        self.n_slots = n_slots
        self.nic_tx = Link(f"{name}.tx", fabric.bandwidth)
        self.nic_rx = Link(f"{name}.rx", fabric.bandwidth)
        self.mem = Link(f"{name}.mem", memory_bandwidth)
        self.disk = disk if disk is not None else Disk(sim, name)
        self.alive = True
        #: service machines (checkpoint servers, scheduler, dispatcher) are
        #: excluded from MPI process placement
        self.service = False

    def fail(self) -> None:
        """Mark the node dead.  Connection teardown is done by the network
        layer (see :meth:`repro.net.topology.ClusterNetwork.fail_node`)."""
        self.alive = False

    def restore(self) -> None:
        """Bring the node back (used when restarting on the same machine)."""
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.alive else "DOWN"
        return f"<Node {self.name} [{self.cluster}] {state}>"
