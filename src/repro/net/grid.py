"""Multi-cluster (grid) topologies.

Models Grid'5000 as the paper used it (Sec. 5.1, 5.4): homogeneous
dual-processor clusters with Gigabit-Ethernet inside, joined by Renater WAN
links that are ~20x slower in per-stream bandwidth and ~100x worse in latency
than the intra-cluster network.

Every cluster gets a full-duplex uplink pair; an inter-cluster flow crosses
``src NIC -> src uplink -> dst uplink -> dst NIC``, so both the WAN pipe and
the endpoints' NICs can be the bottleneck, and concurrent inter-cluster flows
contend on the uplinks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.fabrics import (
    Fabric,
    GIGABIT_ETHERNET,
    GRID5000_WAN,
    SHARED_MEMORY,
)
from repro.net.link import Link
from repro.net.node import Node
from repro.net.topology import BaseNetwork, Cluster, Endpoint

__all__ = ["GridNetwork", "grid5000", "GRID5000_SITES"]


#: the six 2 GHz dual-Opteron Grid'5000 clusters used in the paper (Sec. 5.1)
GRID5000_SITES: Tuple[Tuple[str, int], ...] = (
    ("bordeaux", 48),
    ("lille", 53),
    ("orsay", 216),
    ("rennes", 64),
    ("sophia", 105),
    ("toulouse", 58),
)


class GridNetwork(BaseNetwork):
    """Several clusters joined by a WAN."""

    def __init__(
        self,
        sim: "Simulator",
        sites: Sequence[Tuple[str, int]],
        intra_fabric: Fabric = GIGABIT_ETHERNET,
        wan_fabric: Fabric = GRID5000_WAN,
        n_slots: int = 2,
        shm_fabric: Fabric = SHARED_MEMORY,
    ) -> None:
        super().__init__(sim, shm_fabric=shm_fabric)
        if not sites:
            raise ValueError("a grid needs at least one site")
        self.intra_fabric = intra_fabric
        self.wan_fabric = wan_fabric
        self.clusters: Dict[str, Cluster] = {}
        for site_name, n_nodes in sites:
            nodes = [
                Node(sim, f"{site_name}-{i:03d}", intra_fabric,
                     cluster=site_name, n_slots=n_slots)
                for i in range(n_nodes)
            ]
            self.clusters[site_name] = Cluster(
                name=site_name,
                nodes=nodes,
                uplink_tx=Link(f"{site_name}.up.tx", wan_fabric.bandwidth),
                uplink_rx=Link(f"{site_name}.up.rx", wan_fabric.bandwidth),
            )

    def all_nodes(self) -> List[Node]:
        nodes: List[Node] = []
        for cluster in self.clusters.values():
            nodes.extend(cluster.nodes)
        return nodes

    def place(self, n_procs: int, procs_per_node: Optional[int] = None) -> List[Endpoint]:
        """Grid placement fills whole sites before spilling to the next one,
        like reserving machines site by site on Grid'5000."""
        endpoints: List[Endpoint] = []
        per_node = procs_per_node
        if per_node is None:
            total = sum(len(c.nodes) for c in self.clusters.values())
            per_node = 1
            while per_node * total < n_procs:
                per_node += 1
        for cluster in self.clusters.values():
            for node in cluster.nodes:
                if not node.alive or node.service:
                    continue
                for slot in range(min(per_node, node.n_slots)):
                    if len(endpoints) >= n_procs:
                        return endpoints
                    endpoints.append(Endpoint(node, slot))
        if len(endpoints) < n_procs:
            raise ValueError(f"grid too small for {n_procs} processes")
        return endpoints

    def sites_used(self, endpoints: Sequence[Endpoint]) -> List[str]:
        seen: List[str] = []
        for endpoint in endpoints:
            if endpoint.node.cluster not in seen:
                seen.append(endpoint.node.cluster)
        return seen

    def _path(self, a: Endpoint, b: Endpoint):
        if a.node.cluster == b.node.cluster:
            return self._intra_path(a, b, self.intra_fabric)
        src = self.clusters[a.node.cluster]
        dst = self.clusters[b.node.cluster]
        links_ab = [a.node.nic_tx, src.uplink_tx, dst.uplink_rx, b.node.nic_rx]
        links_ba = [b.node.nic_tx, dst.uplink_tx, src.uplink_rx, a.node.nic_rx]
        from repro.net.topology import MTU_BYTES
        return (links_ab, links_ba, self.wan_fabric.latency,
                self.wan_fabric.per_flow_cap,
                self.wan_fabric.queue_mtus * MTU_BYTES)


def grid5000(sim: "Simulator", **kwargs) -> GridNetwork:
    """The paper's Grid'5000 slice: six dual-Opteron clusters, 544 nodes."""
    return GridNetwork(sim, GRID5000_SITES, **kwargs)
