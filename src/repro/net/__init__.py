"""Network substrate: links, flows, nodes, connections and topologies.

The network model has two layers:

1. A *fluid-flow* bandwidth layer (:mod:`~repro.net.flows`): every transfer is
   a flow across a path of capacity-limited directed links (NIC transmit, NIC
   receive, cluster uplinks).  Flows sharing a link split its capacity evenly,
   and rates are re-evaluated whenever a flow starts or ends.  This is what
   makes checkpoint-image transfers compete with application traffic — the
   effect at the heart of the paper's Figure 5.

2. A *connection* layer (:mod:`~repro.net.connection`): TCP-like full-duplex
   FIFO byte streams between process endpoints.  A connection serializes its
   own sends (like a TCP socket), delivers each message one path latency after
   its last byte leaves, and breaks loudly when either node fails — unexpected
   socket closure is exactly how the paper's runtimes detect failures.

Topologies (:mod:`~repro.net.topology`, :mod:`~repro.net.grid`) assemble nodes
with per-node NICs (shared by the two processors of a dual-processor node) and
fabric presets (:mod:`~repro.net.fabrics`) for Gigabit Ethernet, Myrinet/GM,
Ethernet-over-Myrinet and the Grid'5000 WAN.
"""

from repro.net.fabrics import (
    ETHERNET_OVER_MYRINET,
    GIGABIT_ETHERNET,
    GRID5000_WAN,
    MYRINET_GM,
    SHARED_MEMORY,
    Fabric,
)
from repro.net.flows import Flow, FlowScheduler
from repro.net.link import Link
from repro.net.node import Disk, Node
from repro.net.connection import BrokenConnectionError, Connection, ConnectionEnd
from repro.net.topology import Cluster, ClusterNetwork, Endpoint
from repro.net.grid import GridNetwork, grid5000

__all__ = [
    "BrokenConnectionError",
    "Cluster",
    "ClusterNetwork",
    "Connection",
    "ConnectionEnd",
    "Disk",
    "Endpoint",
    "ETHERNET_OVER_MYRINET",
    "Fabric",
    "Flow",
    "FlowScheduler",
    "GIGABIT_ETHERNET",
    "GRID5000_WAN",
    "GridNetwork",
    "grid5000",
    "Link",
    "MYRINET_GM",
    "Node",
    "SHARED_MEMORY",
    "grid5000",
]
