"""TCP-like full-duplex FIFO connections.

A :class:`Connection` joins two endpoints with two directed pipes.  Each pipe
serializes its messages (one fluid flow at a time, like bytes on a TCP
stream), delivers a message one path latency after its last byte leaves, and
preserves FIFO order — the property the Chandy–Lamport algorithm requires of
channels.

Breaking a connection (node failure) cancels the in-flight flow, drops queued
and in-flight messages, and poisons both receive queues with
:class:`BrokenConnectionError`; blocked readers wake with the error
immediately, which is the "failure detection by unexpected socket closure"
semantics of the paper's runtimes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Sequence, Tuple

from repro.net.flows import FlowScheduler
from repro.net.link import Link
from repro.sim.events import Event
from repro.sim.primitives import Store

__all__ = ["BrokenConnectionError", "Connection", "ConnectionEnd"]

#: messages at or below this size take the inline path when the pipe and its
#: links are idle: same timing as a fluid flow with no competitors, but
#: without allocating one (latency-bound workloads send millions of these)
_INLINE_BYTES = 2048.0


class BrokenConnectionError(ConnectionError):
    """Raised to readers/writers of a connection whose peer vanished."""


class _Pipe:
    """One direction of a connection."""

    __slots__ = (
        "sim",
        "scheduler",
        "links",
        "latency",
        "cap",
        "queue_unit",
        "inbox",
        "egress",
        "pumping",
        "broken",
        "bytes_sent",
        "messages_sent",
        "name",
        "_current_flow",
        "_last_delivery",
        "_msg_id",
        "_flush_gen",
        "_sent_name",
    )

    def __init__(
        self,
        sim: "Simulator",
        scheduler: FlowScheduler,
        links: Sequence[Link],
        latency: float,
        cap: Optional[float],
        name: str,
        queue_bytes: float = 0.0,
    ) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.links = tuple(links)
        self.latency = latency
        self.cap = cap
        # per-link seconds of extra delay contributed by each competing flow
        self.queue_unit = tuple(queue_bytes / link.capacity for link in links)
        self.inbox = Store(sim, name=f"inbox:{name}")
        self.egress: Deque[Tuple[Any, float, Event]] = deque()
        self.pumping = False
        self.broken = False
        self.bytes_sent = 0.0
        self.messages_sent = 0
        self.name = name
        self._current_flow = None
        self._last_delivery = 0.0
        #: bumped by flush(); scheduled deliveries from before a flush carry
        #: the old generation and are discarded on arrival
        self._flush_gen = 0
        #: FIFO position of the last message accepted for sending; ids are
        #: only assigned while a monitor subscribes to net.* (repro.verify)
        self._msg_id = 0
        #: precomputed sent-event label (send() is hot; an f-string per
        #: message showed up in profiles)
        self._sent_name = f"sent:{name}"

    # ------------------------------------------------------------------ send
    def send(self, payload: Any, nbytes: float, extra_latency: float = 0.0) -> Event:
        """Queue ``payload``; the returned event fires when the last byte has
        left the sender (not when it is delivered).  ``extra_latency`` is
        added to this message's delivery time (deferred host costs)."""
        if self.broken:
            raise BrokenConnectionError(f"send on broken pipe {self.name}")
        trace = self.sim.trace
        if trace.wants("net.sent"):
            self._msg_id += 1
            msg_id = self._msg_id
            trace.record(self.sim.now, "net.sent", pipe=self.name,
                         msg=msg_id, nbytes=nbytes)
        else:
            msg_id = 0
        sent = self.sim.event(name=self._sent_name)
        if (
            not self.pumping
            and nbytes <= _INLINE_BYTES
            and all(not link.flows for link in self.links)
        ):
            # Idle-path shortcut: identical timing to an uncontended flow.
            rate = min((link.capacity for link in self.links), default=None)
            if rate is not None and self.cap is not None:
                rate = min(rate, self.cap)
            serialization = nbytes / rate if rate else 0.0
            # consecutive small messages serialize on the wire: each departs
            # one serialization time after the previous one at the earliest
            delivery = max(
                self.sim.now + serialization + self.latency + extra_latency,
                self._last_delivery + serialization,
            )
            self._last_delivery = delivery
            self.bytes_sent += nbytes
            self.messages_sent += 1
            metrics = self.sim.metrics
            if metrics is not None:
                # unlabelled on purpose: one instrument for the whole
                # fabric, not one per (transient) pipe
                metrics.count("net.inline_sends")
                metrics.count("net.bytes_sent", nbytes)
            sent.succeed()
            self.sim.call_at(delivery - self.sim.now, self._deliver, payload,
                             msg_id, self._flush_gen)
            return sent
        self.egress.append((payload, nbytes, sent, extra_latency, msg_id))
        if not self.pumping:
            self.pumping = True
            self.sim.process(self._pump(), name=f"pump:{self.name}")
        return sent

    def _pump(self):
        while self.egress and not self.broken:
            payload, nbytes, sent, extra_latency, msg_id = self.egress.popleft()
            # Queueing penalty: packets of competing flows sit ahead of ours
            # in the NIC queues along the path.
            queueing = 0.0
            for link, unit in zip(self.links, self.queue_unit):
                competitors = len(link.flows)
                if competitors:
                    queueing += competitors * unit
            flow = self.scheduler.start(self.links, nbytes, cap=self.cap)
            self._current_flow = flow
            try:
                yield flow.done
            except ConnectionError:
                if self.broken:
                    # Cancelled by break_(); queued messages already dropped.
                    break
                # Cancelled by flush(): this message is dropped, but the pipe
                # lives on — keep draining whatever was enqueued since.
                if not sent.triggered:
                    sent.defused = True
                    sent.fail(BrokenConnectionError(
                        f"pipe {self.name} flushed"))
                continue
            finally:
                self._current_flow = None
            self.bytes_sent += nbytes
            self.messages_sent += 1
            metrics = self.sim.metrics
            if metrics is not None:
                metrics.count("net.flow_sends")
                metrics.count("net.bytes_sent", nbytes)
            if not sent.triggered:
                sent.succeed()
            # FIFO guard: a later message with a smaller queueing penalty must
            # not overtake an earlier one.
            delivery = max(self.sim.now + self.latency + queueing + extra_latency,
                           self._last_delivery)
            self._last_delivery = delivery
            self.sim.call_at(delivery - self.sim.now, self._deliver, payload,
                             msg_id, self._flush_gen)
        self.pumping = False

    def _deliver(self, payload: Any, msg_id: int = 0, gen: int = 0) -> None:
        if gen != self._flush_gen:
            return  # sent before a flush(); the epoch that wanted it is gone
        if not self.broken and not self.inbox.poisoned:
            if msg_id:
                trace = self.sim.trace
                if trace.wants("net.delivered"):
                    trace.record(self.sim.now, "net.delivered",
                                 pipe=self.name, msg=msg_id)
            self.inbox.put(payload)

    # ----------------------------------------------------------------- flush
    def flush(self) -> None:
        """Drop every queued, in-flight, and delivered-but-unread message
        without breaking the pipe.

        Used when a surviving connection is carried across a job incarnation
        (ULFM-style recovery): the TCP stream stays up, but everything the
        dead epoch put on the wire must never reach the new one.  Blocked
        senders get :class:`BrokenConnectionError` for the dropped messages;
        the inbox is drained, not poisoned, so the next epoch's receiver
        starts clean.
        """
        if self.broken:
            return
        self._flush_gen += 1
        if self._current_flow is not None:
            self.scheduler.cancel(self._current_flow)
        error = BrokenConnectionError(f"pipe {self.name} flushed")
        while self.egress:
            entry = self.egress.popleft()
            sent = entry[2]
            if not sent.triggered:
                sent.defused = True
                sent.fail(error)
        self.inbox.drain()

    # ----------------------------------------------------------------- break
    def break_(self) -> None:
        if self.broken:
            return
        self.broken = True
        error = BrokenConnectionError(f"pipe {self.name} broken")
        if self._current_flow is not None:
            self.scheduler.cancel(self._current_flow)
        while self.egress:
            entry = self.egress.popleft()
            sent = entry[2]
            if not sent.triggered:
                sent.defused = True
                sent.fail(error)
        self.inbox.poison(error)


class ConnectionEnd:
    """One side's view of a connection."""

    __slots__ = ("connection", "_out", "_in", "local", "remote")

    def __init__(self, connection: "Connection", out_pipe: _Pipe, in_pipe: _Pipe,
                 local: Any, remote: Any) -> None:
        self.connection = connection
        self._out = out_pipe
        self._in = in_pipe
        self.local = local
        self.remote = remote

    @property
    def broken(self) -> bool:
        return self._out.broken or self._in.broken

    def send(self, payload: Any, nbytes: float = 0.0,
             extra_latency: float = 0.0) -> Event:
        """Send a message; returns the transmit-complete event."""
        return self._out.send(payload, nbytes, extra_latency)

    def recv(self) -> Event:
        """Event yielding the next in-order message from the peer."""
        return self._in.inbox.get()

    def try_recv(self) -> Any:
        """Non-blocking receive; None when nothing is queued."""
        return self._in.inbox.try_get()

    def pending(self) -> int:
        """Number of delivered-but-unread messages."""
        return len(self._in.inbox)

    def close(self) -> None:
        self.connection.break_()

    @property
    def active_flow(self):
        """The flow currently leaving this end, if any (rate inspection)."""
        return self._out._current_flow

    @property
    def bytes_sent(self) -> float:
        return self._out.bytes_sent

    @property
    def latency(self) -> float:
        return self._out.latency


class Connection:
    """A full-duplex FIFO stream between two endpoints."""

    def __init__(
        self,
        sim: "Simulator",
        scheduler: FlowScheduler,
        links_ab: Sequence[Link],
        links_ba: Sequence[Link],
        latency: float,
        cap: Optional[float] = None,
        a: Any = "a",
        b: Any = "b",
        queue_bytes: float = 0.0,
    ) -> None:
        # Per-simulator ids keep pipe names (which end up in trace records)
        # deterministic across repeated runs within one process.
        counter = getattr(sim, "_connection_counter", 0) + 1
        sim._connection_counter = counter
        self.id = counter
        name = f"conn{self.id}"
        self.sim = sim
        pipe_ab = _Pipe(sim, scheduler, links_ab, latency, cap, f"{name}.ab",
                        queue_bytes=queue_bytes)
        pipe_ba = _Pipe(sim, scheduler, links_ba, latency, cap, f"{name}.ba",
                        queue_bytes=queue_bytes)
        self.pipes = (pipe_ab, pipe_ba)
        self.end_a = ConnectionEnd(self, pipe_ab, pipe_ba, a, b)
        self.end_b = ConnectionEnd(self, pipe_ba, pipe_ab, b, a)

    @property
    def broken(self) -> bool:
        return self.pipes[0].broken or self.pipes[1].broken

    def break_(self) -> None:
        """Tear down both directions (idempotent)."""
        for pipe in self.pipes:
            pipe.break_()

    def flush(self) -> None:
        """Drop all in-flight traffic in both directions, keep the stream up
        (survivor-link reuse across a recovery)."""
        for pipe in self.pipes:
            pipe.flush()

    def ends(self) -> Tuple[ConnectionEnd, ConnectionEnd]:
        return self.end_a, self.end_b
