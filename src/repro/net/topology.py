"""Cluster topologies and endpoint placement.

The paper's cluster experiments use homogeneous dual-processor nodes behind a
non-blocking Gigabit-Ethernet switch, deploying one MPI process per node while
enough machines are available and two per node beyond that (which makes the
two processes share one NIC — the cause of the dip past 144 processes in
Fig. 6).  :meth:`ClusterNetwork.place` implements exactly that policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.net.connection import Connection
from repro.net.fabrics import Fabric, GIGABIT_ETHERNET, SHARED_MEMORY
from repro.net.flows import FlowScheduler
from repro.net.link import Link
from repro.net.node import Node

__all__ = ["Endpoint", "Cluster", "ClusterNetwork", "MTU_BYTES"]

#: Ethernet MTU used for queueing-delay estimates
MTU_BYTES = 1500.0


@dataclass(frozen=True)
class Endpoint:
    """A process attachment point: a slot on a node."""

    node: Node
    slot: int

    @property
    def name(self) -> str:
        return f"{self.node.name}:{self.slot}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Endpoint {self.name}>"


@dataclass
class Cluster:
    """A named group of nodes plus its WAN uplink (used by grids)."""

    name: str
    nodes: List[Node]
    uplink_tx: Optional[Link] = None
    uplink_rx: Optional[Link] = None


class BaseNetwork:
    """Shared machinery: connection registry, failure plumbing, placement."""

    def __init__(self, sim: "Simulator", shm_fabric: Fabric = SHARED_MEMORY) -> None:
        self.sim = sim
        self.scheduler = FlowScheduler(sim)
        self.shm_fabric = shm_fabric
        self.connections: List[Connection] = []
        #: endpoints recorded per connection for failure teardown
        self._conn_endpoints: Dict[int, Tuple[Endpoint, Endpoint]] = {}

    # ------------------------------------------------------------- placement
    def all_nodes(self) -> List[Node]:
        raise NotImplementedError

    def place(self, n_procs: int, procs_per_node: Optional[int] = None) -> List[Endpoint]:
        """Assign ``n_procs`` endpoints over the machines.

        With ``procs_per_node=None`` the paper's policy applies: one process
        per node while nodes suffice, otherwise two per node (and so on up to
        the slot count).
        """
        nodes = [n for n in self.all_nodes() if n.alive and not n.service]
        if procs_per_node is None:
            per_node = 1
            while per_node * len(nodes) < n_procs:
                per_node += 1
        else:
            per_node = procs_per_node
        max_slots = max(n.n_slots for n in nodes) if nodes else 0
        if per_node > max_slots:
            raise ValueError(
                f"cannot place {n_procs} processes: {len(nodes)} nodes x "
                f"{max_slots} slots available"
            )
        endpoints: List[Endpoint] = []
        for slot in range(per_node):
            for node in nodes:
                if len(endpoints) >= n_procs:
                    return endpoints
                if slot < node.n_slots:
                    endpoints.append(Endpoint(node, slot))
        if len(endpoints) < n_procs:
            raise ValueError(
                f"cannot place {n_procs} processes on {len(nodes)} nodes"
            )
        return endpoints

    # ------------------------------------------------------------ connecting
    def _path(
        self, a: Endpoint, b: Endpoint
    ) -> Tuple[Sequence[Link], Sequence[Link], float, Optional[float], float]:
        raise NotImplementedError

    def connect(self, a: Endpoint, b: Endpoint) -> Connection:
        """Open a full-duplex FIFO connection between two endpoints."""
        if not (a.node.alive and b.node.alive):
            raise ConnectionRefusedError(
                f"connect {a.name}->{b.name}: node down"
            )
        links_ab, links_ba, latency, cap, queue_bytes = self._path(a, b)
        connection = Connection(
            self.sim, self.scheduler, links_ab, links_ba, latency, cap=cap,
            a=a, b=b, queue_bytes=queue_bytes,
        )
        self.connections.append(connection)
        self._conn_endpoints[connection.id] = (a, b)
        return connection

    # --------------------------------------------------------------- failure
    def fail_node(self, node: Node) -> List[Connection]:
        """Kill a node: every connection touching it breaks *now*.

        Returns the connections that were broken, so callers can assert on
        detection behaviour.
        """
        node.fail()
        broken = []
        for connection in self.connections:
            if connection.broken:
                continue
            a, b = self._conn_endpoints[connection.id]
            if a.node is node or b.node is node:
                connection.break_()
                broken.append(connection)
        self._gc_connections()
        return broken

    def _gc_connections(self) -> None:
        alive = [c for c in self.connections if not c.broken]
        if len(alive) != len(self.connections):
            dead = {c.id for c in self.connections} - {c.id for c in alive}
            for cid in dead:
                self._conn_endpoints.pop(cid, None)
            self.connections = alive

    def _intra_path(
        self, a: Endpoint, b: Endpoint, fabric: Fabric
    ) -> Tuple[Sequence[Link], Sequence[Link], float, Optional[float], float]:
        if a.node is b.node:
            mem = a.node.mem
            return ([mem], [mem], self.shm_fabric.latency, None,
                    self.shm_fabric.queue_mtus * MTU_BYTES)
        return (
            [a.node.nic_tx, b.node.nic_rx],
            [b.node.nic_tx, a.node.nic_rx],
            fabric.latency,
            fabric.per_flow_cap,
            fabric.queue_mtus * MTU_BYTES,
        )


class ClusterNetwork(BaseNetwork):
    """A single homogeneous cluster behind a non-blocking switch.

    The switch is assumed non-blocking (true of the paper's hardware at these
    scales), so contention only arises at node NICs.
    """

    def __init__(
        self,
        sim: "Simulator",
        n_nodes: int,
        fabric: Fabric = GIGABIT_ETHERNET,
        name: str = "cluster",
        n_slots: int = 2,
        shm_fabric: Fabric = SHARED_MEMORY,
    ) -> None:
        super().__init__(sim, shm_fabric=shm_fabric)
        if n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.fabric = fabric
        self.name = name
        self.nodes = [
            Node(sim, f"{name}-{i:03d}", fabric, cluster=name, n_slots=n_slots)
            for i in range(n_nodes)
        ]

    def all_nodes(self) -> List[Node]:
        return self.nodes

    def _path(self, a: Endpoint, b: Endpoint):
        return self._intra_path(a, b, self.fabric)
