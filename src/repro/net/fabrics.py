"""Fabric presets.

These numbers parameterize the link models with the hardware the paper used:

* **Gigabit Ethernet** — the 216-node Orsay cluster experiments (Sec. 5.2).
* **Myrinet 2000 / GM** — the 48-node Bordeaux cluster (Sec. 5.3); the Nemesis
  channel drives GM natively (7 µs class latency), while the TCP
  implementations ran Ethernet emulation over the same Myri2000 hardware
  (MX-2G driver), i.e. Myrinet bandwidth but Ethernet-stack latency.
* **Grid'5000 WAN** — Renater links between clusters.  The paper's own
  NetPIPE measurement (Sec. 5.4) found the inter-cluster network "up to 20
  times" slower in bandwidth and about two orders of magnitude worse in
  latency than intra-cluster links; the preset encodes exactly those ratios.

Absolute values are representative of 2006 hardware; the reproduction's
claims are about relative behaviour, which these ratios preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Fabric",
    "GIGABIT_ETHERNET",
    "MYRINET_GM",
    "ETHERNET_OVER_MYRINET",
    "SHARED_MEMORY",
    "GRID5000_WAN",
]


@dataclass(frozen=True)
class Fabric:
    """Link technology parameters.

    Attributes
    ----------
    name:
        Human-readable identifier used in traces and reports.
    latency:
        One-way wire latency in seconds for a message on this fabric.
    bandwidth:
        Link capacity in bytes/second (per NIC direction, or per uplink for
        WAN fabrics).
    per_message_overhead:
        Host CPU cost per message (protocol stack traversal); charged by the
        MPI channel layer on both send and receive.
    per_flow_cap:
        Optional per-flow rate ceiling in bytes/second; used on WAN fabrics
        where a single TCP stream cannot fill the uplink.
    queue_mtus:
        Average NIC queue occupancy, in MTUs, contributed by each *competing*
        flow on a link.  A small message sharing a NIC with a bulk transfer
        (a checkpoint image) waits behind queued packets, so its latency
        grows by ``queue_mtus * MTU / capacity`` per competing flow — the
        mechanism that makes checkpoint traffic hurt latency-bound
        applications such as CG (Sec. 5.3).
    """

    name: str
    latency: float
    bandwidth: float
    per_message_overhead: float = 0.0
    per_flow_cap: Optional[float] = None
    queue_mtus: float = 4.0

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended time for ``nbytes`` (latency + serialization)."""
        rate = self.bandwidth if self.per_flow_cap is None else min(
            self.bandwidth, self.per_flow_cap
        )
        return self.latency + nbytes / rate


#: 1 Gb/s Ethernet (Orsay cluster): ~50 µs end-to-end latency, ~117 MB/s.
GIGABIT_ETHERNET = Fabric(
    name="gige",
    latency=50e-6,
    bandwidth=117e6,
    per_message_overhead=5e-6,
)

#: Myrinet 2000 driven natively through GM (Nemesis channel).
MYRINET_GM = Fabric(
    name="myrinet-gm",
    latency=7e-6,
    bandwidth=240e6,
    per_message_overhead=1e-6,
)

#: Ethernet emulation on the same Myri2000 hardware (MX-2G driver); the
#: TCP-based implementations (Pcl/ft-sock and Vcl) used this in Sec. 5.3.
ETHERNET_OVER_MYRINET = Fabric(
    name="eth-over-myrinet",
    latency=60e-6,
    bandwidth=220e6,
    per_message_overhead=5e-6,
)

#: Intranode shared-memory "fabric" used by Nemesis between two processes of
#: a dual-processor node (no packet queues: lock-free memory copies).
SHARED_MEMORY = Fabric(
    name="shm",
    latency=0.8e-6,
    bandwidth=1.5e9,
    per_message_overhead=0.3e-6,
    queue_mtus=0.0,
)

#: Renater WAN between Grid'5000 sites: ~2 orders of magnitude more latency
#: than GigE and a per-stream bandwidth ~20x below the intra-cluster rate,
#: matching the paper's NetPIPE observation.
GRID5000_WAN = Fabric(
    name="grid5000-wan",
    latency=5e-3,
    bandwidth=1e9,
    per_message_overhead=5e-6,
    per_flow_cap=117e6 / 20.0,
    queue_mtus=16.0,
)
