"""Run the perf workload suite, compare against the committed baseline.

The contract of ``BENCH_engine.json`` (repo root):

* ``workloads`` — one entry per workload: useful-event count, engine pops,
  best-of-N wall seconds, and ``events_per_sec`` (the regression metric);
* ``kernel_before`` — the same measurements taken on the pre-overhaul
  kernel (generation-checked flow timers, linear tracer scan), kept so the
  speedup claim stays auditable;
* ``meta`` — suite name, repeat count, schema tag.

Regression policy is two independent checks:

* **Determinism** (:func:`compare_counts`) — each workload's ``events`` and
  ``pops`` must match the baseline *exactly*.  The workloads are
  deterministic simulations, so any drift means the kernel's observable
  behaviour changed (an optimisation reordered events, a protocol edit
  moved work) — a hard failure no matter how fast the machine is.
* **Throughput** (:func:`compare_to_baseline`) — ``events_per_sec`` must
  not fall more than ``tolerance`` (default 30%) below the baseline.  This
  is a pure wall-time guard; the head-room absorbs CI-runner noise while
  still catching a lost optimisation (the kernel overhaul is a >2x swing).
  CI runs it in advisory mode (``--wall-advisory``): a slow shared runner
  alone cannot fail the job, because the determinism check already pins
  everything wall time cannot.
"""

from __future__ import annotations

import gc
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.perf.workloads import WORKLOADS, WorkloadRun, suite_params

__all__ = [
    "BenchResult",
    "DEFAULT_BASELINE",
    "DEFAULT_TOLERANCE",
    "run_workload",
    "run_suite",
    "suite_report",
    "load_baseline",
    "compare_to_baseline",
    "compare_counts",
]

#: committed baseline file, resolved relative to the working directory
DEFAULT_BASELINE = "BENCH_engine.json"

#: relative events/sec drop that counts as a regression
DEFAULT_TOLERANCE = 0.30


@dataclass
class BenchResult:
    """One workload's measurement (best wall time over ``repeat`` runs)."""

    name: str
    wall: float
    events: int
    pops: int
    events_per_sec: float
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "wall_seconds": round(self.wall, 6),
            "events": self.events,
            "pops": self.pops,
            "events_per_sec": round(self.events_per_sec, 1),
            "extra": self.extra,
        }


def run_workload(
    name: str,
    params: Optional[Dict[str, Any]] = None,
    repeat: int = 3,
    clock: Callable[[], float] = time.perf_counter,
) -> BenchResult:
    """Measure one workload; keeps the fastest of ``repeat`` runs.

    Best-of-N is the standard microbench reduction: the minimum is the run
    least perturbed by the host, and the workloads are deterministic so
    every run does identical work.
    """
    workload = WORKLOADS[name]
    params = dict(params or {})
    best_wall: Optional[float] = None
    run: Optional[WorkloadRun] = None
    # Pause the cyclic collector while measuring: a collection landing
    # mid-run charges its cost to whichever workload was unlucky.  The
    # workloads allocate freely, so collect eagerly between runs instead.
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(max(1, repeat)):
            gc.collect()
            if gc_was_enabled:
                gc.disable()
            started = clock()
            candidate = workload(**params)
            wall = clock() - started
            if gc_was_enabled:
                gc.enable()
            if best_wall is None or wall < best_wall:
                best_wall, run = wall, candidate
    finally:
        if gc_was_enabled:
            gc.enable()
    assert run is not None and best_wall is not None
    wall = max(best_wall, 1e-9)
    return BenchResult(
        name=name,
        wall=wall,
        events=run.events,
        pops=run.pops,
        events_per_sec=run.events / wall if run.events else 0.0,
        extra=run.extra,
    )


def run_suite(suite: str = "smoke", repeat: int = 3,
              only: Optional[List[str]] = None,
              progress: Optional[Callable[[BenchResult], None]] = None,
              ) -> Dict[str, BenchResult]:
    """Measure every workload of ``suite`` in declaration order."""
    params = suite_params(suite)
    results: Dict[str, BenchResult] = {}
    for name in WORKLOADS:
        if only and name not in only:
            continue
        result = run_workload(name, params.get(name, {}), repeat=repeat)
        results[name] = result
        if progress is not None:
            progress(result)
    return results


def suite_report(results: Dict[str, BenchResult], suite: str, repeat: int,
                 kernel_before: Optional[Dict[str, Any]] = None,
                 ) -> Dict[str, Any]:
    """The JSON document written to ``BENCH_engine.json``."""
    report: Dict[str, Any] = {
        "schema": "repro.perf/1",
        "meta": {"suite": suite, "repeat": repeat,
                 "metric": "events_per_sec (fixed work / wall seconds)"},
        "workloads": {name: r.to_dict() for name, r in results.items()},
    }
    if kernel_before:
        report["kernel_before"] = kernel_before
        before = kernel_before.get("flow_churn", {}).get("events_per_sec")
        after = results.get("flow_churn")
        if before and after:
            report["meta"]["flow_churn_speedup_vs_before"] = round(
                after.events_per_sec / before, 2)
    return report


def load_baseline(path: str = DEFAULT_BASELINE) -> Optional[Dict[str, Any]]:
    """The committed baseline document, or None when absent."""
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def compare_to_baseline(
    results: Dict[str, BenchResult],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Wall-time regression messages (empty when every workload holds).

    Only workloads present in both the run and the baseline are compared,
    so a smoke run checks cleanly against a full-suite baseline.  This is
    the timing-dependent half of the gate; :func:`compare_counts` is the
    deterministic half.
    """
    regressions: List[str] = []
    for name, entry in baseline.get("workloads", {}).items():
        current = results.get(name)
        want = entry.get("events_per_sec", 0.0)
        if current is None or not want:
            continue
        floor = want * (1.0 - tolerance)
        if current.events_per_sec < floor:
            regressions.append(
                f"{name}: {current.events_per_sec:.0f} events/s is "
                f"{100 * (1 - current.events_per_sec / want):.0f}% below the "
                f"baseline {want:.0f} (tolerance {tolerance:.0%})"
            )
    return regressions


def compare_counts(
    results: Dict[str, BenchResult],
    baseline: Dict[str, Any],
) -> List[str]:
    """Deterministic-count mismatches against the baseline (empty = clean).

    A workload's ``events`` and ``pops`` are functions of its parameters
    and the kernel's deterministic total event order — never of the host —
    so an exact comparison catches behavioural drift that the wall-time
    gate cannot see (and that wall-time noise cannot excuse).  The caveat:
    a *smoke* run's counts differ from the committed *full*-suite baseline
    by design, so callers must only compare counts measured with the
    baseline's own suite parameters (``python -m repro.perf`` checks the
    stored ``meta.suite`` and skips the count check on a suite mismatch).
    """
    mismatches: List[str] = []
    for name, entry in baseline.get("workloads", {}).items():
        current = results.get(name)
        if current is None:
            continue
        want_events = entry.get("events")
        want_pops = entry.get("pops")
        if want_events is not None and current.events != want_events:
            mismatches.append(
                f"{name}: {current.events} events, baseline has "
                f"{want_events} — deterministic workload changed behaviour"
            )
        if want_pops is not None and current.pops != want_pops:
            mismatches.append(
                f"{name}: {current.pops} engine pops, baseline has "
                f"{want_pops} — deterministic workload changed behaviour"
            )
    return mismatches
