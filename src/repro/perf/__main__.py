"""Perf-suite CLI.

Run the suite and check against the committed baseline (CI's perf-smoke
job)::

    python -m repro.perf --suite smoke

Refresh the baseline after an intentional perf change::

    python -m repro.perf --suite full --update

``--no-check`` measures without judging; ``--only`` restricts to named
workloads; ``--json`` additionally writes the report somewhere else.

The check has two halves (see :mod:`repro.perf.bench`): exact
``events``/``pops`` counts (deterministic, always gating when the run's
suite matches the baseline's) and events/sec wall throughput (noisy;
``--wall-advisory`` demotes its failures to warnings so a slow CI runner
alone cannot fail the job).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.perf.bench import (
    DEFAULT_BASELINE,
    DEFAULT_TOLERANCE,
    compare_counts,
    compare_to_baseline,
    load_baseline,
    run_suite,
    suite_report,
)
from repro.perf.workloads import SUITES, WORKLOADS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Measure the engine/harness workload suite and fail on "
                    "events/sec regression vs. the committed "
                    "BENCH_engine.json baseline.",
    )
    parser.add_argument("--suite", default="smoke", choices=sorted(SUITES),
                        help="workload sizes (default: smoke)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per workload, best wall time kept "
                             "(default 3)")
    parser.add_argument("--only", nargs="*", choices=sorted(WORKLOADS),
                        help="run only these workloads")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help=f"baseline JSON path (default {DEFAULT_BASELINE})")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative events/sec drop "
                             "(default 0.30)")
    parser.add_argument("--no-check", action="store_true",
                        help="measure only; skip the baseline comparison")
    parser.add_argument("--wall-advisory", action="store_true",
                        help="report events/sec regressions as warnings "
                             "instead of failures; the deterministic "
                             "events/pops count check still gates")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with this run "
                             "(preserves the recorded kernel_before)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report JSON here")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    def progress(result) -> None:
        print(f"  {result.name:<12} {result.events_per_sec:>12.0f} events/s"
              f"  ({result.events} events, {result.wall * 1e3:.1f} ms wall)")

    print(f"perf suite {args.suite!r} (best of {args.repeat}):")
    results = run_suite(args.suite, repeat=args.repeat, only=args.only,
                        progress=progress)

    baseline = load_baseline(args.baseline)
    kernel_before = (baseline or {}).get("kernel_before")
    report = suite_report(results, args.suite, args.repeat,
                          kernel_before=kernel_before)

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report: {args.json}")

    if args.update:
        with open(args.baseline, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if args.no_check:
        return 0
    if baseline is None:
        print(f"no baseline at {args.baseline}; run with --update to create "
              "one", file=sys.stderr)
        return 0
    if args.only:
        baseline = dict(baseline)
        baseline["workloads"] = {
            name: entry
            for name, entry in baseline.get("workloads", {}).items()
            if name in args.only
        }
    failures: List[str] = []
    baseline_suite = (baseline.get("meta") or {}).get("suite")
    if baseline_suite == args.suite:
        failures.extend(compare_counts(results, baseline))
    else:
        print(f"note: counts not compared (run suite {args.suite!r} != "
              f"baseline suite {baseline_suite!r})")
    wall_regressions = compare_to_baseline(results, baseline,
                                           tolerance=args.tolerance)
    if args.wall_advisory:
        for message in wall_regressions:
            print(f"ADVISORY {message}", file=sys.stderr)
    else:
        failures.extend(wall_regressions)
    if failures:
        for message in failures:
            print(f"REGRESSION {message}", file=sys.stderr)
        return 1
    print("no regressions vs. baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
