"""Performance as a measured subsystem.

The reproduction's performance claims follow the same discipline as its
protocol claims: measured, committed, and regression-guarded.  This package
owns the workload suite (:mod:`repro.perf.workloads`), the bench runner and
baseline comparison (:mod:`repro.perf.bench`), and the
``python -m repro.perf`` CLI that CI runs against the committed
``BENCH_engine.json``.  See ``docs/PERF.md`` for the performance model and
how to read the numbers.
"""

from repro.perf.bench import (
    DEFAULT_BASELINE,
    DEFAULT_TOLERANCE,
    BenchResult,
    compare_to_baseline,
    load_baseline,
    run_suite,
    run_workload,
    suite_report,
)
from repro.perf.workloads import SUITES, WORKLOADS, WorkloadRun

__all__ = [
    "BenchResult",
    "WorkloadRun",
    "WORKLOADS",
    "SUITES",
    "DEFAULT_BASELINE",
    "DEFAULT_TOLERANCE",
    "run_workload",
    "run_suite",
    "suite_report",
    "load_baseline",
    "compare_to_baseline",
]
