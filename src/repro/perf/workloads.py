"""The measured workload suite behind ``python -m repro.perf``.

Each workload is a deterministic, self-contained simulation whose cost is
dominated by one layer of the stack the figures depend on:

* ``flow_churn`` — the event kernel + fluid-flow scheduler under heavy
  neighbour churn: a pool of cap-bottlenecked background flows sharing a
  backbone link with a stream of short uncapped transfers (the Fig. 5
  regime: checkpoint image transfers crossing a contended NIC).  Every
  start/finish re-rates the whole neighbourhood, so this is the microbench
  that exposes the per-re-rate timer cost.
* ``netpipe`` — the ping-pong calibration sweep over the Grid'5000 model
  (message layer + WAN fabrics).
* ``bt_wave`` — one harness-style run: BT under Pcl with checkpoint waves,
  monitors on, exactly like a figure grid point.
* ``dcl_wave`` — the same grid point under the message-drain (Dcl)
  protocol: counter reports and quiescence detection replace the channel
  flush, so this isolates the drain machinery's cost.  Non-gating until a
  baseline refresh records it (``compare_to_baseline`` only judges
  workloads present in the stored baseline).
* ``scale_337`` — the paper's scale boundary: an FTPM launch of 337
  processes (the count the Vcl dispatcher refuses, see Sec. 5.4) running a
  token ring, measuring the process/connection fan-out cost.
* ``scale_10k`` — the same launch-and-wave at the FTPM ceiling: 10,000
  ranks (``FTPM_MAX_PROCESSES``), one token-ring round.  This is the
  figure scale the kernel optimisations target; it keeps the per-rank
  constant factor of launch, connect and message dispatch honest where a
  337-rank run would hide an O(n) term in the noise.
* ``chaos_kill`` — one smoke-grid chaos scenario (node kill inside wave 1,
  rollback, restart) through :func:`repro.chaos.run_scenario`.

Workloads report ``events`` — a *workload-defined* useful-event count
(flow completions, messages, engine pops; fixed for fixed parameters) — so
``events/sec`` ratios between two kernels equal their wall-time speedup
rather than rewarding a kernel for popping its own dead timers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

__all__ = ["WorkloadRun", "WORKLOADS", "SUITES", "suite_params"]


@dataclass
class WorkloadRun:
    """What one workload execution observed (wall time is measured outside)."""

    #: workload-defined useful events (fixed for fixed parameters)
    events: int
    #: engine heap pops, when a simulator was observable
    pops: int = 0
    #: workload-specific scalars worth keeping in the bench JSON
    extra: Dict[str, Any] = field(default_factory=dict)


# --------------------------------------------------------------------- kernel
def flow_churn(churn: int = 400, persistent: int = 64,
               cancel_every: int = 7) -> WorkloadRun:
    """Kernel/flow-scheduler microbench: neighbour churn on a shared link.

    ``persistent`` long-lived flows cross a backbone at a hard cap far below
    their fair share — their rate never changes, but every churn event still
    re-rates them.  ``churn`` short uncapped flows start staggered on the
    same backbone; every ``cancel_every``-th one is cancelled mid-flight.
    """
    from repro.net.flows import FlowScheduler
    from repro.net.link import Link
    from repro.sim import make_simulator

    sim = make_simulator(seed=7)
    scheduler = FlowScheduler(sim)
    backbone = Link("backbone", 1e9)

    completions = 0

    def on_done(event) -> None:
        nonlocal completions
        if event.ok:
            completions += 1

    # Cap-bottlenecked background pool: rate pinned well below any share the
    # backbone can offer while churn flows come and go.
    cap = backbone.capacity / (4.0 * persistent)
    for i in range(persistent):
        private = Link(f"p{i}", 1e9)
        flow = scheduler.start([private, backbone], nbytes=4e7, cap=cap)
        flow.done.callbacks.append(on_done)

    # Staggered churn: short transfers whose rate is the backbone share.
    dt = 0.01
    churn_bytes = backbone.capacity / (persistent + 2) * (dt * 0.6)

    def start_churn(index: int) -> None:
        flow = scheduler.start([backbone], nbytes=churn_bytes)
        flow.done.callbacks.append(on_done)
        if cancel_every and index % cancel_every == cancel_every - 1:
            sim.call_at(dt * 0.3, scheduler.cancel, flow)

    for i in range(churn):
        sim.call_at(i * dt, start_churn, i)

    sim.run()
    assert not scheduler.active, "flow_churn must drain every flow"
    return WorkloadRun(
        events=completions,
        pops=sim.events_processed,
        extra={"churn": churn, "persistent": persistent,
               "heap_peak_hint": len(sim._heap)},
    )


# -------------------------------------------------------------------- netpipe
def netpipe(repeats: int = 3) -> WorkloadRun:
    """The NetPIPE calibration sweep, intra- and inter-cluster."""
    from repro.net import grid5000
    from repro.net.topology import Endpoint
    from repro.sim import make_simulator
    from repro.tools import run_netpipe

    sim = make_simulator(seed=3)
    grid = grid5000(sim)
    orsay = grid.clusters["orsay"].nodes
    rennes = grid.clusters["rennes"].nodes
    intra = run_netpipe(sim, grid, Endpoint(orsay[0], 0),
                        Endpoint(orsay[1], 0), repeats=repeats)
    inter = run_netpipe(sim, grid, Endpoint(orsay[2], 0),
                        Endpoint(rennes[0], 0), repeats=repeats)
    return WorkloadRun(
        events=sim.events_processed,
        pops=sim.events_processed,
        extra={"samples": len(intra) + len(inter)},
    )


# -------------------------------------------------------------------- bt wave
def bt_wave(n_procs: int = 16, scale: float = 0.05) -> WorkloadRun:
    """One figure-style grid point: BT under Pcl with checkpoint waves."""
    from repro.apps import BT
    from repro.harness.config import get_profile
    from repro.harness.runner import execute

    profile = get_profile("smoke", seed=0)
    bench = BT(klass="B", scale=scale)
    result = execute(bench, n_procs, "pcl", profile, period=30.0,
                     procs_per_node=2, name="perf-bt-wave")
    pops = int(result.meta.get("events", 0))
    extra: Dict[str, Any] = {"completion": result.completion,
                             "waves": result.waves}
    snapshot = result.meta.get("metrics")
    if snapshot:
        # metrics-on bench runs (REPRO_METRICS) surface the wave phase
        # decomposition so an events/sec swing can be attributed
        from repro.obs import phase_totals

        extra["wave_phase_seconds"] = {
            phase: round(seconds, 6)
            for phase, seconds in sorted(phase_totals(snapshot).items())
        }
    return WorkloadRun(events=pops, pops=pops, extra=extra)


# ------------------------------------------------------------------- dcl wave
def dcl_wave(n_procs: int = 16, scale: float = 0.05) -> WorkloadRun:
    """The ``bt_wave`` grid point under Dcl: drain-to-quiescence waves."""
    from repro.apps import BT
    from repro.harness.config import get_profile
    from repro.harness.runner import execute

    profile = get_profile("smoke", seed=0)
    bench = BT(klass="B", scale=scale)
    result = execute(bench, n_procs, "dcl", profile, period=30.0,
                     procs_per_node=2, name="perf-dcl-wave")
    pops = int(result.meta.get("events", 0))
    extra: Dict[str, Any] = {"completion": result.completion,
                             "waves": result.waves}
    snapshot = result.meta.get("metrics")
    if snapshot:
        from repro.obs import phase_totals

        extra["wave_phase_seconds"] = {
            phase: round(seconds, 6)
            for phase, seconds in sorted(phase_totals(snapshot).items())
        }
    return WorkloadRun(events=pops, pops=pops, extra=extra)


# ---------------------------------------------------------------- scale point
def scale_337(n_procs: int = 337, rounds: int = 2) -> WorkloadRun:
    """FTPM launch at the select() wall: 337 processes, token ring.

    The Vcl dispatcher refuses this count (1024-descriptor select() set,
    3 sockets/process); FTPM admits it.  The cost is process spawn plus the
    connection fan-out — the launch-layer hot path of the grid figures.
    """
    from repro.apps.synthetic import token_ring
    from repro.runtime import DeploymentSpec, build_run
    from repro.sim import make_simulator

    sim = make_simulator(seed=11)
    spec = DeploymentSpec(n_procs=n_procs, protocol=None, launcher="ftpm",
                          procs_per_node=2)
    run = build_run(sim, spec, token_ring(rounds=rounds), name="perf-scale")
    run.start()
    sim.run_until_complete(run.completed, limit=1e8)
    return WorkloadRun(
        events=sim.events_processed,
        pops=sim.events_processed,
        extra={"n_procs": n_procs, "rounds": rounds},
    )


def scale_10k(n_procs: int = 10_000, rounds: int = 1) -> WorkloadRun:
    """FTPM launch at its ceiling: a 10,000-rank token-ring wave.

    Identical machinery to ``scale_337`` (spawn, connection fan-out, ring
    messaging), at the scale the 10k-rank figures need.  One round of the
    ring is ~30x the event count of the full scale_337 run, so this is the
    suite's heavyweight: it exists to keep per-rank constants linear, not
    to be fast.
    """
    from repro.apps.synthetic import token_ring
    from repro.runtime import DeploymentSpec, build_run
    from repro.sim import make_simulator

    sim = make_simulator(seed=13)
    spec = DeploymentSpec(n_procs=n_procs, protocol=None, launcher="ftpm",
                          procs_per_node=2,
                          n_compute_nodes=(n_procs + 1) // 2)
    run = build_run(sim, spec, token_ring(rounds=rounds), name="perf-scale10k")
    run.start()
    sim.run_until_complete(run.completed, limit=1e8)
    return WorkloadRun(
        events=sim.events_processed,
        pops=sim.events_processed,
        extra={"n_procs": n_procs, "rounds": rounds},
    )


# ------------------------------------------------------------------ chaos run
def chaos_kill() -> WorkloadRun:
    """One smoke-grid chaos scenario: node kill inside wave 1, recovery."""
    from repro.chaos import Scenario, run_scenario

    scenario = Scenario(protocol="pcl", channel="ft_sock", procs_per_node=2,
                        kill="node", victim=1, kill_time=1.7, seed=0)
    result = run_scenario(scenario)
    # The scenario is fixed, so its verdict doubles as a sanity check.
    ok = result.verdict in ("recovered", "completed")
    return WorkloadRun(
        events=result.events,
        pops=result.events,
        extra={"verdict": result.verdict, "ok": ok,
               "completion": result.completion},
    )


#: name -> workload callable (keyword-parameterised by the suite)
WORKLOADS: Dict[str, Callable[..., WorkloadRun]] = {
    "flow_churn": flow_churn,
    "netpipe": netpipe,
    "bt_wave": bt_wave,
    "dcl_wave": dcl_wave,
    "scale_337": scale_337,
    "scale_10k": scale_10k,
    "chaos_kill": chaos_kill,
}

#: per-suite parameter overrides; ``smoke`` is CI-sized, ``full`` the default
SUITES: Dict[str, Dict[str, Dict[str, Any]]] = {
    "smoke": {
        "flow_churn": {"churn": 200, "persistent": 48},
        "netpipe": {"repeats": 2},
        "bt_wave": {"n_procs": 16, "scale": 0.05},
        "dcl_wave": {"n_procs": 16, "scale": 0.05},
        "scale_337": {"n_procs": 337, "rounds": 1},
        "scale_10k": {"n_procs": 10_000, "rounds": 1},
        "chaos_kill": {},
    },
    "full": {
        "flow_churn": {"churn": 400, "persistent": 64},
        "netpipe": {"repeats": 3},
        "bt_wave": {"n_procs": 36, "scale": 0.05},
        "dcl_wave": {"n_procs": 36, "scale": 0.05},
        "scale_337": {"n_procs": 337, "rounds": 2},
        "scale_10k": {"n_procs": 10_000, "rounds": 1},
        "chaos_kill": {},
    },
}


def suite_params(suite: str) -> Dict[str, Dict[str, Any]]:
    """Parameter map for ``suite`` (raises ``KeyError`` for unknown names)."""
    if suite not in SUITES:
        raise KeyError(f"unknown perf suite {suite!r}; have {sorted(SUITES)}")
    return SUITES[suite]
