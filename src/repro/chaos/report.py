"""Campaign results: aggregation, JSON artifact, markdown table."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

__all__ = ["CampaignResult", "write_report"]


@dataclass
class CampaignResult:
    """All scenario results of one campaign run."""

    name: str
    results: List["ScenarioResult"] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def counts(self) -> Dict[str, int]:
        """Verdict histogram, sorted by verdict name."""
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.verdict] = counts.get(result.verdict, 0) + 1
        return dict(sorted(counts.items()))

    def failures(self) -> List["ScenarioResult"]:
        return [result for result in self.results if not result.ok]

    # ------------------------------------------------------------- artifacts
    def to_dict(self) -> dict:
        return {
            "campaign": self.name,
            "scenarios": len(self.results),
            "ok": self.ok,
            "verdicts": self.counts(),
            "results": [result.to_dict() for result in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        """Campaign summary plus a per-scenario verdict table."""
        lines = [
            f"# Chaos campaign: {self.name}",
            "",
            f"{len(self.results)} scenarios — "
            + ("**all passed**" if self.ok
               else f"**{len(self.failures())} FAILED**"),
            "",
            "| verdict | count |",
            "|---|---|",
        ]
        lines.extend(f"| {verdict} | {count} |"
                     for verdict, count in self.counts().items())
        lines += [
            "",
            "| scenario | verdict | restarts | waves | completion | detail |",
            "|---|---|---|---|---|---|",
        ]
        for result in self.results:
            completion = ("-" if result.completion is None
                          else f"{result.completion:.2f}")
            mark = "" if result.ok else " ⚠"
            lines.append(
                f"| {result.scenario.label} | {result.verdict}{mark} "
                f"| {result.restarts} | {result.waves} | {completion} "
                f"| {result.detail or '-'} |"
            )
        lines.append("")
        return "\n".join(lines)


def write_report(campaign: CampaignResult, out_dir: str) -> Tuple[Path, Path]:
    """Write ``<name>.json`` and ``<name>.md`` under ``out_dir``; returns
    both paths (JSON first)."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / f"{campaign.name}.json"
    md_path = directory / f"{campaign.name}.md"
    json_path.write_text(campaign.to_json() + "\n", encoding="utf-8")
    md_path.write_text(campaign.to_markdown(), encoding="utf-8")
    return json_path, md_path
