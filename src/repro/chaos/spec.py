"""Scenario and campaign specifications.

A :class:`Scenario` is one fully-determined run: which protocol and channel,
how the ranks are packed onto nodes, what failure is injected and when, and
the seed.  Everything is a plain value so scenarios round-trip through JSON
and two runs of the same scenario are byte-identical (the determinism
contract of :mod:`repro.sim`).

Times follow the harness conventions: ``period`` is in *paper* seconds
(scaled by the profile's ``time_scale``, like
:func:`repro.harness.runner.execute`), while ``kill_time`` is in *simulated*
seconds — a kill targets a point on the run's actual timeline, e.g. inside a
specific checkpoint wave.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Scenario",
    "CampaignSpec",
    "smoke_campaign",
    "storage_campaign",
    "dcl_campaign",
    "recovery_campaign",
    "KILL_KINDS",
    "STORAGE_FAULTS",
    "RECOVERY_POLICIES",
]

#: valid failure kinds; None in a scenario means "no failure injected"
KILL_KINDS = ("task", "node")

#: valid storage-tier faults; None means "storage stays healthy"
STORAGE_FAULTS = ("server_kill", "image_corrupt")

#: recovery strategies after a failure (see docs/RECOVERY.md)
RECOVERY_POLICIES = ("restart", "spare", "shrink")

#: the paper's channel(s) for each protocol implementation (see
#: :func:`repro.harness.runner.default_channel`; Nemesis is the MPICH2
#: shared-memory/Myrinet device, the procs_per_node=2 regime of Fig. 7)
PROTOCOL_CHANNELS = (
    ("pcl", "ft_sock"),
    ("pcl", "nemesis"),
    ("vcl", "ch_v"),
)


@dataclass(frozen=True)
class Scenario:
    """One fault-injection run, fully determined by its fields."""

    protocol: str
    channel: str
    procs_per_node: int = 1
    #: "task" (kill one MPI process), "node" (kill its machine), or None
    kill: Optional[str] = None
    #: rank whose task/node is killed
    victim: int = 0
    #: simulated seconds at which the kill fires
    kill_time: float = 0.0
    seed: int = 0
    n_procs: int = 4
    #: checkpoint period in paper seconds (profile-scaled at run time)
    period: float = 30.0
    bench: str = "bt"
    klass: str = "B"
    scale: float = 0.05
    network: str = "gige"
    n_servers: int = 1
    #: checkpoint images stream to this many servers (quorum commit)
    replication: int = 1
    #: committed waves each server retains (GC depth)
    gc_keep: int = 1
    #: "server_kill", "image_corrupt", or None (healthy storage tier)
    storage_fault: Optional[str] = None
    #: index of the checkpoint server hit by the storage fault
    storage_victim: int = 0
    #: simulated seconds at which the storage fault fires
    storage_time: float = 0.0
    #: recovery strategy: "restart" (the paper's full rollback), "spare"
    #: (promote pre-allocated spares) or "shrink" (survivors re-decompose)
    policy: str = "restart"
    #: pre-allocated spare nodes for the "spare" policy
    spares: int = 0
    #: additional kills after the first: ("task" | "node", rank, at)
    #: triples — cascading/correlated failures, including kills landing
    #: inside an in-progress recovery
    extra_kills: Tuple[Tuple[str, int, float], ...] = ()
    #: when non-empty, *these* verdicts count as ok instead of OK_VERDICTS —
    #: e.g. a K=1 server kill is expected to end "storage-unrecoverable"
    expect: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kill is not None and self.kill not in KILL_KINDS:
            raise ValueError(f"unknown kill kind {self.kill!r} "
                             f"(expected one of {KILL_KINDS} or None)")
        if self.kill is not None and not 0 <= self.victim < self.n_procs:
            raise ValueError(f"victim rank {self.victim} outside job of "
                             f"{self.n_procs} processes")
        if self.kill is not None and self.kill_time < 0:
            raise ValueError("kill_time must be >= 0")
        if self.storage_fault is not None:
            if self.storage_fault not in STORAGE_FAULTS:
                raise ValueError(
                    f"unknown storage fault {self.storage_fault!r} "
                    f"(expected one of {STORAGE_FAULTS} or None)")
            if not 0 <= self.storage_victim < self.n_servers:
                raise ValueError(
                    f"storage victim {self.storage_victim} outside "
                    f"{self.n_servers} server(s)")
            if self.storage_time < 0:
                raise ValueError("storage_time must be >= 0")
        if not 1 <= self.replication <= self.n_servers:
            raise ValueError(
                f"replication must be between 1 and n_servers "
                f"({self.n_servers}), got {self.replication}")
        if self.gc_keep < 1:
            raise ValueError("gc_keep must be >= 1")
        if self.policy not in RECOVERY_POLICIES:
            raise ValueError(f"unknown recovery policy {self.policy!r} "
                             f"(expected one of {RECOVERY_POLICIES})")
        if self.spares < 0:
            raise ValueError("spares must be >= 0")
        for kind, victim, at in self.extra_kills:
            if kind not in KILL_KINDS:
                raise ValueError(f"unknown extra kill kind {kind!r} "
                                 f"(expected one of {KILL_KINDS})")
            if not 0 <= victim < self.n_procs:
                raise ValueError(f"extra kill victim {victim} outside job "
                                 f"of {self.n_procs} processes")
            if at < 0:
                raise ValueError("extra kill time must be >= 0")

    @property
    def label(self) -> str:
        """Stable human-readable identifier, unique within a campaign."""
        if self.kill is None:
            fault = "nokill"
        else:
            fault = f"{self.kill}-r{self.victim}@{self.kill_time:g}"
        for kind, victim, at in self.extra_kills:
            fault += f"+{kind}-r{victim}@{at:g}"
        if self.policy != "restart":
            fault += f"-{self.policy}"
        if self.spares:
            fault += f"-sp{self.spares}"
        storage = ""
        if self.replication != 1:
            storage += f"-K{self.replication}"
        if self.gc_keep != 1:
            storage += f"-gc{self.gc_keep}"
        if self.storage_fault is not None:
            storage += (f"-{self.storage_fault}-cs{self.storage_victim}"
                        f"@{self.storage_time:g}")
        bench = "" if self.bench == "bt" else f"-{self.bench}"
        return (f"{self.protocol}-{self.channel}{bench}"
                f"-ppn{self.procs_per_node}"
                f"-{fault}{storage}-s{self.seed}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        data = dict(data)
        # JSON round-trips tuples as lists
        if "expect" in data:
            data["expect"] = tuple(data["expect"])
        if "extra_kills" in data:
            data["extra_kills"] = tuple(
                (kind, victim, at)
                for kind, victim, at in data["extra_kills"])
        return cls(**data)


@dataclass
class CampaignSpec:
    """A named, ordered collection of scenarios plus run-time policy."""

    scenarios: List[Scenario] = field(default_factory=list)
    name: str = "campaign"
    #: simulated-time budget per scenario, as a multiple of the benchmark's
    #: failure-free expected time (recovery replays lost work, so > 2)
    time_limit_factor: float = 8.0

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def filtered(self, substring: str) -> "CampaignSpec":
        """Sub-campaign of the scenarios whose label contains ``substring``."""
        return CampaignSpec(
            scenarios=[s for s in self.scenarios if substring in s.label],
            name=self.name,
            time_limit_factor=self.time_limit_factor,
        )

    def with_policy(self, policy: str) -> "CampaignSpec":
        """Sub-campaign of the scenarios using one recovery ``policy``."""
        if policy not in RECOVERY_POLICIES:
            raise ValueError(f"unknown recovery policy {policy!r} "
                             f"(expected one of {RECOVERY_POLICIES})")
        return CampaignSpec(
            scenarios=[s for s in self.scenarios if s.policy == policy],
            name=self.name,
            time_limit_factor=self.time_limit_factor,
        )

    @classmethod
    def grid(
        cls,
        combos: Sequence[Tuple[str, str]] = PROTOCOL_CHANNELS,
        procs_per_node: Iterable[int] = (1, 2),
        kills: Iterable[Optional[str]] = KILL_KINDS,
        kill_times: Iterable[float] = (1.7,),
        victims: Iterable[int] = (1,),
        seeds: Iterable[int] = (0,),
        name: str = "grid",
        **scenario_kwargs,
    ) -> "CampaignSpec":
        """Cartesian sweep over the given axes.

        ``kills`` may include ``None`` for failure-free control scenarios
        (those collapse the kill-time/victim axes to a single entry).
        """
        scenarios = []
        for (protocol, channel), ppn, kill, seed in itertools.product(
                combos, procs_per_node, kills, seeds):
            fault_axes = (
                itertools.product(kill_times, victims) if kill is not None
                else ((0.0, 0),)
            )
            for kill_time, victim in fault_axes:
                scenarios.append(Scenario(
                    protocol=protocol, channel=channel, procs_per_node=ppn,
                    kill=kill, victim=victim, kill_time=kill_time, seed=seed,
                    **scenario_kwargs,
                ))
        return cls(scenarios=scenarios, name=name)


def storage_campaign(seed: int = 0) -> CampaignSpec:
    """Checkpoint-*storage* resilience sweep: 12 scenarios.

    Every scenario pairs a storage-tier fault with a node kill (a server
    death alone never takes the job down — ranks only notice at restart
    time), over both TCP implementations.  At the smoke scale wave 1 spans
    ~1.5–2.1 simulated seconds and commits at ~2.1; wave 2 commits at ~4.2.

    Per protocol/channel combo:

    * K=2 server kill after wave 1 commits (t=2.4) — restart must fetch the
      victim's image from the surviving replica;
    * K=2 server kill *inside* wave 1 (t=1.7) — quorum degrades mid-upload;
    * K=2 single-replica corruption (t=2.4) — checksum rejects the bad copy,
      the fetch retries the intact replica;
    * K=1, gc_keep=2 corruption after wave 2 commits (t=4.45: the commit
      lands at 4.15 for Pcl, 4.38 for Vcl) — the only wave-2 copy is bad,
      restart falls back to the retained wave 1;
    * K=1 server kill — the sole replica set is gone: the run must end in a
      clean classified ``storage-unrecoverable``, not a hang;
    * K=1 corruption of the victim's sole replica — likewise unrecoverable.
    """
    scenarios = []
    for protocol, channel in (("pcl", "ft_sock"), ("vcl", "ch_v")):
        common = dict(protocol=protocol, channel=channel, seed=seed)
        scenarios += [
            Scenario(kill="node", victim=1, kill_time=2.8,
                     n_servers=2, replication=2,
                     storage_fault="server_kill", storage_victim=0,
                     storage_time=2.4, **common),
            Scenario(kill="node", victim=1, kill_time=2.8,
                     n_servers=2, replication=2,
                     storage_fault="server_kill", storage_victim=0,
                     storage_time=1.7, **common),
            Scenario(kill="node", victim=1, kill_time=2.8,
                     n_servers=2, replication=2,
                     storage_fault="image_corrupt", storage_victim=0,
                     storage_time=2.4, **common),
            Scenario(kill="node", victim=1, kill_time=4.6, gc_keep=2,
                     storage_fault="image_corrupt", storage_victim=0,
                     storage_time=4.45, **common),
            Scenario(kill="node", victim=1, kill_time=2.8,
                     storage_fault="server_kill", storage_victim=0,
                     storage_time=2.4,
                     expect=("storage-unrecoverable",), **common),
            Scenario(kill="node", victim=1, kill_time=2.8,
                     storage_fault="image_corrupt", storage_victim=0,
                     storage_time=2.4,
                     expect=("storage-unrecoverable",), **common),
        ]
    return CampaignSpec(scenarios=scenarios, name="storage")


def dcl_campaign(seed: int = 0) -> CampaignSpec:
    """Message-drain (Dcl) fault sweep: 12 scenarios.

    Kills land inside the first drain wave (t=1.7: wave 1 spans ~1.5–2.1
    at the smoke scale, and the drain window sits inside it) and between
    waves (t=2.8) — the inside-wave kills exercise wave abort while send
    gates are closed and counter reports are in flight.  Dcl rides the
    MPICH2 devices like Pcl: ft-sock at 1 and 2 processes per node
    (2 ppn × 2 kill kinds × 2 kill times = 8) plus Nemesis at 2 per node
    (shared-memory intra-node paths under the drain stopper; 4 more).
    """
    sweep = CampaignSpec.grid(
        combos=(("dcl", "ft_sock"),),
        procs_per_node=(1, 2),
        kill_times=(1.7, 2.8),
        seeds=(seed,),
        name="dcl",
    )
    nemesis = CampaignSpec.grid(
        combos=(("dcl", "nemesis"),),
        procs_per_node=(2,),
        kill_times=(1.7, 2.8),
        seeds=(seed,),
    )
    sweep.scenarios.extend(nemesis.scenarios)
    return sweep


def recovery_campaign(seed: int = 0) -> CampaignSpec:
    """Survivor-recovery chaos: cascading and correlated failures, 30
    scenarios (10 per protocol family).

    Exercises every recovery policy under the failure shapes that a single
    kill never produces: double faults coalescing into one membership
    agreement round, kills landing *inside* an in-progress recovery (at
    the restore midpoint), back-to-back failures hitting the freshly
    relaunched incarnation, and spare-pool exhaustion — which must degrade
    gracefully to the paper's full restart (``recovered-degraded``), never
    hang.  Shrink scenarios run the malleable stencil; the shrink of a
    non-malleable benchmark is *expected* to degrade.
    """
    combos = (("pcl", "ft_sock"), ("vcl", "ch_v"), ("dcl", "ft_sock"))
    scenarios = []
    for protocol, channel in combos:
        common = dict(protocol=protocol, channel=channel, seed=seed)
        stencil = dict(bench="stencil", klass="A", **common)
        scenarios += [
            # double task fault, coalesced into one agreement round
            Scenario(kill="task", victim=1, kill_time=2.8,
                     extra_kills=(("task", 2, 2.8001),),
                     policy="spare", spares=2, **common),
            # correlated double node fault onto the spare pool
            Scenario(kill="node", victim=1, kill_time=2.8,
                     extra_kills=(("node", 2, 2.8001),),
                     policy="spare", spares=2, **common),
            # node kill inside the in-progress recovery (restore midpoint)
            Scenario(kill="node", victim=1, kill_time=2.8,
                     extra_kills=(("node", 2, 2.85),),
                     policy="spare", spares=2, **common),
            # task kill inside the in-progress recovery
            Scenario(kill="node", victim=1, kill_time=2.8,
                     extra_kills=(("task", 2, 2.85),),
                     policy="spare", spares=2, **common),
            # back-to-back failures: the second hits the fresh incarnation
            Scenario(kill="node", victim=1, kill_time=2.8,
                     extra_kills=(("node", 2, 3.4),),
                     policy="spare", spares=2, **common),
            # spare-pool exhaustion must degrade to full restart, not hang
            Scenario(kill="node", victim=1, kill_time=2.8,
                     extra_kills=(("node", 2, 2.8001),),
                     policy="spare", spares=1,
                     expect=("recovered-degraded",), **common),
            # shrink: survivors re-decompose the malleable stencil
            Scenario(kill="node", victim=1, kill_time=2.8,
                     policy="shrink", **stencil),
            Scenario(kill="node", victim=1, kill_time=2.8,
                     extra_kills=(("node", 2, 2.8001),),
                     policy="shrink", **stencil),
            # shrinking a non-malleable benchmark degrades to full restart
            Scenario(kill="node", victim=1, kill_time=2.8,
                     policy="shrink",
                     expect=("recovered-degraded",), **common),
            # kill inside the baseline full restart's own recovery
            Scenario(kill="node", victim=1, kill_time=2.8,
                     extra_kills=(("node", 2, 2.85),), **common),
        ]
    return CampaignSpec(scenarios=scenarios, name="recovery")


def smoke_campaign(seed: int = 0) -> CampaignSpec:
    """The standard CI smoke sweep: 48 scenarios, a few seconds of wall time.

    Covers all three protocol families, all three paper channels, 1 and 2
    processes per node, task and node kills, and both kill phases — inside
    the first checkpoint wave (t=1.7: wave 1 spans ~1.5–2.1 at the smoke
    scale) and between waves (t=2.8: after wave 1 commits, before wave 2
    starts at ~3.6).  3 Pcl/Vcl combos × 2 ppn × 2 kill kinds × 2 kill
    times = 24, plus the 12 storage-resilience scenarios of
    :func:`storage_campaign`, plus the 12 message-drain scenarios of
    :func:`dcl_campaign`.
    """
    grid = CampaignSpec.grid(
        kill_times=(1.7, 2.8),
        seeds=(seed,),
        name="smoke",
    )
    grid.scenarios.extend(storage_campaign(seed).scenarios)
    grid.scenarios.extend(dcl_campaign(seed).scenarios)
    return grid
