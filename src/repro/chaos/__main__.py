"""Chaos campaign CLI.

Standard CI smoke sweep (48 scenarios, exits 1 on any bad verdict)::

    python -m repro.chaos --smoke --out results/chaos

``--storage`` runs only the 12 storage-resilience scenarios (replicated
servers, server kills, image corruption); ``--dcl`` runs only the 12
message-drain (Dcl) scenarios; ``--list`` prints the scenario labels
without running anything; ``--filter`` restricts the campaign to labels
containing a substring.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.chaos.report import write_report
from repro.chaos.runner import run_campaign
from repro.chaos.spec import (
    RECOVERY_POLICIES,
    dcl_campaign,
    recovery_campaign,
    smoke_campaign,
    storage_campaign,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Fault-injection campaigns over the checkpointing "
                    "harness (verdicts: completed/recovered/"
                    "recovered-degraded pass; wrong-result/deadlock/"
                    "livelock/hang/crash/storage-unrecoverable fail, "
                    "unless the scenario expects them).",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="run the standard 48-scenario smoke campaign "
                             "(the default when no campaign is selected)")
    parser.add_argument("--storage", action="store_true",
                        help="run only the 12 storage-resilience scenarios "
                             "(replication, server kills, corruption)")
    parser.add_argument("--dcl", action="store_true",
                        help="run only the 12 message-drain (Dcl) "
                             "scenarios")
    parser.add_argument("--recovery", action="store_true",
                        help="run only the 30 cascading-failure recovery "
                             "scenarios (double faults, kills inside a "
                             "recovery, spare exhaustion; see "
                             "docs/RECOVERY.md)")
    parser.add_argument("--policy", default=None, choices=RECOVERY_POLICIES,
                        help="only run scenarios using this recovery "
                             "policy (restart scenarios carry no label "
                             "marker, so use this rather than --filter)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for every scenario (default 0)")
    parser.add_argument("--out", default="results/chaos",
                        help="directory for the JSON + markdown report "
                             "(default results/chaos)")
    parser.add_argument("--filter", default=None, metavar="SUBSTR",
                        help="only run scenarios whose label contains this")
    parser.add_argument("--list", action="store_true",
                        help="print scenario labels and exit")
    parser.add_argument("--no-monitors", action="store_true",
                        help="skip the online invariant monitors "
                             "(faster, weaker wrong-result detection)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run scenarios on an N-worker process pool "
                             "(default: the REPRO_JOBS environment "
                             "variable, else sequential); the report is "
                             "identical either way")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.storage:
        campaign = storage_campaign(seed=args.seed)
    elif args.dcl:
        campaign = dcl_campaign(seed=args.seed)
    elif args.recovery:
        campaign = recovery_campaign(seed=args.seed)
    else:
        campaign = smoke_campaign(seed=args.seed)  # --smoke is the default
    if args.filter:
        campaign = campaign.filtered(args.filter)
    if args.policy:
        campaign = campaign.with_policy(args.policy)
    if args.list:
        for scenario in campaign:
            print(scenario.label)
        return 0
    if not len(campaign):
        print("no scenarios selected", file=sys.stderr)
        return 2

    started = time.monotonic()

    def progress(result):
        mark = "ok " if result.ok else "BAD"
        print(f"  [{mark}] {result.scenario.label}: {result.verdict}"
              + (f" ({result.detail})" if result.detail else ""))

    print(f"chaos campaign {campaign.name!r}: {len(campaign)} scenarios")
    outcome = run_campaign(campaign, monitors=not args.no_monitors,
                           progress=progress, jobs=args.jobs)
    json_path, md_path = write_report(outcome, args.out)
    elapsed = time.monotonic() - started
    counts = ", ".join(f"{v}={n}" for v, n in outcome.counts().items())
    print(f"done in {elapsed:.1f}s: {counts}")
    print(f"report: {json_path} / {md_path}")
    if not outcome.ok:
        for failure in outcome.failures():
            print(f"FAILED {failure.scenario.label}: {failure.verdict} "
                  f"{failure.detail}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
