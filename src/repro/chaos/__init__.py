"""Declarative fault-injection campaigns over the checkpointing harness.

The chaos subsystem turns the one-off failure experiments of
:mod:`repro.ft` into a swept, self-judging campaign: a
:class:`~repro.chaos.spec.CampaignSpec` enumerates scenarios (protocol ×
channel × processes-per-node × kill kind × kill time × seed), the runner
executes each through :func:`repro.harness.runner.execute` with the engine
:class:`~repro.sim.Watchdog` armed and all :mod:`repro.verify` monitors
riding along, and every run is classified into a verdict:

``completed``
    Ran to the end with the correct result and no failure injected (or the
    kill landed after completion).
``recovered``
    A failure was injected, at least one rollback/restart happened, and the
    final result is still correct.
``recovered-degraded``
    Recovered with the correct result, but the restart had to route around
    storage damage (replica fetch retries and/or a fallback to an older
    committed wave) or a survivor recovery policy had to fall back to the
    paper's full restart (spare-pool exhaustion, non-malleable app).
``wrong-result``
    The run finished but the application state is wrong or an invariant
    monitor flagged the run.
``deadlock`` / ``livelock`` / ``hang``
    The run never finished: the event heap drained, the watchdog caught a
    zero-time cascade, or the simulated-time budget ran out.
``storage-unrecoverable``
    The restart cleanly exhausted every replica of every committed wave
    (e.g. the sole server of a K=1 run died) — a classified outcome, not a
    hang.  Fails the campaign unless the scenario ``expect``s it.
``crash``
    The simulation itself raised.

``completed``, ``recovered`` and ``recovered-degraded`` are acceptable;
anything else fails the campaign (exit status 1 from the CLI) unless the
scenario's ``expect`` field names it — the K=1 storage scenarios *expect*
``storage-unrecoverable``.

Run the standard smoke campaign::

    python -m repro.chaos --smoke --out results/chaos

or just the storage-resilience, message-drain (Dcl) or cascading-failure
recovery slices::

    python -m repro.chaos --storage --out results/chaos
    python -m repro.chaos --dcl --out results/chaos
    python -m repro.chaos --recovery --policy spare --out results/chaos

See ``docs/CHAOS.md`` for the full knob reference.
"""

from repro.chaos.report import CampaignResult, write_report
from repro.chaos.runner import (
    BAD_VERDICTS,
    OK_VERDICTS,
    ScenarioResult,
    run_campaign,
    run_scenario,
)
from repro.chaos.spec import (
    RECOVERY_POLICIES,
    STORAGE_FAULTS,
    CampaignSpec,
    Scenario,
    dcl_campaign,
    recovery_campaign,
    smoke_campaign,
    storage_campaign,
)

__all__ = [
    "BAD_VERDICTS",
    "CampaignResult",
    "CampaignSpec",
    "OK_VERDICTS",
    "RECOVERY_POLICIES",
    "STORAGE_FAULTS",
    "Scenario",
    "ScenarioResult",
    "dcl_campaign",
    "recovery_campaign",
    "run_campaign",
    "run_scenario",
    "smoke_campaign",
    "storage_campaign",
    "write_report",
]
