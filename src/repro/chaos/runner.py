"""Run scenarios and classify each outcome into a verdict.

The runner is a thin adapter: a :class:`~repro.chaos.spec.Scenario` becomes
one :func:`repro.harness.runner.execute` call with the engine
:class:`~repro.sim.Watchdog` armed and kills scheduled, and whatever comes
back — completion, a wrong answer, a monitor violation, or one of the
engine's stall exceptions — is mapped onto the verdict taxonomy (see
:mod:`repro.chaos`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps import BENCHMARKS
from repro.chaos.report import CampaignResult
from repro.chaos.spec import CampaignSpec, Scenario
from repro.ft import StorageUnrecoverableError
from repro.harness.config import SMOKE
from repro.harness.parallel import pool_imap
from repro.harness.runner import execute
from repro.sim import DeadlockError, LivelockError, TimeLimitError
from repro.verify import InvariantViolation

__all__ = [
    "OK_VERDICTS",
    "BAD_VERDICTS",
    "ScenarioResult",
    "run_scenario",
    "run_campaign",
]

#: verdicts that pass a campaign
OK_VERDICTS = frozenset({"completed", "recovered", "recovered-degraded"})
#: verdicts that fail a campaign (unless the scenario ``expect``s them)
BAD_VERDICTS = frozenset({"wrong-result", "deadlock", "livelock", "hang",
                          "crash", "storage-unrecoverable"})


@dataclass
class ScenarioResult:
    """One scenario's verdict plus the evidence behind it."""

    scenario: Scenario
    verdict: str
    #: human-readable justification (exception text, wrong-state diff, ...)
    detail: str = ""
    #: simulated completion time (None when the run never finished)
    completion: Optional[float] = None
    waves: int = 0
    restarts: int = 0
    #: online invariant monitors verdict (None when the run never finished
    #: or monitors were off)
    monitors_ok: Optional[bool] = None
    #: final per-rank application state (empty when unavailable)
    app_state: List[dict] = field(default_factory=list)
    #: engine heap pops of the run (0 when the run never finished); kept out
    #: of :meth:`to_dict` — wall-dependent-free but also not a verdict
    events: int = 0
    #: repro.obs metrics snapshot (empty unless the run collected metrics,
    #: i.e. REPRO_METRICS was set)
    metrics: Dict = field(default_factory=dict)
    #: what the failure injector actually did: typed records
    #: ``{"time", "kind", "target"}`` (a node kill expands into per-task
    #: kills; a kill landing after completion records nothing)
    injected_kills: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        if self.scenario.expect:
            return self.verdict in self.scenario.expect
        return self.verdict in OK_VERDICTS

    def to_dict(self) -> dict:
        doc = {
            "scenario": self.scenario.to_dict(),
            "label": self.scenario.label,
            "verdict": self.verdict,
            "ok": self.ok,
            "detail": self.detail,
            "completion": self.completion,
            "waves": self.waves,
            "restarts": self.restarts,
            "monitors_ok": self.monitors_ok,
        }
        if self.injected_kills:
            doc["injected_kills"] = self.injected_kills
        if self.metrics:
            doc["metrics"] = self.metrics
        return doc


def _expected_state(scenario: Scenario, bench) -> Dict[str, float]:
    """What every rank's final context state must hold for a correct run.

    The NAS skeletons advance ``iteration`` once per timestep and finish
    with a verification allreduce whose result (each rank contributing 1)
    is the job size — a rolled-back-but-unreplayed run shows up as a short
    iteration count, a corrupted reduction as a wrong norm.
    """
    return {"iteration": bench.iterations(), "norm": float(scenario.n_procs)}


def _check_result(scenario: Scenario, bench, result) -> Optional[str]:
    """Return a wrong-result explanation, or None when the run is correct."""
    expected = _expected_state(scenario, bench)
    app_state = result.meta.get("app_state", [])
    if scenario.policy == "shrink":
        # A shrink drops the failed ranks: fewer survivors finish, and the
        # verification allreduce sums over the *current* size.  (A shrink
        # that degraded to a full restart keeps all n_procs ranks — the
        # expectation below covers that too.)
        if not 1 <= len(app_state) <= scenario.n_procs:
            return (f"shrink left {len(app_state)} rank(s), expected "
                    f"1..{scenario.n_procs}")
        expected["norm"] = float(len(app_state))
    for rank, state in enumerate(app_state):
        for key, want in expected.items():
            got = state.get(key)
            if got != want:
                return (f"rank {rank} finished with {key}={got!r}, "
                        f"expected {want!r}")
    if result.monitors_ok is False:
        monitors = result.meta.get("monitors", {}).get("verdicts", {})
        broken = sorted(name for name, v in monitors.items() if not v["ok"])
        return f"invariant monitor violation: {', '.join(broken)}"
    return None


def run_scenario(
    scenario: Scenario,
    time_limit: Optional[float] = None,
    time_limit_factor: float = 8.0,
    monitors: bool = True,
) -> ScenarioResult:
    """Execute one scenario and judge it.

    ``time_limit`` caps the *simulated* time; by default it is
    ``time_limit_factor`` times the benchmark's failure-free expected time,
    so a run that stops making progress is classified as ``hang`` instead
    of spinning the heap forever (zero-time spins are caught earlier and
    more precisely by the armed watchdog as ``livelock``).
    """
    bench = BENCHMARKS[scenario.bench](klass=scenario.klass,
                                       scale=scenario.scale)
    profile = replace(SMOKE, time_scale=scenario.scale, seed=scenario.seed)
    if time_limit is None:
        time_limit = time_limit_factor * bench.expected_time(scenario.n_procs)
    kills = ([(scenario.kill, scenario.victim, scenario.kill_time)]
             if scenario.kill is not None else [])
    kills += [tuple(kill) for kill in scenario.extra_kills]
    storage_faults = []
    if scenario.storage_fault is not None:
        # server_kill targets a server; image_corrupt additionally names
        # the rank whose replica goes bad (the killed rank: its restart is
        # the one that must survive the bad copy)
        storage_faults.append((
            scenario.storage_fault, scenario.storage_victim,
            scenario.victim, scenario.storage_time,
        ))
    try:
        result = execute(
            bench,
            scenario.n_procs,
            scenario.protocol,
            profile,
            network=scenario.network,
            channel=scenario.channel,
            n_servers=scenario.n_servers,
            period=scenario.period,
            procs_per_node=scenario.procs_per_node,
            seed=scenario.seed,
            time_limit=time_limit,
            name=scenario.label,
            monitors=monitors,
            kills=kills,
            ckpt_replication=scenario.replication,
            ckpt_gc_keep=scenario.gc_keep,
            storage_faults=storage_faults,
            policy=scenario.policy,
            spares=scenario.spares,
            watchdog=True,
        )
    except LivelockError as error:
        return ScenarioResult(scenario, "livelock",
                              detail=str(error).splitlines()[0])
    except DeadlockError as error:
        return ScenarioResult(scenario, "deadlock", detail=str(error))
    except TimeLimitError as error:
        return ScenarioResult(scenario, "hang", detail=str(error))
    except InvariantViolation as error:
        # Only reachable when a raising MonitorBus is attached externally
        # (e.g. the test suite's autouse fixture); harness buses collect.
        return ScenarioResult(scenario, "wrong-result",
                              detail=str(error).splitlines()[0])
    except StorageUnrecoverableError as error:
        # Restart exhausted every replica of every committed wave: a clean,
        # classified outcome (the K=1 scenarios *expect* it), never a hang.
        return ScenarioResult(scenario, "storage-unrecoverable",
                              detail=str(error))
    except Exception as error:  # noqa: BLE001 - any crash is a verdict
        return ScenarioResult(scenario, "crash",
                              detail=f"{type(error).__name__}: {error}")
    wrong = _check_result(scenario, bench, result)
    if wrong is not None:
        verdict, detail = "wrong-result", wrong
    elif result.stats.restarts > 0:
        detail = (f"{result.stats.failures} failure(s), "
                  f"{result.stats.restarts} restart(s)")
        degraded = (result.stats.fetch_retries
                    or result.stats.wave_fallbacks
                    or result.stats.policy_degradations)
        if degraded:
            # correct result, but the restart had to route around storage
            # damage (replica retries and/or a fallback to an older wave)
            # or the recovery policy fell back to a full restart
            verdict = "recovered-degraded"
            detail += (f", {result.stats.fetch_retries} fetch retrie(s), "
                       f"{result.stats.wave_fallbacks} wave fallback(s)")
            if result.stats.policy_degradations:
                detail += (f", {result.stats.policy_degradations} policy "
                           f"degradation(s)")
        else:
            verdict = "recovered"
    else:
        verdict, detail = "completed", ""
    return ScenarioResult(
        scenario, verdict, detail=detail,
        completion=result.completion,
        waves=result.waves,
        restarts=result.stats.restarts,
        monitors_ok=result.monitors_ok,
        app_state=result.meta.get("app_state", []),
        events=int(result.meta.get("events", 0)),
        metrics=result.meta.get("metrics", {}),
        injected_kills=result.meta.get("injected_kills", []),
    )


def _scenario_task(args: Tuple[Scenario, float, bool]) -> ScenarioResult:
    """Top-level pool worker: one scenario (picklable by name)."""
    scenario, time_limit_factor, monitors = args
    return run_scenario(scenario, monitors=monitors,
                        time_limit_factor=time_limit_factor)


def run_campaign(
    spec: CampaignSpec,
    monitors: bool = True,
    progress: Optional[Callable[[ScenarioResult], None]] = None,
    jobs: Optional[int] = None,
) -> CampaignResult:
    """Run every scenario of ``spec`` in order; never raises per-scenario
    (failures become verdicts).  ``progress`` is called after each run.

    ``jobs`` (default: the ``REPRO_JOBS`` environment variable, else 1)
    runs scenarios on a process pool.  Every scenario is an independent,
    self-seeded simulation, so the campaign result is identical to the
    sequential one — results are merged back in spec order, and
    ``progress`` fires in spec order from the parent process.
    """
    tasks = [(scenario, spec.time_limit_factor, monitors)
             for scenario in spec]
    results = []
    for result in pool_imap(_scenario_task, tasks, jobs=jobs):
        results.append(result)
        if progress is not None:
            progress(result)
    return CampaignResult(name=spec.name, results=results)
