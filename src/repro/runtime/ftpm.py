"""The fault-tolerant process manager (FTPM, Sec. 4.2) — Pcl's environment.

MPICH2's stock MPD daemons are fault tolerant but the process managers are
not, and MPD cannot drive the checkpoint servers; the paper therefore builds
a simpler environment: an ``mpiexec`` program plus modified process managers.
It launches the checkpoint servers first, then the MPI processes through
parallel, bounded-concurrency ssh; monitors them; and keeps the distributed
database of business cards, last-wave numbers and image locations.

Unlike the dispatcher, the FTPM was "designed to scale to large platforms":
it poll()s rather than select()s, so there is no 1024-descriptor wall, and
the paper runs it up to 1024 processes.
"""

from __future__ import annotations

from typing import List

from repro.ft.recovery import InstantLauncher
from repro.runtime.database import ProcessDatabase
from repro.runtime.dispatcher import ScaleLimitError
from repro.runtime.ssh import SshSpawner

__all__ = ["FTPM"]

#: practical per-mpiexec process cap (memory/bookkeeping, not select())
FTPM_MAX_PROCESSES = 10_000


class FTPM(InstantLauncher):
    """MPICH2-Pcl launcher: parallel ssh + process database."""

    def __init__(self, ssh: SshSpawner = None,
                 failure_cleanup_seconds: float = 1.0) -> None:
        self.ssh = ssh if ssh is not None else SshSpawner(concurrency=32)
        self.failure_cleanup_seconds = failure_cleanup_seconds
        self.database = ProcessDatabase()

    def max_processes(self) -> int:
        return FTPM_MAX_PROCESSES

    def validate(self, n_ranks: int) -> None:
        if n_ranks > FTPM_MAX_PROCESSES:
            raise ScaleLimitError(
                f"FTPM: {n_ranks} processes exceed the mpiexec cap "
                f"of {FTPM_MAX_PROCESSES}"
            )

    def spawn_delays(self, n_ranks: int) -> List[float]:
        delays = self.ssh.delays(n_ranks)
        # every spawned process publishes its business card
        for rank in range(n_ranks):
            self.database.publish(rank, f"node-{rank}", 52000 + rank)
        return delays

    def respawn_lead_time(self) -> float:
        self.database.unpublish_all()
        return self.failure_cleanup_seconds
