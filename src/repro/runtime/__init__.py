"""Runtime environments: launching, monitoring and restarting jobs.

* :class:`~repro.runtime.dispatcher.Dispatcher` — MPICH-V's dispatcher with
  sequential ssh and the ``select()`` scale wall (~300 processes).
* :class:`~repro.runtime.ftpm.FTPM` — the fault-tolerant process manager
  built for MPICH2-Pcl: parallel bounded ssh, process database.
* :class:`~repro.runtime.ssh.SshSpawner` — remote spawn cost model.
* :mod:`~repro.runtime.machinefile` — the extended machinefile format with
  checkpoint-server mapping.
* :func:`~repro.runtime.launch.build_run` — one-call deployment from a
  :class:`~repro.runtime.launch.DeploymentSpec`.
"""

from repro.runtime.database import BusinessCard, ProcessDatabase
from repro.runtime.dispatcher import (
    Dispatcher,
    ScaleLimitError,
    SELECT_FD_LIMIT,
    SOCKETS_PER_PROCESS,
)
from repro.runtime.ftpm import FTPM
from repro.runtime.launch import CHANNELS, DeploymentSpec, build_run
from repro.runtime.machinefile import MachineEntry, Machinefile, parse_machinefile
from repro.runtime.ssh import SshSpawner

__all__ = [
    "BusinessCard",
    "CHANNELS",
    "DeploymentSpec",
    "Dispatcher",
    "FTPM",
    "MachineEntry",
    "Machinefile",
    "ProcessDatabase",
    "ScaleLimitError",
    "SELECT_FD_LIMIT",
    "SOCKETS_PER_PROCESS",
    "SshSpawner",
    "build_run",
    "parse_machinefile",
]
