"""ssh-based remote process spawning cost model.

Both runtimes launch remote processes with ssh (Sec. 4).  The MPICH-V
dispatcher issues its ssh commands one after another; the FTPM does them "in
parallel, and the number of concurrent ssh connections is bounded by a
parameter".  The model charges a fixed per-spawn cost (connection setup +
fork/exec of the remote binary) and schedules spawns in bounded-width waves.
"""

from __future__ import annotations

from typing import List

__all__ = ["SshSpawner", "DEFAULT_SPAWN_SECONDS"]

#: ssh handshake + remote fork/exec on 2006-era machines
DEFAULT_SPAWN_SECONDS = 0.25


class SshSpawner:
    """Computes per-process start delays for a (re)launch."""

    def __init__(self, concurrency: int = 1,
                 per_spawn: float = DEFAULT_SPAWN_SECONDS) -> None:
        if concurrency < 1:
            raise ValueError("ssh concurrency must be >= 1")
        if per_spawn < 0:
            raise ValueError("per-spawn cost cannot be negative")
        self.concurrency = concurrency
        self.per_spawn = per_spawn

    def delays(self, n: int) -> List[float]:
        """Start delay of each of ``n`` processes (spawn i completes after
        ``ceil((i+1)/concurrency) * per_spawn`` seconds)."""
        return [
            ((i // self.concurrency) + 1) * self.per_spawn for i in range(n)
        ]

    def total_time(self, n: int) -> float:
        """Time until the last process is up."""
        if n == 0:
            return 0.0
        return self.delays(n)[-1]
