"""High-level deployment: build a fault-tolerant run from a specification.

This is the programmatic equivalent of the paper's job launch: pick a
platform (Gigabit-Ethernet cluster, Myrinet cluster, or the Grid'5000
slice), a channel, a protocol and a checkpoint-server count, and get back a
ready-to-start :class:`~repro.ft.recovery.FTRun`.

The fabric follows the channel on Myrinet hardware, as in Sec. 5.3: the
Nemesis channel drives GM natively while the TCP-based implementations
(Pcl/ft-sock and Vcl/ch_v) run Ethernet emulation on the same Myri2000
cards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.ft import (
    CheckpointServer,
    DclProtocol,
    FetchPolicy,
    FTRun,
    InstantLauncher,
    PclProtocol,
    VclProtocol,
)
from repro.ft.image import FORK_LATENCY
from repro.mpi.channels import ChVChannel, FtSockChannel, NemesisChannel
from repro.net import (
    ClusterNetwork,
    ETHERNET_OVER_MYRINET,
    GIGABIT_ETHERNET,
    GridNetwork,
    MYRINET_GM,
    grid5000,
)
from repro.net.topology import Endpoint
from repro.runtime.dispatcher import Dispatcher
from repro.runtime.ftpm import FTPM
from repro.sim import Simulator

__all__ = ["DeploymentSpec", "build_run", "CHANNELS"]

CHANNELS = {
    "ft_sock": FtSockChannel,
    "ch_v": ChVChannel,
    "nemesis": NemesisChannel,
}


@dataclass
class DeploymentSpec:
    """Everything needed to deploy one fault-tolerant MPI run."""

    n_procs: int
    protocol: Optional[str] = "pcl"  # "pcl" | "vcl" | "dcl" | None (no ckpt)
    channel: str = "ft_sock"  # "ft_sock" | "ch_v" | "nemesis"
    network: str = "gige"  # "gige" | "myrinet" | "grid5000"
    n_servers: int = 1
    period: float = 30.0
    image_bytes: Union[float, Callable[[int], float]] = 32e6
    n_compute_nodes: Optional[int] = None
    procs_per_node: Optional[int] = None
    fork_latency: float = FORK_LATENCY
    launcher: str = "auto"  # "auto" | "dispatcher" | "ftpm" | "instant"
    restart_policy: str = "same-node"
    #: survivor-recovery strategy: "restart" kills and respawns every rank
    #: (the paper's model); "spare" keeps survivors alive and promotes
    #: machines from the pre-allocated spare pool; "shrink" renumbers the
    #: survivors and re-decomposes a malleable app
    recovery_policy: str = "restart"
    #: machines pre-allocated (idle) for the "spare" recovery policy
    spares: int = 0
    #: checkpoint storage resilience: each rank streams its image to
    #: ``ckpt_replication`` servers, servers retain the newest
    #: ``ckpt_gc_keep`` committed waves, and restarts retry fetches
    #: ``fetch_retries`` rounds with exponential backoff + jitter
    ckpt_replication: int = 1
    ckpt_gc_keep: int = 1
    fetch_retries: int = 3
    fetch_backoff: float = 0.05
    fetch_jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.protocol not in ("pcl", "vcl", "dcl", None):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.channel not in CHANNELS:
            raise ValueError(f"unknown channel {self.channel!r}")
        if self.network not in ("gige", "myrinet", "grid5000"):
            raise ValueError(f"unknown network {self.network!r}")
        if self.n_servers < 1:
            raise ValueError("need at least one checkpoint server")
        if not 1 <= self.ckpt_replication <= self.n_servers:
            raise ValueError(
                f"ckpt_replication must be between 1 and n_servers "
                f"({self.n_servers}), got {self.ckpt_replication}")
        if self.ckpt_gc_keep < 1:
            raise ValueError("ckpt_gc_keep must be >= 1")
        if self.fetch_retries < 1:
            raise ValueError("fetch_retries must be >= 1")
        if self.recovery_policy not in ("restart", "spare", "shrink"):
            raise ValueError(
                f"unknown recovery policy {self.recovery_policy!r}")
        if self.spares < 0:
            raise ValueError("spares must be >= 0")
        if self.spares > 0 and self.network == "grid5000":
            raise ValueError("spare pools are only modelled on cluster "
                             "networks, not grid5000")


def _fabric_for(spec: DeploymentSpec):
    if spec.network == "myrinet":
        return MYRINET_GM if spec.channel == "nemesis" else ETHERNET_OVER_MYRINET
    return GIGABIT_ETHERNET


def _make_launcher(spec: DeploymentSpec):
    choice = spec.launcher
    if choice == "auto":
        if spec.protocol == "vcl":
            choice = "dispatcher"
        elif spec.protocol in ("pcl", "dcl"):
            choice = "ftpm"
        else:
            choice = "instant"
    return {
        "dispatcher": Dispatcher,
        "ftpm": FTPM,
        "instant": InstantLauncher,
    }[choice]()


def _assign_servers_by_site(endpoints: Sequence[Endpoint],
                            servers: Sequence[CheckpointServer]) -> Dict[int, CheckpointServer]:
    """Prefer a checkpoint server in the rank's own cluster (the grid
    experiments use "a local machine" as each node's server)."""
    by_site: Dict[str, List[CheckpointServer]] = {}
    for server in servers:
        by_site.setdefault(server.node.cluster, []).append(server)
    mapping: Dict[int, CheckpointServer] = {}
    rr_per_site: Dict[str, int] = {}
    for rank, endpoint in enumerate(endpoints):
        site = endpoint.node.cluster
        local = by_site.get(site)
        if local:
            index = rr_per_site.get(site, 0)
            mapping[rank] = local[index % len(local)]
            rr_per_site[site] = index + 1
        else:
            mapping[rank] = servers[rank % len(servers)]
    return mapping


def build_run(
    sim: Simulator,
    spec: DeploymentSpec,
    app_factory: Callable,
    name: str = "run",
    malleable_app_factory: Optional[Callable[[int], Callable]] = None,
) -> FTRun:
    """Assemble network, servers, scheduler, launcher and protocol.

    ``malleable_app_factory`` (size -> app function) enables the "shrink"
    recovery policy: after a failure the survivors re-decompose the app over
    the smaller communicator instead of respawning the dead ranks.
    """
    fabric = _fabric_for(spec)
    want_scheduler = spec.protocol == "vcl"
    spare_nodes = []

    if spec.network == "grid5000":
        net = grid5000(sim, intra_fabric=fabric)
        all_nodes = net.all_nodes()
        # Spread the service machines over distinct sites.
        clusters = list(net.clusters.values())
        service_nodes = []
        for i in range(spec.n_servers + (1 if want_scheduler else 0)):
            cluster = clusters[i % len(clusters)]
            node = next(n for n in cluster.nodes if not n.service)
            node.service = True
            service_nodes.append(node)
    else:
        per_node = spec.procs_per_node
        if spec.n_compute_nodes is not None:
            n_compute = spec.n_compute_nodes
        elif per_node is not None:
            n_compute = -(-spec.n_procs // per_node)
        else:
            n_compute = spec.n_procs
        n_service = spec.n_servers + (1 if want_scheduler else 0)
        net = ClusterNetwork(
            sim, n_nodes=n_compute + spec.spares + n_service, fabric=fabric,
            name=name)
        # Spares sit between the compute block and the service block; they
        # are flagged service so place() skips them until a recovery
        # promotes them into the compute set.
        spare_nodes = net.nodes[n_compute:n_compute + spec.spares]
        for node in spare_nodes:
            node.service = True
        service_nodes = net.nodes[n_compute + spec.spares:]
        for node in service_nodes:
            node.service = True

    endpoints = net.place(spec.n_procs, procs_per_node=spec.procs_per_node)
    servers = [
        CheckpointServer(sim, net, service_nodes[i], name=f"{name}:cs{i}",
                         gc_keep=spec.ckpt_gc_keep)
        for i in range(spec.n_servers)
    ]
    scheduler_node = service_nodes[-1] if want_scheduler else None

    protocol_factory = None
    if spec.protocol is not None:

        def protocol_factory(job, run):
            kwargs = dict(
                server_map=run.server_map,
                period=spec.period,
                stats=run.stats,
                local_images=run.local_images,
                fork_latency=spec.fork_latency,
                replica_map=run.replica_map,
            )
            if spec.protocol == "pcl":
                return PclProtocol(job, **kwargs)
            if spec.protocol == "dcl":
                return DclProtocol(job, **kwargs)
            return VclProtocol(job, scheduler_node=scheduler_node, **kwargs)

    run = FTRun(
        sim, net, endpoints, app_factory, CHANNELS[spec.channel],
        protocol_factory, servers, launcher=_make_launcher(spec),
        image_bytes=spec.image_bytes, name=name,
        restart_policy=spec.restart_policy,
        replication=spec.ckpt_replication,
        fetch_policy=FetchPolicy(max_rounds=spec.fetch_retries,
                                 backoff_base=spec.fetch_backoff,
                                 jitter=spec.fetch_jitter),
        recovery_policy=spec.recovery_policy,
        spare_pool=spare_nodes,
        malleable_app_factory=malleable_app_factory,
    )
    if spec.network == "grid5000":
        run.use_site_server_map(_assign_servers_by_site(endpoints, servers))
    return run
