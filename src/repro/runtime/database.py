"""The FTPM's distributed database (Sec. 4.2).

``mpiexec`` maintains a database in which every MPI process publishes its
*business card* (rank -> IP address, hostname, port), the number of the last
successful checkpoint wave, and which checkpoint server holds which local
checkpoint — the restart path needs the location because a process restarted
on a spare node will not find its image on the local disk.

The store itself is an ordinary in-memory map; the modelled cost is the
round trip a lookup takes to ``mpiexec``'s node, charged by the FTPM when it
resolves business cards during connection establishment at restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["BusinessCard", "ProcessDatabase"]


@dataclass(frozen=True)
class BusinessCard:
    """A process's published contact information."""

    rank: int
    hostname: str
    port: int


class ProcessDatabase:
    """mpiexec's view of the job."""

    def __init__(self) -> None:
        self._cards: Dict[int, BusinessCard] = {}
        self._image_locations: Dict[int, str] = {}
        self.last_successful_wave = 0
        self.lookups = 0

    # --------------------------------------------------------------- cards
    def publish(self, rank: int, hostname: str, port: int) -> None:
        self._cards[rank] = BusinessCard(rank, hostname, port)

    def lookup(self, rank: int) -> Optional[BusinessCard]:
        self.lookups += 1
        return self._cards.get(rank)

    def unpublish_all(self) -> None:
        self._cards.clear()

    def __len__(self) -> int:
        return len(self._cards)

    # ------------------------------------------------------------ ckpt info
    def record_wave(self, wave: int) -> None:
        if wave > self.last_successful_wave:
            self.last_successful_wave = wave

    def record_image_location(self, rank: int, server_name: str) -> None:
        self._image_locations[rank] = server_name

    def image_location(self, rank: int) -> Optional[str]:
        self.lookups += 1
        return self._image_locations.get(rank)
