"""Machinefile parsing with checkpoint-server mapping.

The paper modifies the machinefile format "to add the specification of the
mapping between machines used as computing nodes and machines used as
checkpoint servers" (Sec. 4.2).  The format accepted here::

    # comment
    node001                      # compute host, 1 slot
    node002:2                    # compute host, 2 slots
    node003:2 ckpt=server01      # compute host assigned to a named server
    server01 role=server         # checkpoint server machine
    sched01  role=scheduler      # Vcl checkpoint scheduler machine

Compute hosts without an explicit ``ckpt=`` are distributed round-robin over
the declared servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["MachineEntry", "Machinefile", "parse_machinefile"]


@dataclass(frozen=True)
class MachineEntry:
    """One parsed machinefile line."""

    hostname: str
    slots: int = 1
    role: str = "compute"  # compute | server | scheduler
    server: Optional[str] = None  # explicit ckpt server assignment


@dataclass
class Machinefile:
    """Parsed deployment description."""

    compute: List[MachineEntry] = field(default_factory=list)
    servers: List[MachineEntry] = field(default_factory=list)
    scheduler: Optional[MachineEntry] = None

    @property
    def total_slots(self) -> int:
        return sum(entry.slots for entry in self.compute)

    def server_for(self, index: int) -> str:
        """Server hostname for the ``index``-th compute machine."""
        if not self.servers:
            raise ValueError("machinefile declares no checkpoint servers")
        entry = self.compute[index]
        if entry.server is not None:
            return entry.server
        return self.servers[index % len(self.servers)].hostname

    def rank_server_map(self, n_ranks: int) -> Dict[int, str]:
        """Rank -> server hostname under block placement over slots."""
        mapping: Dict[int, str] = {}
        rank = 0
        # fill slot 0 of every machine first, then slot 1, etc. (the paper's
        # deployment policy; see ClusterNetwork.place)
        max_slots = max((e.slots for e in self.compute), default=0)
        for slot in range(max_slots):
            for index, entry in enumerate(self.compute):
                if rank >= n_ranks:
                    return mapping
                if slot < entry.slots:
                    mapping[rank] = self.server_for(index)
                    rank += 1
        if rank < n_ranks:
            raise ValueError(
                f"machinefile has {self.total_slots} slots, need {n_ranks}"
            )
        return mapping


def parse_machinefile(text: str) -> Machinefile:
    """Parse machinefile text; raises ValueError on malformed lines."""
    result = Machinefile()
    known_server_names = set()
    deferred_server_refs: List[MachineEntry] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        head = fields[0]
        if ":" in head:
            hostname, slots_text = head.split(":", 1)
            try:
                slots = int(slots_text)
            except ValueError:
                raise ValueError(f"line {lineno}: bad slot count {slots_text!r}")
            if slots < 1:
                raise ValueError(f"line {lineno}: slots must be >= 1")
        else:
            hostname, slots = head, 1
        role = "compute"
        server: Optional[str] = None
        for option in fields[1:]:
            if "=" not in option:
                raise ValueError(f"line {lineno}: bad option {option!r}")
            key, value = option.split("=", 1)
            if key == "role":
                if value not in ("compute", "server", "scheduler"):
                    raise ValueError(f"line {lineno}: unknown role {value!r}")
                role = value
            elif key == "ckpt":
                server = value
            else:
                raise ValueError(f"line {lineno}: unknown option {key!r}")
        entry = MachineEntry(hostname, slots, role, server)
        if role == "compute":
            result.compute.append(entry)
            if server is not None:
                deferred_server_refs.append(entry)
        elif role == "server":
            result.servers.append(entry)
            known_server_names.add(hostname)
        else:
            if result.scheduler is not None:
                raise ValueError(f"line {lineno}: duplicate scheduler")
            result.scheduler = entry
    for entry in deferred_server_refs:
        if entry.server not in known_server_names:
            raise ValueError(
                f"{entry.hostname}: unknown checkpoint server {entry.server!r}"
            )
    return result
