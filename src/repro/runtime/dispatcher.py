"""The MPICH-V dispatcher (Sec. 4.1) — Vcl's launch/monitor environment.

The dispatcher starts the servers, then the MPI processes over *sequential*
ssh, monitors every process through dedicated sockets, and assumes a failure
on any unexpected socket closure.

The scalability-limiting detail the paper calls out (Sec. 5.4): the
dispatcher multiplexes all of its sockets with ``select()``, whose fd set is
capped at 1024 on Linux, and each node costs up to **3** sockets (alive
messages, stdin, stdout).  "This precludes tests with more than 300
processes" — :meth:`Dispatcher.validate` enforces exactly that bound, which
is why the paper's large-scale (grid) experiments run Pcl only.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ft.recovery import InstantLauncher
from repro.runtime.ssh import SshSpawner

__all__ = ["Dispatcher", "ScaleLimitError", "SELECT_FD_LIMIT", "SOCKETS_PER_PROCESS"]

#: Linux FD_SETSIZE: a file-descriptor set holds at most 1024/8 bytes
SELECT_FD_LIMIT = 1024

#: sockets the dispatcher opens per MPI process (alive + stdin + stdout)
SOCKETS_PER_PROCESS = 3

#: descriptors the dispatcher burns on itself (listeners, servers, logs)
RESERVED_FDS = 16


class ScaleLimitError(RuntimeError):
    """The runtime environment cannot manage this many processes."""


class Dispatcher(InstantLauncher):
    """MPICH-V launcher with the select() scalability wall."""

    def __init__(self, ssh: SshSpawner = None,
                 failure_cleanup_seconds: float = 1.0,
                 enforce_fd_limit: bool = True) -> None:
        self.ssh = ssh if ssh is not None else SshSpawner(concurrency=1)
        self.failure_cleanup_seconds = failure_cleanup_seconds
        #: test-only knob for repro.verify: with enforcement off, an
        #: oversubscribed launch proceeds and the fd-budget monitor must
        #: flag the runtime.validated record instead
        self.enforce_fd_limit = enforce_fd_limit

    def max_processes(self) -> int:
        return (SELECT_FD_LIMIT - RESERVED_FDS) // SOCKETS_PER_PROCESS

    def fd_budget(self) -> Dict[str, int]:
        """Budget facts consumed by the fd-budget invariant monitor."""
        return {
            "fd_limit": SELECT_FD_LIMIT,
            "sockets_per_process": SOCKETS_PER_PROCESS,
            "reserved_fds": RESERVED_FDS,
            "max_processes": self.max_processes(),
        }

    def validate(self, n_ranks: int) -> None:
        limit = self.max_processes()
        if n_ranks > limit and self.enforce_fd_limit:
            raise ScaleLimitError(
                f"MPICH-V dispatcher: {n_ranks} processes need "
                f"{n_ranks * SOCKETS_PER_PROCESS} sockets, but select() "
                f"multiplexing caps the dispatcher at ~{limit} processes"
            )

    def spawn_delays(self, n_ranks: int) -> List[float]:
        return self.ssh.delays(n_ranks)

    def respawn_lead_time(self) -> float:
        """Signal every survivor to exit, reap, rebuild the machine list."""
        return self.failure_cleanup_seconds
