"""MG — MultiGrid V-cycle skeleton.

NPB's MG performs V-cycles over a hierarchy of grids: halo exchanges with
the six 3D neighbours at every level, with message sizes shrinking by 4x per
coarsening step, plus one global reduction per iteration for the residual
norm.  The pattern stresses a checkpoint protocol with *mixed* message sizes
— large halos at the fine level, latency-bound slivers at the coarse levels.

The skeleton maps the 3D neighbour structure onto a 2D process grid (the
four grid neighbours standing in for the six spatial ones, with the halo
volume preserved) and walks the level hierarchy down and back up each
iteration.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.apps.base import NASBenchmark, NASClassSpec, isqrt_exact

__all__ = ["MG"]


class MG(NASBenchmark):
    """The MG benchmark skeleton."""

    name = "mg"
    CLASSES = {
        "A": NASClassSpec("A", 256, 4, 45.0, 3.5e9),
        "B": NASClassSpec("B", 256, 20, 220.0, 3.5e9),
        "C": NASClassSpec("C", 512, 20, 1800.0, 27e9),
    }

    def validate_procs(self, p: int) -> None:
        isqrt_exact(p)

    def levels(self, p: int) -> int:
        q = isqrt_exact(p)
        local = max(2, self.klass.problem_size // q)
        return max(1, int(math.log2(local)) - 1)

    def halo_bytes(self, p: int, level: int) -> float:
        """A face halo at ``level`` (0 = finest); area shrinks 4x per level."""
        q = isqrt_exact(p)
        face = (self.klass.problem_size / q) ** 2
        return max(64.0, 8.0 * face / (4 ** level))

    def make_app(self, p: int) -> Callable:
        self.validate_procs(p)
        q = isqrt_exact(p)
        n_iters = self.iterations()
        n_levels = self.levels(p)
        compute = self.compute_seconds_per_iteration(p)
        # fine level dominates compute: split geometrically over levels
        level_compute = [
            compute * (0.75 ** level) * 0.25 for level in range(n_levels)
        ]

        def app(ctx):
            jitter = self._jitter(ctx)
            row, col = divmod(ctx.rank, q)

            def halo_exchange(level):
                size = self.halo_bytes(p, level)
                tag = 400 + level
                if q == 1:
                    return
                fwd = (row % q) * q + (col + 1) % q
                bwd = (row % q) * q + (col - 1) % q
                up = ((row + 1) % q) * q + col
                down = ((row - 1) % q) * q + col
                requests = [
                    ctx.isend(fwd, tag, None, size),
                    ctx.isend(bwd, tag, None, size),
                    ctx.isend(up, tag + 100, None, size),
                    ctx.isend(down, tag + 100, None, size),
                ]
                yield from ctx.recv(bwd, tag)
                yield from ctx.recv(fwd, tag)
                yield from ctx.recv(down, tag + 100)
                yield from ctx.recv(up, tag + 100)
                for request in requests:
                    yield from request.wait()

            for iteration in range(n_iters):
                # down the V: restrict
                for level in range(n_levels):
                    yield from ctx.compute(level_compute[level] * jitter)
                    yield from halo_exchange(level)
                # up the V: prolongate
                for level in range(n_levels - 1, -1, -1):
                    yield from ctx.compute(level_compute[level] * jitter)
                    yield from halo_exchange(level)
                norm = yield from ctx.allreduce(1.0, lambda a, b: a + b, nbytes=8)
                ctx.update(lambda s, i=iteration, n=norm: (
                    s.__setitem__("iteration", i + 1),
                    s.__setitem__("norm", n),
                ))

        return app
