"""BT — Block Tridiagonal solver skeleton.

NPB's BT uses the *multi-partition* decomposition on a q x q process grid
(p must be a perfect square).  Each timestep computes the right-hand sides
and then performs three alternating-direction implicit (ADI) sweeps; every
sweep moves 5x5-block boundary faces between neighbours in the process grid.
The communication is therefore medium-size nearest-neighbour messages in
bursts, three bursts per iteration — the "complex communication schemes
among all the nodes" the paper uses as a stress test (Sec. 5.4).

The skeleton compresses each sweep's software pipeline into one bidirectional
exchange per direction of the aggregate face volume (the bytes moved per
iteration per neighbour are preserved; the sub-stage pipelining is not, which
only smooths sub-iteration timing).  The three directions map onto the
process grid as row neighbours, column neighbours and (for the z sweep)
diagonal neighbours, all cyclic.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.base import NASBenchmark, NASClassSpec, isqrt_exact

__all__ = ["BT"]

#: doubles per face cell and sweep stage: the ADI solve communicates in both
#: the forward-elimination and back-substitution passes, each shipping a
#: fused 5x5 block plus the 5-vector RHS per boundary cell
_FACE_DOUBLES = 160


class BT(NASBenchmark):
    """The BT benchmark skeleton."""

    name = "bt"
    CLASSES = {
        "A": NASClassSpec("A", 64, 200, 1700.0, 0.3e9),
        "B": NASClassSpec("B", 102, 200, 7200.0, 1.2e9),
        "C": NASClassSpec("C", 162, 200, 29000.0, 5.0e9),
    }

    def validate_procs(self, p: int) -> None:
        isqrt_exact(p)

    def face_bytes(self, p: int) -> float:
        """Bytes exchanged with one neighbour in one sweep direction.

        The multi-partition sweep runs q pipeline stages, each moving one
        sub-block boundary face; the aggregate per-direction volume is
        therefore the face area times the stage count.
        """
        q = isqrt_exact(p)
        cells_per_face = (self.klass.problem_size / q) ** 2
        return _FACE_DOUBLES * 8.0 * cells_per_face * q

    def make_app(self, p: int) -> Callable:
        self.validate_procs(p)
        q = isqrt_exact(p)
        n_iters = self.iterations()
        face = self.face_bytes(p)
        compute = self.compute_seconds_per_iteration(p)
        # compute splits: ~40% rhs, ~20% per sweep
        rhs_fraction = 0.4
        sweep_fraction = 0.2

        def app(ctx):
            jitter = self._jitter(ctx)
            row, col = divmod(ctx.rank, q)

            def grid_rank(r, c):
                return (r % q) * q + (c % q)

            # neighbour pairs (forward, backward) per sweep direction
            directions = (
                (grid_rank(row, col + 1), grid_rank(row, col - 1)),  # x
                (grid_rank(row + 1, col), grid_rank(row - 1, col)),  # y
                (grid_rank(row + 1, col + 1), grid_rank(row - 1, col - 1)),  # z
            )
            for iteration in range(n_iters):
                yield from ctx.compute(compute * rhs_fraction * jitter)
                for d, (fwd, bwd) in enumerate(directions):
                    tag = 100 + d
                    if fwd == ctx.rank:  # q == 1: no neighbours
                        yield from ctx.compute(compute * sweep_fraction * jitter)
                        continue
                    forward = ctx.isend(fwd, tag, None, face)
                    backward = ctx.isend(bwd, tag, None, face)
                    yield from ctx.recv(bwd, tag)
                    yield from ctx.recv(fwd, tag)
                    yield from forward.wait()
                    yield from backward.wait()
                    yield from ctx.compute(compute * sweep_fraction * jitter)
                ctx.update(lambda s, i=iteration: s.__setitem__("iteration", i + 1))
            # verification phase: residual norm across all ranks
            norm = yield from ctx.allreduce(1, lambda a, b: a + b, nbytes=40)
            ctx.update(lambda s, n=norm: s.__setitem__("norm", n))

        return app
