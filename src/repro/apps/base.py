"""NAS Parallel Benchmark skeletons: common machinery.

The paper evaluates with NPB 2.3 (Sec. 5.1) because its kernels "exhibit
classical communication patterns which are significant for the performance
evaluation of fault tolerant implementations".  What the checkpointing
protocols interact with is exactly that: the *communication pattern* (who
talks to whom, how often, with what message sizes, in what bursts) and the
*memory footprint* (which sets the checkpoint image size).  The skeletons
here reproduce those two properties per benchmark and class; the numerical
kernels themselves are replaced by calibrated compute delays (see DESIGN.md,
substitutions table).

Calibration: ``serial_seconds`` approximates the single-processor running
time of each class on the paper's 2 GHz Opteron nodes; per-iteration
per-process compute is ``serial_seconds / iterations / p``, with a small
deterministic per-rank jitter.  Absolute times therefore land in the right
ballpark (BT.B/64 ≈ a few hundred seconds), and — more importantly — the
compute/communication ratio that drives every figure's *shape* is faithful.

``scale`` uniformly reduces the iteration count (the harness's quick mode);
it shortens runs without touching per-iteration behaviour, so protocol
overheads per wave are unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.ft.image import RUNTIME_IMAGE_OVERHEAD_BYTES

__all__ = ["NASClassSpec", "NASBenchmark", "isqrt_exact"]


@dataclass(frozen=True)
class NASClassSpec:
    """One (benchmark, class) problem instance."""

    name: str  # "A" | "B" | "C"
    problem_size: int  # grid points per dimension / vector length
    iterations: int
    serial_seconds: float  # approximate single-CPU running time
    memory_bytes: float  # total working set across all ranks


class NASBenchmark:
    """Base class for benchmark skeletons.

    Subclasses define ``CLASSES``, :meth:`validate_procs` and
    :meth:`make_app`.
    """

    name = "nas"
    CLASSES: Dict[str, NASClassSpec] = {}
    #: True when the kernel re-decomposes over any rank count mid-run — the
    #: prerequisite for the "shrink" recovery policy
    malleable = False

    def __init__(self, klass: str = "B", scale: float = 1.0,
                 compute_jitter: float = 0.02) -> None:
        if klass not in self.CLASSES:
            raise ValueError(
                f"{self.name}: unknown class {klass!r} "
                f"(have {sorted(self.CLASSES)})"
            )
        if not (0.0 < scale <= 1.0):
            raise ValueError("scale must be in (0, 1]")
        self.klass = self.CLASSES[klass]
        self.scale = scale
        self.compute_jitter = compute_jitter

    # ------------------------------------------------------------ geometry
    def validate_procs(self, p: int) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def iterations(self) -> int:
        return max(1, round(self.klass.iterations * self.scale))

    # --------------------------------------------------------------- costs
    def compute_seconds_per_iteration(self, p: int) -> float:
        """Per-process compute time of one iteration at ``p`` processes."""
        return self.klass.serial_seconds / self.klass.iterations / p

    def image_bytes(self, p: int) -> float:
        """BLCR-style image size per rank: app memory share + runtime."""
        return self.klass.memory_bytes / p + RUNTIME_IMAGE_OVERHEAD_BYTES

    def expected_time(self, p: int) -> float:
        """Compute-only lower bound for the scaled run (no communication)."""
        return self.iterations() * self.compute_seconds_per_iteration(p)

    def _jitter(self, ctx) -> float:
        """Deterministic per-rank compute-speed perturbation (±jitter)."""
        if self.compute_jitter <= 0:
            return 1.0
        rng = ctx.sim.rng.stream(f"{self.name}.jitter.r{ctx.rank}")
        return float(1.0 + rng.uniform(-self.compute_jitter, self.compute_jitter))

    # ------------------------------------------------------------- factory
    def make_app(self, p: int) -> Callable:  # pragma: no cover - abstract
        """Return an app factory (``ctx -> generator``) for ``p`` ranks."""
        raise NotImplementedError

    def describe(self, p: int) -> str:
        return (
            f"{self.name}.{self.klass.name} p={p} iters={self.iterations()} "
            f"image={self.image_bytes(p) / 1e6:.1f}MB/rank"
        )


def isqrt_exact(p: int) -> int:
    """Integer square root, raising unless ``p`` is a perfect square."""
    root = math.isqrt(p)
    if root * root != p:
        raise ValueError(f"{p} is not a perfect square")
    return root
