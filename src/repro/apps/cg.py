"""CG — Conjugate Gradient skeleton.

NPB's CG estimates the largest eigenvalue of a sparse matrix with a power
iteration: ``niter`` outer iterations, each running 25 inner conjugate-
gradient steps.  The process grid is ``nprows x npcols`` (p must be a power
of two).  Every inner step performs:

* two dot products — recursive-halving reductions along each *row* of the
  process grid (tiny 8-byte messages, pure latency), and
* the matrix-vector product's vector exchange with the *transpose* partner
  (the local vector slice, a medium message).

CG is therefore "a benchmark with a lot of small communications, and ...
latency-bound" (Sec. 5.3): the paper uses it on Myrinet to expose the Vcl
daemon's per-message cost, and it is the workload of Figs. 7 and 8.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.apps.base import NASBenchmark, NASClassSpec

__all__ = ["CG"]

#: inner conjugate-gradient steps per outer (power-method) iteration
INNER_STEPS = 25


def _grid_shape(p: int) -> Tuple[int, int]:
    """NPB's CG grid: npcols x nprows with npcols >= nprows, both powers
    of 2 (npcols = 2*nprows when log2(p) is odd)."""
    log = p.bit_length() - 1
    if p <= 0 or (1 << log) != p:
        raise ValueError(f"CG needs a power-of-two process count, got {p}")
    nprows = 1 << (log // 2)
    npcols = p // nprows
    return nprows, npcols


class CG(NASBenchmark):
    """The CG benchmark skeleton."""

    name = "cg"
    # serial_seconds reflect the memory-bound sparse kernel (~0.5 Gflop/s
    # effective on a 2 GHz Opteron), which is what makes CG latency-bound at
    # scale: per-step compute shrinks to tens of milliseconds at p=64 while
    # the synchronization chains stay.
    CLASSES = {
        "A": NASClassSpec("A", 14_000, 15, 60.0, 0.06e9),
        "B": NASClassSpec("B", 75_000, 75, 1700.0, 0.5e9),
        "C": NASClassSpec("C", 150_000, 75, 4500.0, 1.1e9),
    }

    def validate_procs(self, p: int) -> None:
        _grid_shape(p)

    def exchange_bytes(self, p: int) -> float:
        """The transpose vector exchange: a row-block of the vector in
        doubles (N/nprows entries, as in the real benchmark)."""
        nprows, _npcols = _grid_shape(p)
        return 8.0 * self.klass.problem_size / max(1, nprows)

    def make_app(self, p: int) -> Callable:
        nprows, npcols = _grid_shape(p)
        n_iters = self.iterations()
        exchange = self.exchange_bytes(p)
        compute = self.compute_seconds_per_iteration(p) / INNER_STEPS

        def app(ctx):
            jitter = self._jitter(ctx)
            row, col = divmod(ctx.rank, npcols)
            # Transpose partner.  Square grid: true coordinate transpose
            # (diagonal processes exchange with themselves — no message, as
            # in real CG).  Rectangular grid: a fixed-mask pairing, which is
            # an involution by construction so the pairwise exchange can
            # never deadlock; byte volume matches the real exchange.
            if nprows == npcols:
                partner = col * npcols + row
            else:
                partner = ctx.rank ^ (p >> 1)
            for iteration in range(n_iters):
                for step in range(INNER_STEPS):
                    yield from ctx.compute(compute * jitter)
                    # two dot products: recursive halving along the row
                    for dot in range(2):
                        tag = 200 + dot
                        span = 1
                        while span < npcols:
                            peer_col = col ^ span
                            if peer_col < npcols:
                                peer = row * npcols + peer_col
                                request = ctx.isend(peer, tag, None, 8.0)
                                yield from ctx.recv(peer, tag)
                                yield from request.wait()
                            span <<= 1
                    # matrix-vector transpose exchange
                    if partner != ctx.rank:
                        request = ctx.isend(partner, 210, None, exchange)
                        yield from ctx.recv(partner, 210)
                        yield from request.wait()
                ctx.update(lambda s, i=iteration: s.__setitem__("iteration", i + 1))
            zeta = yield from ctx.allreduce(1, lambda a, b: a + b, nbytes=8)
            ctx.update(lambda s, z=zeta: s.__setitem__("zeta", z))

        return app
