"""LU — Lower-Upper Gauss-Seidel solver skeleton.

NPB's LU decomposes the domain over a 2D process grid and performs SSOR
sweeps with a *wavefront* dependency: in the lower-triangular sweep each
process waits for thin pencil messages from its north and west neighbours
before computing its block and forwarding to south and east; the upper
sweep runs the opposite diagonal.  The result is a long chain of small
latency-sensitive messages — the least forgiving pattern for a protocol
that freezes channels mid-iteration.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.base import NASBenchmark, NASClassSpec, isqrt_exact

__all__ = ["LU"]


class LU(NASBenchmark):
    """The LU benchmark skeleton."""

    name = "lu"
    CLASSES = {
        "A": NASClassSpec("A", 64, 250, 1500.0, 0.25e9),
        "B": NASClassSpec("B", 102, 250, 6300.0, 1.0e9),
        "C": NASClassSpec("C", 162, 250, 25000.0, 4.2e9),
    }

    def validate_procs(self, p: int) -> None:
        isqrt_exact(p)

    def pencil_bytes(self, p: int) -> float:
        """One wavefront pencil: a line of 5-vectors along the block edge."""
        q = isqrt_exact(p)
        return 5 * 8.0 * (self.klass.problem_size / q)

    def make_app(self, p: int) -> Callable:
        self.validate_procs(p)
        q = isqrt_exact(p)
        n_iters = self.iterations()
        pencil = self.pencil_bytes(p)
        compute = self.compute_seconds_per_iteration(p)

        def app(ctx):
            jitter = self._jitter(ctx)
            row, col = divmod(ctx.rank, q)
            north = (row - 1) * q + col if row > 0 else None
            south = (row + 1) * q + col if row < q - 1 else None
            west = row * q + (col - 1) if col > 0 else None
            east = row * q + (col + 1) if col < q - 1 else None

            for iteration in range(n_iters):
                # lower sweep: NW -> SE wavefront
                if north is not None:
                    yield from ctx.recv(north, 300)
                if west is not None:
                    yield from ctx.recv(west, 301)
                yield from ctx.compute(compute * 0.5 * jitter)
                if south is not None:
                    yield from ctx.send(south, 300, None, pencil)
                if east is not None:
                    yield from ctx.send(east, 301, None, pencil)
                # upper sweep: SE -> NW wavefront
                if south is not None:
                    yield from ctx.recv(south, 302)
                if east is not None:
                    yield from ctx.recv(east, 303)
                yield from ctx.compute(compute * 0.5 * jitter)
                if north is not None:
                    yield from ctx.send(north, 302, None, pencil)
                if west is not None:
                    yield from ctx.send(west, 303, None, pencil)
                ctx.update(lambda s, i=iteration: s.__setitem__("iteration", i + 1))
            residual = yield from ctx.allreduce(1, lambda a, b: a + b, nbytes=40)
            ctx.update(lambda s, r=residual: s.__setitem__("residual", r))

        return app
