"""FT — 3D FFT kernel skeleton (named ``ftb`` to avoid clashing with
:mod:`repro.ft`, the fault-tolerance package).

NPB's FT computes a 3D FFT each iteration; with a 1D ("slab") decomposition
the distributed transpose is a global all-to-all in which every process
sends ``N^3 * 16 / p^2`` bytes (complex doubles) to every other process.
It is the most bandwidth-hungry NPB pattern, useful for exercising the
protocols against bursts that saturate every NIC at once.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.base import NASBenchmark, NASClassSpec

__all__ = ["FTBench"]


class FTBench(NASBenchmark):
    """The FT benchmark skeleton."""

    name = "ft"
    CLASSES = {
        # problem_size is the cube edge of the (x*y*z) grid, iterations = Nt
        "A": NASClassSpec("A", 256, 6, 85.0, 5e9),
        "B": NASClassSpec("B", 512, 20, 900.0, 27e9),
        "C": NASClassSpec("C", 512, 20, 3600.0, 54e9),
    }

    def validate_procs(self, p: int) -> None:
        if p < 1 or (p & (p - 1)) != 0:
            raise ValueError(f"FT needs a power-of-two process count, got {p}")

    def alltoall_bytes_each(self, p: int) -> float:
        """Bytes sent to each peer in the distributed transpose."""
        n = self.klass.problem_size
        return 16.0 * (n ** 3) / (p * p) / 64.0  # /64: slab depth factor

    def make_app(self, p: int) -> Callable:
        self.validate_procs(p)
        n_iters = self.iterations()
        chunk = self.alltoall_bytes_each(p)
        compute = self.compute_seconds_per_iteration(p)

        def app(ctx):
            jitter = self._jitter(ctx)
            for iteration in range(n_iters):
                yield from ctx.compute(compute * 0.7 * jitter)
                if ctx.size > 1:
                    yield from ctx.alltoall([None] * ctx.size, nbytes_each=chunk)
                yield from ctx.compute(compute * 0.3 * jitter)
                checksum = yield from ctx.allreduce(1.0, lambda a, b: a + b,
                                                    nbytes=16)
                ctx.update(lambda s, i=iteration, c=checksum: (
                    s.__setitem__("iteration", i + 1),
                    s.__setitem__("checksum", c),
                ))

        return app
