"""Synthetic kernels: ping-pong, halo exchange, token ring, burst.

These are the small controllable workloads used by unit tests, ablation
benches and the NetPIPE tool — each isolates one communication regime the
NAS skeletons mix together.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["ping_pong", "halo_2d", "token_ring", "burst"]


def ping_pong(n_messages: int, nbytes: float, compute: float = 0.0) -> Callable:
    """Rank 0 <-> rank 1 round trips; other ranks idle.

    Rank 0's state records the measured round-trip times under ``"rtts"``.
    """

    def app(ctx):
        if ctx.rank == 0:
            for i in range(n_messages):
                if compute > 0:
                    yield from ctx.compute(compute)
                start = ctx.sim.now
                yield from ctx.send(1, 500, None, nbytes)
                yield from ctx.recv(1, 501)
                rtt = ctx.sim.now - start
                ctx.update(lambda s, r=rtt: s.setdefault("rtts", []).append(r))
        elif ctx.rank == 1:
            for i in range(n_messages):
                yield from ctx.recv(0, 500)
                yield from ctx.send(0, 501, None, nbytes)
        return None

    return app


def halo_2d(q: int, iters: int, nbytes: float, compute: float) -> Callable:
    """4-neighbour cyclic halo exchange on a q x q grid."""

    def app(ctx):
        row, col = divmod(ctx.rank, q)
        fwd = row * q + (col + 1) % q
        bwd = row * q + (col - 1) % q
        up = ((row + 1) % q) * q + col
        down = ((row - 1) % q) * q + col
        for iteration in range(iters):
            yield from ctx.compute(compute)
            if q > 1:
                requests = [
                    ctx.isend(fwd, 510, None, nbytes),
                    ctx.isend(bwd, 510, None, nbytes),
                    ctx.isend(up, 511, None, nbytes),
                    ctx.isend(down, 511, None, nbytes),
                ]
                yield from ctx.recv(bwd, 510)
                yield from ctx.recv(fwd, 510)
                yield from ctx.recv(down, 511)
                yield from ctx.recv(up, 511)
                for request in requests:
                    yield from request.wait()
            ctx.update(lambda s, i=iteration: s.__setitem__("iteration", i + 1))

    return app


def token_ring(rounds: int, nbytes: float = 64.0) -> Callable:
    """A token circulates the ring ``rounds`` times (pure latency chain)."""

    def app(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        for round_index in range(rounds):
            if ctx.rank == 0:
                yield from ctx.send(right, 520, round_index, nbytes)
                token = yield from ctx.recv(left, 520)
                ctx.update(lambda s, t=token: s.__setitem__("token", t))
            else:
                token = yield from ctx.recv(left, 520)
                yield from ctx.send(right, 520, token, nbytes)

    return app


def burst(iters: int, nbytes: float, fan: int = 4, compute: float = 0.01) -> Callable:
    """Bursty all-to-some traffic: each rank blasts ``fan`` peers, then
    computes — the burst pattern the paper notes interacts badly with
    frequent blocking checkpoints (Sec. 5.2)."""

    def app(ctx):
        peers = [(ctx.rank + k + 1) % ctx.size for k in range(min(fan, ctx.size - 1))]
        for iteration in range(iters):
            requests = [ctx.isend(peer, 530, None, nbytes) for peer in peers]
            for _ in peers:
                yield from ctx.recv(tag=530)
            for request in requests:
                yield from request.wait()
            yield from ctx.compute(compute)
            ctx.update(lambda s, i=iteration: s.__setitem__("iteration", i + 1))

    return app
