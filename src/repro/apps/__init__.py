"""Application workloads: NAS Parallel Benchmark skeletons + synthetic kernels.

``BENCHMARKS`` maps lowercase names to classes, mirroring NPB 2.3's kernels
used by the paper (BT and CG carry the evaluation; LU, MG and FT are
included for the extension studies).
"""

from repro.apps.base import NASBenchmark, NASClassSpec, isqrt_exact
from repro.apps.bt import BT
from repro.apps.cg import CG
from repro.apps.ftb import FTBench
from repro.apps.lu import LU
from repro.apps.mg import MG
from repro.apps.stencil import Stencil
from repro.apps.synthetic import burst, halo_2d, ping_pong, token_ring

BENCHMARKS = {
    "bt": BT,
    "cg": CG,
    "ft": FTBench,
    "lu": LU,
    "mg": MG,
    "stencil": Stencil,
}

__all__ = [
    "BENCHMARKS",
    "BT",
    "CG",
    "FTBench",
    "LU",
    "MG",
    "NASBenchmark",
    "NASClassSpec",
    "Stencil",
    "burst",
    "halo_2d",
    "isqrt_exact",
    "ping_pong",
    "token_ring",
]
