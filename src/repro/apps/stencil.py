"""Stencil — a malleable 1-D halo-exchange kernel.

Unlike the NPB skeletons, whose decompositions are baked into a process
grid (BT needs a perfect square, CG a power of two), this Jacobi-style
stencil decomposes a 1-D domain over *any* number of ranks: each rank owns
``problem_size**2 / p`` cells and trades one halo line with each ring
neighbour per iteration.  That flexibility is what the ``shrink`` recovery
policy needs — after a failure the survivors re-decompose the same domain
over the smaller communicator and resume from the last committed iteration
boundary (``resume_iteration`` in the rank state), like a malleable /
moldable MPI application under ULFM.

Total work is conserved across a shrink: per-iteration compute is the
serial time divided by the *current* rank count, so a 3-rank resumption of
a 4-rank run costs 4/3 per iteration — the figure's shrink series shows
exactly that trade.
"""

from __future__ import annotations

from typing import Callable

from repro.apps.base import NASBenchmark, NASClassSpec

__all__ = ["Stencil"]

#: doubles per halo cell: the solution line plus the coefficient line
_HALO_DOUBLES = 2


class Stencil(NASBenchmark):
    """The malleable stencil kernel."""

    name = "stencil"
    malleable = True
    CLASSES = {
        "A": NASClassSpec("A", 512, 200, 900.0, 0.2e9),
        "B": NASClassSpec("B", 1024, 200, 3600.0, 0.8e9),
        "C": NASClassSpec("C", 2048, 200, 14400.0, 3.2e9),
    }

    def validate_procs(self, p: int) -> None:
        if p < 1:
            raise ValueError("stencil needs at least one rank")

    def halo_bytes(self, p: int) -> float:
        """Bytes exchanged with one ring neighbour per iteration (one halo
        line of the 1-D strip decomposition; independent of ``p``)."""
        return _HALO_DOUBLES * 8.0 * self.klass.problem_size

    def make_app(self, p: int) -> Callable:
        self.validate_procs(p)
        n_iters = self.iterations()
        halo = self.halo_bytes(p)
        compute = self.compute_seconds_per_iteration(p)

        def app(ctx):
            jitter = self._jitter(ctx)
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            # a shrink resumption starts at the last iteration boundary
            # every committed image had reached; a fresh start sees 0
            start = ctx.state.get("resume_iteration", 0)
            for iteration in range(start, n_iters):
                if ctx.size > 1:
                    forward = ctx.isend(right, 7, None, halo)
                    backward = ctx.isend(left, 8, None, halo)
                    yield from ctx.recv(left, 7)
                    yield from ctx.recv(right, 8)
                    yield from forward.wait()
                    yield from backward.wait()
                yield from ctx.compute(compute * jitter)
                ctx.update(lambda s, i=iteration: s.__setitem__("iteration", i + 1))
            # verification: one residual contribution per surviving rank
            norm = yield from ctx.allreduce(1, lambda a, b: a + b, nbytes=8)
            ctx.update(lambda s, n=norm: s.__setitem__("norm", float(n)))

        return app
