"""A naive reference kernel, and the kernel-selection factory.

:class:`ReferenceSimulator` is the executable specification of the event
order the optimised kernel must produce.  The spec is simple to state:

    Every scheduled item has one *authoritative* position.  For a one-shot
    event that is the ``(time, priority, seq)`` it was pushed with; for a
    re-armable timer slot it is the handle's current ``(time, seq)``
    (updated on every re-arm, which always takes a fresh sequence number).
    The simulation processes live items strictly in ascending authoritative
    order; cancelled items never fire.

The optimised :class:`~repro.sim.engine.Simulator` realises this spec with
a binary heap, lazy tombstones, stale-anchor reconciliation and in-place
compaction — a pile of machinery whose subtle failure modes (a resurrected
cancelled timer, a tie-break flipped by a frozen sequence number, a lazily
moved timer firing at its stale position) would silently corrupt figures.
The reference kernel has none of that machinery: each pop is a full scan
for the minimal authoritative key over the live scheduled items.  O(n) per
pop and proudly so — its job is to be *obviously* correct, not fast.

The two kernels share the write side (``call_at``, ``_push``, ``rearm``
maintain the same slot fields), so what the differential rig in
``tests/sim/test_kernel_differential.py`` actually compares is the entire
read side: garbage discard, reconciliation, compaction and the hot run
loops.  Anything observable — pop order, clock, ``events_processed``,
step-listener streams, trace records, monitor verdicts — must match
event-for-event.

Kernel selection
----------------
:func:`make_simulator` is how the harness and the perf workloads construct
their simulator.  It honours the ``REPRO_KERNEL`` environment variable
(``fast`` — the default — or ``reference``), which lets the figure-level
byte-equivalence sweeps run the *whole* pipeline on the naive kernel with
no code changes::

    REPRO_KERNEL=reference python -m repro.harness --figure fig5 ...
"""

from __future__ import annotations

import os
from typing import Any, Optional, Tuple

from repro.sim.engine import (
    DeadlockError,
    Simulator,
    SimulationError,
    TimeLimitError,
    Watchdog,
)
from repro.sim.events import Event
from repro.sim.trace import Tracer

__all__ = ["ReferenceSimulator", "make_simulator", "KERNEL_ENV", "KERNELS"]

#: environment variable consulted by :func:`make_simulator`
KERNEL_ENV = "REPRO_KERNEL"


class ReferenceSimulator(Simulator):
    """Naive kernel: linear scan for the next live item, eager semantics.

    Inherits the write side (``call_at``, ``_push``, timer slots) and every
    factory from :class:`Simulator`; replaces the read side (``peek``,
    ``step``, ``run``, ``run_until_complete``) with scan-based versions
    that consult only *authoritative* positions.  The inherited ``_heap``
    list is treated as a plain bag of entries — the reference kernel never
    relies on the heap invariant, tombstone counts, or compaction (the
    inherited compaction may still fire from the write side; it only
    shrinks the bag, which a scan is indifferent to).
    """

    # ------------------------------------------------------------ selection
    def _scan_next(self) -> Optional[Tuple[int, Tuple[float, int, int, Any]]]:
        """Index and authoritative entry of the next live item, or None.

        An entry is live when its item is not cancelled and it is the
        item's current incarnation: for events (one-shot, ``seq`` fixed at
        push) every entry qualifies; for timer slots only the anchor entry
        (``entry seq == handle.heap_seq``) does, and its authoritative key
        is read off the handle, not the entry.
        """
        best_index = -1
        best_key: Optional[Tuple[float, int, int]] = None
        best_item: Any = None
        for index, (etime, priority, eseq, item) in enumerate(self._heap):
            if item.cancelled:
                continue
            iseq = item.seq
            if iseq == eseq:
                key = (etime, priority, eseq)
            else:
                # A timer slot that was re-armed after this entry was
                # pushed: only its anchor stands for it.
                if eseq != item.heap_seq:
                    continue
                key = (item.time, priority, iseq)
            if best_key is None or key < best_key:
                best_index, best_key, best_item = index, key, item
        if best_key is None:
            return None
        return best_index, (best_key[0], best_key[1], best_key[2], best_item)

    def _take(self, index: int) -> None:
        """Remove one entry from the bag (order is irrelevant to a scan)."""
        heap = self._heap
        last = heap.pop()
        if index < len(heap):
            heap[index] = last

    # ------------------------------------------------------------- read side
    def peek(self) -> float:
        found = self._scan_next()
        if found is None:
            return float("inf")
        return found[1][0]

    def step(self) -> None:
        found = self._scan_next()
        if found is None:
            raise SimulationError("step() on an empty event heap")
        index, (time, priority, seq, item) = found
        self._take(index)
        self._fire(time, priority, seq, item)

    def _fire(self, time: float, priority: int, seq: int, item: Any) -> None:
        """The same per-pop observable sequence as the fast kernel."""
        self._now = time
        self._events_processed += 1
        if self._watchdog is not None:
            self._watchdog.observe(self, time, item)
        listeners = self.trace.step_listeners
        if listeners:
            for listener in listeners:
                listener(time, priority, seq)
        item._process()

    def run(self, until: Optional[float] = None) -> None:
        if until is not None and until < self._now:
            raise SimulationError(
                f"until={until!r} is in the past (now={self._now!r})"
            )
        while True:
            found = self._scan_next()
            if found is None:
                break
            index, (time, priority, seq, item) = found
            if until is not None and time > until:
                break
            self._take(index)
            self._fire(time, priority, seq, item)
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(self, event: Event, limit: Optional[float] = None) -> Any:
        while not event.processed:
            found = self._scan_next()
            if found is None:
                raise DeadlockError(
                    f"deadlock: event heap drained before {event!r} completed"
                )
            index, (time, priority, seq, item) = found
            if limit is not None and time > limit:
                raise TimeLimitError(
                    f"time limit {limit!r} reached before {event!r} completed"
                )
            self._take(index)
            self._fire(time, priority, seq, item)
        if event.ok:
            return event.value
        event.defused = True
        raise event.value


#: registered kernels, by the name ``REPRO_KERNEL`` selects
KERNELS = {
    "fast": Simulator,
    "reference": ReferenceSimulator,
}


def make_simulator(
    seed: int = 0,
    trace: Optional[Tracer] = None,
    watchdog: Optional[Watchdog] = None,
    kernel: Optional[str] = None,
) -> Simulator:
    """Construct the selected simulation kernel.

    ``kernel`` overrides explicitly; otherwise the ``REPRO_KERNEL``
    environment variable decides (default ``fast``).  An unknown name is a
    hard error — silently falling back would make an equivalence sweep
    vacuously green.
    """
    name = kernel if kernel is not None else os.environ.get(KERNEL_ENV, "fast")
    try:
        cls = KERNELS[name]
    except KeyError:
        raise SimulationError(
            f"unknown simulation kernel {name!r} "
            f"(valid: {', '.join(sorted(KERNELS))})"
        ) from None
    return cls(seed=seed, trace=trace, watchdog=watchdog)
