"""Deterministic discrete-event simulation kernel.

This package is the foundation every other subsystem builds on.  It provides a
SimPy-flavoured, generator-based process model on top of a deterministic event
heap:

* :class:`~repro.sim.engine.Simulator` — the event loop and simulation clock.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.Condition` — one-shot occurrences processes wait on.
* :class:`~repro.sim.process.Process` — a generator driven by the events it
  yields; supports interruption (used for failure injection).
* :mod:`~repro.sim.primitives` — FIFO stores and counted resources.
* :mod:`~repro.sim.rng` — named, reproducible random streams.
* :mod:`~repro.sim.trace` — structured tracing used by the benchmark harness.

Determinism contract: given the same root seed and the same program, every run
produces the identical event order.  Ties in time are broken by (priority,
sequence number), and all randomness flows through :class:`~repro.sim.rng.RngRegistry`.
"""

from repro.sim.engine import (
    DeadlockError,
    LivelockError,
    SimulationError,
    Simulator,
    TimeLimitError,
    TimerHandle,
    Watchdog,
)
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Timeout,
)
from repro.sim.process import Interrupt, Process
from repro.sim.primitives import Resource, Store
from repro.sim.reference import KERNEL_ENV, ReferenceSimulator, make_simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "DeadlockError",
    "KERNEL_ENV",
    "LivelockError",
    "Event",
    "Interrupt",
    "Process",
    "ReferenceSimulator",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeLimitError",
    "TimerHandle",
    "Timeout",
    "Watchdog",
    "TraceRecord",
    "Tracer",
    "make_simulator",
]
