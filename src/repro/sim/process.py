"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: every object the generator
yields must be an :class:`~repro.sim.events.Event`; the generator resumes when
that event is processed, receiving the event's value (or its exception thrown
in when the event failed).

Processes are themselves events — they succeed with the generator's return
value, or fail with its uncaught exception — so they can be joined with
``yield other_process`` or combined in conditions.

Interruption (used to model node failures and protocol aborts) throws
:class:`Interrupt` into the generator at its current yield point and detaches
it from whatever event it was waiting on.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import Event, URGENT

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """An executing generator, schedulable and joinable like an event."""

    __slots__ = ("generator", "_target")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim, name=name or getattr(generator, "__name__", None))
        self.generator = generator
        #: the event this process is currently waiting on (None when running
        #: its first step or already terminated)
        self._target: Optional[Event] = None
        # Kick off the first step as an urgent event at the current time.
        bootstrap = Event(sim, name=f"init:{self.name}")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(priority=URGENT)
        self._target = bootstrap

    # ---------------------------------------------------------------- public
    @property
    def alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._state == Event.PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is a no-op, which keeps failure injection
        code simple (a node may die after its processes already finished).
        """
        if not self.alive:
            return
        target = self._target
        if target is not None and not target.processed:
            # Detach from the event we were waiting on; it may still fire but
            # must no longer resume us.
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            # We were the consumer of that event; if it fails later (e.g. a
            # poisoned store getter) nobody is left to observe the failure.
            target.defused = True
        wakeup = Event(self.sim, name=f"interrupt:{self.name}")
        wakeup.callbacks.append(self._resume)
        wakeup.fail(Interrupt(cause), priority=URGENT)
        # The wakeup is now what we are waiting on: a second interrupt in
        # the same instant (e.g. a node kill followed by the job teardown)
        # detaches from it above and replaces it, so the generator sees
        # exactly one Interrupt instead of a throw into a dead generator.
        self._target = wakeup

    # -------------------------------------------------------------- internals
    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                event.defused = True
                target = self.generator.throw(event.value)
        except StopIteration as exc:
            self.succeed(getattr(exc, "value", None))
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process "cleanly": this is
            # the normal way a killed node's processes disappear.  The cause
            # is preserved as the process failure value so joiners notice,
            # but it is pre-defused so an unjoined killed process does not
            # crash the simulation.
            self.defused = True
            self.fail(exc)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = TypeError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self.generator.close()
            self.fail(error)
            return
        if target.sim is not self.sim:
            self.generator.close()
            self.fail(ValueError("yielded event belongs to another simulator"))
            return
        if target.processed:
            # Already over: resume immediately (but via the heap to preserve
            # the cooperative-scheduling illusion and determinism).
            relay = Event(self.sim, name=f"relay:{self.name}")
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value, priority=URGENT)
            else:
                target.defused = True
                relay.fail(target.value, priority=URGENT)
            self._target = relay
        else:
            target.callbacks.append(self._resume)
            self._target = target
