"""One-shot events for the discrete-event kernel.

Events follow a small, strict life cycle::

    pending --> triggered --> processed

``succeed``/``fail`` move an event to *triggered* and put it on the simulator
heap; when the simulator pops it, its callbacks run exactly once and it becomes
*processed*.  Events are one-shot: triggering twice is a programming error and
raises :class:`RuntimeError`.

A failed event whose failure is never observed (no callbacks and not defused)
re-raises its exception out of :meth:`repro.sim.engine.Simulator.run`; this
mirrors SimPy and turns silently dropped errors into loud test failures.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["Event", "Timeout", "Condition", "AllOf", "AnyOf"]

# Heap priorities.  Lower runs earlier at equal timestamps.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.engine.Simulator`.
    name:
        Optional label used in ``repr`` and traces.
    """

    __slots__ = (
        "sim",
        "name",
        "callbacks",
        "_value",
        "_ok",
        "_state",
        "defused",
        "seq",
    )

    #: life-cycle states
    PENDING = 0
    TRIGGERED = 1
    PROCESSED = 2

    #: events are never tombstones; the engine's pop loop checks
    #: ``item.cancelled`` uniformly on events and timer handles, and a class
    #: attribute keeps the check a plain load despite ``__slots__``
    cancelled = False

    def __init__(self, sim: "Simulator", name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._state = Event.PENDING
        #: set to True once a consumer acknowledged the failure
        self.defused = False

    # ------------------------------------------------------------------ state
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._state >= Event.TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == Event.PROCESSED

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None while pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when failed).

        Only meaningful once :attr:`triggered` is true.
        """
        return self._value

    # ------------------------------------------------------------- triggering
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Mark the event successful and schedule its callbacks for *now*."""
        if self._state != Event.PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._state = Event.TRIGGERED
        # Inline of sim._push(self, 0.0, priority): triggering is the
        # hottest event-creation path and a zero delay needs no validation
        # or addition (simulated times are never -0.0, so now + 0.0 == now).
        sim = self.sim
        seq = sim._seq + 1
        sim._seq = seq
        self.seq = seq
        heapq.heappush(sim._heap, (sim._now, priority, seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Mark the event failed and schedule its callbacks for *now*."""
        if self._state != Event.PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = Event.TRIGGERED
        sim = self.sim  # inline of sim._push(self, 0.0, priority); see succeed
        seq = sim._seq + 1
        sim._seq = seq
        self.seq = seq
        heapq.heappush(sim._heap, (sim._now, priority, seq, self))
        return self

    # ------------------------------------------------------------- processing
    def _process(self) -> None:
        """Run callbacks.  Called by the simulator exactly once."""
        self._state = Event.PROCESSED
        callbacks = self.callbacks
        if callbacks:
            # Detach before running so a callback appending to this event
            # (legal but pointless once processed) cannot extend the loop;
            # when there are no callbacks the existing empty list is kept,
            # which skips an allocation per fire-and-forget event.
            self.callbacks = []
            for callback in callbacks:
                callback(self)
        if self._ok is False and not self.defused:
            # Nobody consumed the failure: surface it from run().
            raise self._value

    def describe(self) -> str:
        """Compact diagnostic label: the event's name (or class) plus the
        names of whatever its callbacks would resume.

        This is what the engine watchdog samples while a zero-time cascade
        spins, so it must work on any event without touching its state:
        bound-method callbacks (``Process._resume``, ``Condition._on_child``)
        expose their owner via ``__self__`` and the owner's ``name`` labels
        the waiter.
        """
        label = self.name or self.__class__.__name__
        waiters = []
        for callback in self.callbacks:
            owner = getattr(callback, "__self__", None)
            if owner is None or owner is self:
                continue
            owner_name = getattr(owner, "name", None)
            if owner_name:
                waiters.append(str(owner_name))
        if waiters:
            return f"{label} -> {','.join(waiters)}"
        return label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or self.__class__.__name__
        state = ("pending", "triggered", "processed")[self._state]
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        name: Optional[str] = None,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim, name=name)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = Event.TRIGGERED
        sim._push(self, delay, NORMAL)


class Condition(Event):
    """An event that triggers based on the outcomes of child events.

    ``evaluate`` receives (events, number_processed_ok) and returns True once
    the condition holds.  When it triggers successfully its value is a dict
    mapping each *processed* child event to its value.

    Any child failure fails the whole condition immediately (the failure is
    forwarded, the remaining children are left untouched).
    """

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events, name: Optional[str] = None) -> None:
        super().__init__(sim, name=name)
        self.events = tuple(events)
        self._count = 0
        for event in self.events:
            if not isinstance(event, Event):
                raise TypeError(f"Condition child {event!r} is not an Event")
            if event.sim is not sim:
                raise ValueError("all condition children must share a simulator")
        if self._evaluate_now():
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _satisfied(self, count: int) -> bool:
        raise NotImplementedError

    def _evaluate_now(self) -> bool:
        """Handle conditions that are satisfiable at construction time."""
        processed_ok = sum(1 for e in self.events if e.processed and e.ok)
        failed = next((e for e in self.events if e.processed and not e.ok), None)
        if failed is not None:
            failed.defused = True
            self.fail(failed.value)
            return True
        self._count = processed_ok
        if self._satisfied(processed_ok):
            self.succeed(self._collect())
            return True
        return False

    def _collect(self):
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._count += 1
        if self._satisfied(self._count):
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggers when every child has succeeded."""

    __slots__ = ()

    def _satisfied(self, count: int) -> bool:
        return count >= len(self.events)


class AnyOf(Condition):
    """Triggers when at least one child has succeeded."""

    __slots__ = ()

    def _satisfied(self, count: int) -> bool:
        return count >= 1 or not self.events
