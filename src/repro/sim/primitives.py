"""Synchronization primitives built on events.

* :class:`Store` — an unbounded FIFO queue with event-returning ``get``; the
  workhorse behind sockets, progress-engine inboxes and server request queues.
* :class:`Resource` — a counted resource with FIFO grant order; models bounded
  things such as the number of concurrent ssh connections or a disk.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.events import Event

__all__ = ["Store", "Resource", "Gate"]


class Store:
    """Unbounded FIFO of items with event-based consumption.

    ``put`` never blocks.  ``get`` returns an :class:`Event` that succeeds
    with the oldest item as soon as one is available (immediately if the
    store is non-empty).  Waiters are served strictly in request order.

    ``poison`` fails all current and future getters with the given exception —
    this is how broken connections propagate to blocked readers.
    """

    __slots__ = ("sim", "name", "_items", "_getters", "_poison")

    def __init__(self, sim: "Simulator", name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._poison: Optional[BaseException] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def poisoned(self) -> bool:
        return self._poison is not None

    def put(self, item: Any) -> None:
        if self._poison is not None:
            raise RuntimeError(f"put() on poisoned store {self.name!r}")
        while self._getters:
            getter = self._getters.popleft()
            # skip cancelled/interrupted waiters: triggered already, or
            # abandoned (the interrupted process removed its callback)
            if getter.triggered or not getter.callbacks:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        event = self.sim.event(name=f"get:{self.name}")
        if self._items:
            event.succeed(self._items.popleft())
        elif self._poison is not None:
            event.fail(self._poison)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns the item or None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def peek(self) -> Any:
        return self._items[0] if self._items else None

    def poison(self, exception: BaseException) -> None:
        """Fail all pending and future getters (idempotent)."""
        if self._poison is not None:
            return
        self._poison = exception
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.fail(exception)

    def drain(self) -> Deque[Any]:
        """Remove and return all queued items."""
        items, self._items = self._items, deque()
        return items


class Resource:
    """Counted resource with FIFO grant order.

    ``acquire`` returns an event that succeeds when a slot is granted;
    ``release`` hands the slot to the next waiter.  There is no ownership
    bookkeeping — callers are trusted to pair acquire/release, matching the
    kernel-style use sites in this codebase.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters", "name")

    def __init__(self, sim: "Simulator", capacity: int, name: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        event = self.sim.event(name=f"acquire:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered or not waiter.callbacks:  # cancelled waiter
                continue
            waiter.succeed()
            return
        if self._in_use <= 0:
            raise RuntimeError(f"release() without acquire on {self.name!r}")
        self._in_use -= 1


class Gate:
    """A reusable open/closed barrier.

    While open, ``wait`` completes immediately; while closed, waiters queue
    until the next ``open()``.  Used by the blocking (Pcl) protocol to freeze
    sends/receives per channel during a checkpoint wave.
    """

    __slots__ = ("sim", "name", "_open", "_waiters")

    def __init__(self, sim: "Simulator", open: bool = True, name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name
        self._open = open
        self._waiters: Deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def close(self) -> None:
        self._open = False

    def open(self) -> None:
        self._open = True
        waiters, self._waiters = self._waiters, deque()
        for waiter in waiters:
            if not waiter.triggered and waiter.callbacks:
                waiter.succeed()

    def wait(self) -> Event:
        event = self.sim.event(name=f"gate:{self.name}")
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event
