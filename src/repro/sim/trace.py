"""Structured tracing and counters.

The harness reconstructs everything it reports (wave counts, overhead
decompositions, bytes moved) from traces, so the trace layer is a first-class
part of the reproduction rather than debug output.

Records are cheap plain tuples; when a category is not enabled the record call
is a single dict lookup and a branch.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.fields)


class Tracer:
    """Collects :class:`TraceRecord` entries and scalar counters.

    Parameters
    ----------
    enabled:
        Master switch.  A disabled tracer still accumulates counters (they are
        nearly free and the harness always needs them) but drops records.
    categories:
        When given, only these categories are recorded.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        self.enabled = enabled
        self.categories: Optional[Set[str]] = set(categories) if categories else None
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()

    # --------------------------------------------------------------- records
    def record(self, time: float, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time, category, tuple(fields.items())))

    def select(self, category: str) -> Iterator[TraceRecord]:
        """All records of ``category`` in chronological order."""
        return (r for r in self.records if r.category == category)

    def last(self, category: str) -> Optional[TraceRecord]:
        for record in reversed(self.records):
            if record.category == category:
                return record
        return None

    # -------------------------------------------------------------- counters
    def count(self, key: str, increment: float = 1) -> None:
        self.counters[key] += increment

    def __getitem__(self, key: str) -> float:
        return self.counters[key]

    def clear(self) -> None:
        self.records.clear()
        self.counters.clear()
