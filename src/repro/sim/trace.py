"""Structured tracing and counters.

The harness reconstructs everything it reports (wave counts, overhead
decompositions, bytes moved) from traces, so the trace layer is a first-class
part of the reproduction rather than debug output.

Records are cheap plain tuples; when a category is not enabled the record call
is a single dict lookup and a branch.

The tracer is also the hub the online invariant monitors
(:mod:`repro.verify`) plug into: a subscriber registers for a set of
categories and is handed every matching :class:`TraceRecord` *as it is
emitted*, whether or not the record is also stored.  Hot call sites guard
their record construction with :meth:`Tracer.wants`, so a tracer with no
storage and no subscribers costs one method call per potential record.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

__all__ = ["TraceRecord", "Tracer", "dump_jsonl", "load_jsonl"]


class TraceRecord:
    """One trace entry.

    A hand-rolled ``__slots__`` class rather than a frozen dataclass: one
    record is built per stored-or-delivered trace event (tens of thousands
    per figure run), and the frozen-dataclass ``__init__`` routes every
    field through ``object.__setattr__``, which was a measurable slice of
    the bt_wave profile.  Records are immutable by convention.
    """

    __slots__ = ("time", "category", "fields")

    def __init__(
        self,
        time: float,
        category: str,
        fields: Tuple[Tuple[str, Any], ...],
    ) -> None:
        self.time = time
        self.category = category
        self.fields = fields

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.fields)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return (self.time, self.category, self.fields) == (
            other.time, other.category, other.fields
        )

    def __hash__(self) -> int:
        return hash((self.time, self.category, self.fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceRecord(time={self.time!r}, "
                f"category={self.category!r}, fields={self.fields!r})")


class Tracer:
    """Collects :class:`TraceRecord` entries and scalar counters.

    Parameters
    ----------
    enabled:
        Master switch for record *storage*.  A disabled tracer still
        accumulates counters (they are nearly free and the harness always
        needs them) and still feeds subscribers, but drops records.
    categories:
        When given, only these categories are stored.  Subscribers declare
        their own category interest independently.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        self._enabled = enabled
        self._categories: Optional[Set[str]] = set(categories) if categories else None
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        #: (callback, categories-or-None) pairs fed live records
        self._subscribers: List[Tuple[Callable[[TraceRecord], None], Optional[Set[str]]]] = []
        #: per-category dispatch plans: ``category -> (store, callbacks)``,
        #: computed once per category and invalidated whenever the
        #: subscriber list, the enabled flag or the category filter changes.
        #: This replaces a per-record linear subscriber scan with one dict
        #: lookup on the hot path.
        self._plans: Dict[str, Tuple[bool, Tuple[Callable[[TraceRecord], None], ...]]] = {}
        #: callbacks the simulator invokes once per processed event with
        #: ``(time, priority, seq)`` — the raw total-order stream, kept out
        #: of the record path because it fires for *every* heap pop
        self.step_listeners: List[Callable[[float, int, int], None]] = []

    # --------------------------------------------------------- configuration
    @property
    def enabled(self) -> bool:
        """Master switch for record *storage* (see class docstring)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = value
        self._plans.clear()

    @property
    def categories(self) -> Optional[Set[str]]:
        """Storage category filter; None stores everything (when enabled)."""
        return self._categories

    @categories.setter
    def categories(self, value: Optional[Iterable[str]]) -> None:
        self._categories = set(value) if value is not None else None
        self._plans.clear()

    def _plan(self, category: str) -> Tuple[bool, Tuple[Callable[[TraceRecord], None], ...]]:
        store = self._enabled and (
            self._categories is None or category in self._categories
        )
        callbacks = tuple(
            callback
            for callback, wanted in self._subscribers
            if wanted is None or category in wanted
        )
        plan = (store, callbacks)
        self._plans[category] = plan
        return plan

    # --------------------------------------------------------------- records
    def wants(self, category: str) -> bool:
        """True when a record of ``category`` would be stored or delivered.

        Hot paths call this before building a record's field dict.
        """
        plan = self._plans.get(category)
        if plan is None:
            plan = self._plan(category)
        return plan[0] or bool(plan[1])

    def record(self, time: float, category: str, **fields: Any) -> None:
        plan = self._plans.get(category)
        if plan is None:
            plan = self._plan(category)
        store, callbacks = plan
        if not store and not callbacks:
            return
        entry = TraceRecord(time, category, tuple(fields.items()))
        if store:
            self.records.append(entry)
        for callback in callbacks:
            callback(entry)

    def subscribe(
        self,
        callback: Callable[[TraceRecord], None],
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        """Deliver matching records to ``callback`` as they are emitted.

        ``categories=None`` subscribes to everything.
        """
        wanted = set(categories) if categories is not None else None
        self._subscribers.append((callback, wanted))
        self._plans.clear()

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        # Equality, not identity: bound methods (`bus.dispatch`) are a fresh
        # object on every attribute access, but compare equal.
        self._subscribers = [
            (cb, cats) for cb, cats in self._subscribers if cb != callback
        ]
        self._plans.clear()

    def select(self, category: str) -> Iterator[TraceRecord]:
        """All records of ``category`` in chronological order."""
        return (r for r in self.records if r.category == category)

    def last(self, category: str) -> Optional[TraceRecord]:
        for record in reversed(self.records):
            if record.category == category:
                return record
        return None

    # -------------------------------------------------------------- counters
    def count(self, key: str, increment: float = 1) -> None:
        self.counters[key] += increment

    def __getitem__(self, key: str) -> float:
        return self.counters[key]

    def clear(self) -> None:
        self.records.clear()
        self.counters.clear()


# ------------------------------------------------------------------ JSONL IO
def dump_jsonl(records: Iterable[TraceRecord], path: str) -> int:
    """Write records as JSON lines ``{"time", "category", ...fields}``.

    Non-JSON-serializable field values are stored as their ``repr``.
    Returns the number of records written.
    """
    written = 0
    with open(path, "w") as handle:
        for record in records:
            row = {"time": record.time, "category": record.category}
            row.update(record.as_dict())
            handle.write(json.dumps(row, default=repr) + "\n")
            written += 1
    return written


def load_jsonl(path: str) -> Iterator[TraceRecord]:
    """Yield :class:`TraceRecord` entries from a :func:`dump_jsonl` file."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            time = row.pop("time")
            category = row.pop("category")
            yield TraceRecord(float(time), category, tuple(row.items()))
