"""Structured tracing and counters.

The harness reconstructs everything it reports (wave counts, overhead
decompositions, bytes moved) from traces, so the trace layer is a first-class
part of the reproduction rather than debug output.

Records are cheap plain tuples; when a category is not enabled the record call
is a single dict lookup and a branch.

The tracer is also the hub the online invariant monitors
(:mod:`repro.verify`) plug into: a subscriber registers for a set of
categories and is handed every matching :class:`TraceRecord` *as it is
emitted*, whether or not the record is also stored.  Hot call sites guard
their record construction with :meth:`Tracer.wants`, so a tracer with no
storage and no subscribers costs one method call per potential record.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

__all__ = ["TraceRecord", "Tracer", "dump_jsonl", "load_jsonl"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    fields: Tuple[Tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.fields)


class Tracer:
    """Collects :class:`TraceRecord` entries and scalar counters.

    Parameters
    ----------
    enabled:
        Master switch for record *storage*.  A disabled tracer still
        accumulates counters (they are nearly free and the harness always
        needs them) and still feeds subscribers, but drops records.
    categories:
        When given, only these categories are stored.  Subscribers declare
        their own category interest independently.
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        self.enabled = enabled
        self.categories: Optional[Set[str]] = set(categories) if categories else None
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        #: (callback, categories-or-None) pairs fed live records
        self._subscribers: List[Tuple[Callable[[TraceRecord], None], Optional[Set[str]]]] = []
        #: union of subscribed categories; None entries set :attr:`_all_live`
        self._live: Set[str] = set()
        self._all_live = False
        #: callbacks the simulator invokes once per processed event with
        #: ``(time, priority, seq)`` — the raw total-order stream, kept out
        #: of the record path because it fires for *every* heap pop
        self.step_listeners: List[Callable[[float, int, int], None]] = []

    # --------------------------------------------------------------- records
    def wants(self, category: str) -> bool:
        """True when a record of ``category`` would be stored or delivered.

        Hot paths call this before building a record's field dict.
        """
        if self._all_live or category in self._live:
            return True
        if not self.enabled:
            return False
        return self.categories is None or category in self.categories

    def record(self, time: float, category: str, **fields: Any) -> None:
        store = self.enabled and (
            self.categories is None or category in self.categories
        )
        live = self._all_live or category in self._live
        if not store and not live:
            return
        entry = TraceRecord(time, category, tuple(fields.items()))
        if store:
            self.records.append(entry)
        if live:
            for callback, wanted in self._subscribers:
                if wanted is None or category in wanted:
                    callback(entry)

    def subscribe(
        self,
        callback: Callable[[TraceRecord], None],
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        """Deliver matching records to ``callback`` as they are emitted.

        ``categories=None`` subscribes to everything.
        """
        wanted = set(categories) if categories is not None else None
        self._subscribers.append((callback, wanted))
        if wanted is None:
            self._all_live = True
        else:
            self._live |= wanted

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        # Equality, not identity: bound methods (`bus.dispatch`) are a fresh
        # object on every attribute access, but compare equal.
        self._subscribers = [
            (cb, cats) for cb, cats in self._subscribers if cb != callback
        ]
        self._all_live = any(cats is None for _cb, cats in self._subscribers)
        self._live = set().union(
            *(cats for _cb, cats in self._subscribers if cats is not None)
        ) if self._subscribers else set()

    def select(self, category: str) -> Iterator[TraceRecord]:
        """All records of ``category`` in chronological order."""
        return (r for r in self.records if r.category == category)

    def last(self, category: str) -> Optional[TraceRecord]:
        for record in reversed(self.records):
            if record.category == category:
                return record
        return None

    # -------------------------------------------------------------- counters
    def count(self, key: str, increment: float = 1) -> None:
        self.counters[key] += increment

    def __getitem__(self, key: str) -> float:
        return self.counters[key]

    def clear(self) -> None:
        self.records.clear()
        self.counters.clear()


# ------------------------------------------------------------------ JSONL IO
def dump_jsonl(records: Iterable[TraceRecord], path: str) -> int:
    """Write records as JSON lines ``{"time", "category", ...fields}``.

    Non-JSON-serializable field values are stored as their ``repr``.
    Returns the number of records written.
    """
    written = 0
    with open(path, "w") as handle:
        for record in records:
            row = {"time": record.time, "category": record.category}
            row.update(record.as_dict())
            handle.write(json.dumps(row, default=repr) + "\n")
            written += 1
    return written


def load_jsonl(path: str) -> Iterator[TraceRecord]:
    """Yield :class:`TraceRecord` entries from a :func:`dump_jsonl` file."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            time = row.pop("time")
            category = row.pop("category")
            yield TraceRecord(float(time), category, tuple(row.items()))
