"""Reproducible, named random streams.

Every stochastic component in the simulator (compute-time jitter, failure
injection, launch skew, ...) draws from its own named stream.  Streams are
derived from the root seed and the stream name only, so adding a new consumer
never perturbs the draws seen by existing components — a property the
regression tests rely on.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


def _stable_hash(name: str) -> int:
    """A hash of ``name`` that is stable across processes and Python builds."""
    return zlib.crc32(name.encode("utf-8"))


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence([self.seed, _stable_hash(name)])
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def fork(self, salt: int) -> "RngRegistry":
        """Derive an independent registry (used for per-run sub-seeding)."""
        return RngRegistry(self.seed * 1_000_003 + int(salt))
