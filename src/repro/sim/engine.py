"""The simulation event loop.

:class:`Simulator` owns the clock and the event heap.  Heap entries are
``(time, priority, sequence, item)`` tuples; the monotonically increasing
sequence number makes the order a deterministic total order, which is the
backbone of the reproducibility guarantees the benchmark harness relies on.
An item is either an :class:`~repro.sim.events.Event` or a
:class:`TimerHandle` — a cancellable scheduled callback returned by
:meth:`Simulator.call_at`.

Cancellation is lazy: a cancelled handle becomes a *tombstone* that the
loop discards when it surfaces at the heap top (never advancing the clock,
never feeding the watchdog or step listeners), and the heap is compacted in
place once tombstones outnumber live entries — so hot re-rate paths like
the flow scheduler can cancel-and-reschedule without growing the heap by
one dead entry per neighbourhood change.

The optional :class:`Watchdog` turns the two ways a discrete-event program
can stall — a zero-time event cascade that never advances the clock, and a
wall-clock stall at one simulated instant — into a :class:`LivelockError`
that carries the repeating event cycle and the processes waiting on the
heap, so a stuck run is a diagnosable artifact instead of a hung pytest.
"""

from __future__ import annotations

import heapq
import time as _wall
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout, NORMAL
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

__all__ = [
    "Simulator",
    "SimulationError",
    "DeadlockError",
    "TimeLimitError",
    "LivelockError",
    "TimerHandle",
    "Watchdog",
    "DEFAULT_MAX_SAME_TIME_EVENTS",
]

#: default zero-time cascade budget before the watchdog trips.  Legitimate
#: same-timestamp bursts measured across the harness peak in the hundreds
#: (a 337-process barrier release is ~1.3k pops); real livelocks spin
#: millions of times, so 100k separates the two by orders of magnitude in
#: both directions while tripping within a fraction of a second.
DEFAULT_MAX_SAME_TIME_EVENTS = 100_000


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. time travel)."""


class TimerHandle:
    """A scheduled callback that can be cancelled in O(1).

    Returned by :meth:`Simulator.call_at`.  :meth:`cancel` marks the handle
    a tombstone; the heap entry stays where it is and is discarded lazily
    (see the module docstring).  A cancelled handle's callback is
    guaranteed never to run.
    """

    __slots__ = ("sim", "time", "callback", "args", "name", "cancelled")

    def __init__(
        self,
        sim: "Simulator",
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        name: Optional[str],
    ) -> None:
        self.sim = sim
        self.time = time
        self.callback = callback
        self.args = args
        self.name = name
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            self.sim._note_tombstone()

    def _process(self) -> None:
        self.callback(*self.args)

    def describe(self) -> str:
        """Diagnostic label for watchdog reports; resolves the callback's
        qualified name lazily so the hot scheduling path never pays for it."""
        if self.name:
            return self.name
        target = getattr(self.callback, "__qualname__", None)
        return f"call:{target}" if target else "timer"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<TimerHandle {self.describe()} t={self.time!r} {state}>"


class DeadlockError(SimulationError):
    """The event heap drained before the awaited event completed."""


class TimeLimitError(SimulationError):
    """The simulated-time limit was reached before the awaited event."""


class LivelockError(SimulationError):
    """The engine is processing events but the clock no longer advances.

    Attributes
    ----------
    time:
        Simulated time at which the cascade is stuck.
    kind:
        ``"zero-time-cascade"`` (N pops without the clock moving) or
        ``"wall-stall"`` (wall-clock seconds elapsed at one instant).
    cascade_length:
        Number of same-timestamp pops observed before tripping.
    cycle:
        The repeating tail of event descriptions (empty when no exact
        repetition was found; ``cycle_exact`` tells the difference).
    waiting:
        Descriptions of the heap's head events and the processes their
        callbacks would resume — the "who is stuck" stack.
    """

    def __init__(
        self,
        message: str,
        time: float,
        kind: str = "zero-time-cascade",
        cascade_length: int = 0,
        cycle: Tuple[str, ...] = (),
        cycle_exact: bool = False,
        waiting: Tuple[str, ...] = (),
    ) -> None:
        self.time = time
        self.kind = kind
        self.cascade_length = cascade_length
        self.cycle = tuple(cycle)
        self.cycle_exact = cycle_exact
        self.waiting = tuple(waiting)
        lines = [message]
        if self.cycle:
            label = ("repeating event cycle" if cycle_exact
                     else "most recent same-time events (no exact cycle)")
            lines.append(f"{label} (length {len(self.cycle)}):")
            lines.extend(f"  {entry}" for entry in self.cycle)
        if self.waiting:
            lines.append("event heap head at trip time (who is waiting):")
            lines.extend(f"  {entry}" for entry in self.waiting)
        super().__init__("\n".join(lines))


class Watchdog:
    """Engine progress watchdog: detects zero-time cascades and wall stalls.

    Parameters
    ----------
    max_same_time_events:
        Trip after this many consecutive event pops without the simulation
        clock advancing.  Must comfortably exceed the largest legitimate
        same-timestamp burst of the workload (see
        :data:`DEFAULT_MAX_SAME_TIME_EVENTS`).
    wall_stall_seconds:
        When set, also trip if this many *wall-clock* seconds pass while
        the simulated clock sits at one instant.  Off by default: the check
        reads the host clock, so tripping is timing-dependent (the
        zero-time cascade detector is fully deterministic).
    sample_window:
        Number of event descriptions recorded past the threshold before
        tripping; the cycle report is extracted from this window.
    clock:
        Wall-clock source (injectable for tests); defaults to
        :func:`time.monotonic`.
    """

    #: wall-clock checks happen every ``_WALL_CHECK_MASK + 1`` pops
    _WALL_CHECK_MASK = 0x0FFF

    def __init__(
        self,
        max_same_time_events: int = DEFAULT_MAX_SAME_TIME_EVENTS,
        wall_stall_seconds: Optional[float] = None,
        sample_window: int = 64,
        clock: Callable[[], float] = _wall.monotonic,
    ) -> None:
        if max_same_time_events < 1:
            raise ValueError("max_same_time_events must be >= 1")
        if sample_window < 4:
            raise ValueError("sample_window must be >= 4")
        if wall_stall_seconds is not None and wall_stall_seconds <= 0:
            raise ValueError("wall_stall_seconds must be positive")
        self.max_same_time_events = max_same_time_events
        self.wall_stall_seconds = wall_stall_seconds
        self.sample_window = sample_window
        self.clock = clock
        self.reset()

    def reset(self) -> None:
        """Forget all progress state (e.g. before reusing across runs)."""
        self._time: Optional[float] = None
        self._streak = 0
        self._pops = 0
        self._samples: List[str] = []
        self._wall_mark: Optional[float] = None
        self._advanced = True
        self._max_cascade = 0

    @property
    def max_cascade(self) -> int:
        """Longest same-timestamp pop streak seen so far (including the
        streak currently in flight) — an observability figure, updated only
        when the clock advances so the hot path stays one comparison."""
        return max(self._max_cascade, self._streak)

    # ------------------------------------------------------------- observing
    def observe(self, sim: "Simulator", now: float, event: Event) -> None:
        """Called by :meth:`Simulator.step` once per popped event."""
        self._pops += 1
        if now != self._time:
            self._time = now
            if self._streak > self._max_cascade:
                self._max_cascade = self._streak
            self._streak = 0
            self._advanced = True
            if self._samples:
                self._samples.clear()
        else:
            self._streak += 1
            if self._streak >= self.max_same_time_events:
                self._samples.append(event.describe())
                if len(self._samples) >= self.sample_window:
                    self._trip_cascade(sim, now)
        if (self.wall_stall_seconds is not None
                and not (self._pops & self._WALL_CHECK_MASK)):
            wall = self.clock()
            if self._wall_mark is None or self._advanced:
                self._wall_mark = wall
                self._advanced = False
            elif wall - self._wall_mark >= self.wall_stall_seconds:
                self._trip_wall(sim, now, wall - self._wall_mark)

    # -------------------------------------------------------------- tripping
    def _trip_cascade(self, sim: "Simulator", now: float) -> None:
        cycle, exact = self._detect_cycle(self._samples)
        raise LivelockError(
            f"livelock: {self._streak + 1} events processed at "
            f"t={now!r} without the simulation clock advancing "
            f"(threshold {self.max_same_time_events})",
            time=now,
            kind="zero-time-cascade",
            cascade_length=self._streak + 1,
            cycle=cycle,
            cycle_exact=exact,
            waiting=self._waiting_report(sim),
        )

    def _trip_wall(self, sim: "Simulator", now: float, stalled: float) -> None:
        raise LivelockError(
            f"livelock: wall clock advanced {stalled:.1f}s while the "
            f"simulation clock sat at t={now!r} "
            f"(threshold {self.wall_stall_seconds}s)",
            time=now,
            kind="wall-stall",
            cascade_length=self._streak + 1,
            cycle=tuple(self._samples[-8:]),
            cycle_exact=False,
            waiting=self._waiting_report(sim),
        )

    @staticmethod
    def _detect_cycle(samples: List[str]) -> Tuple[Tuple[str, ...], bool]:
        """Smallest period whose repetition produces the window's tail."""
        n = len(samples)
        for period in range(1, n // 2 + 1):
            if samples[-period:] == samples[-2 * period:-period]:
                return tuple(samples[-period:]), True
        return tuple(samples[-min(8, n):]), False

    @staticmethod
    def _waiting_report(sim: "Simulator", limit: int = 12) -> Tuple[str, ...]:
        # Over-sample so tombstones (cancelled timers awaiting lazy
        # discard) don't crowd live waiters out of the report.
        head = heapq.nsmallest(limit * 4, sim._heap)
        return tuple(
            f"t={entry_time!r} prio={priority} seq={seq} {event.describe()}"
            for entry_time, priority, seq, event in head
            if not event.cancelled
        )[:limit]


class Simulator:
    """Discrete-event simulator with a deterministic total event order.

    Parameters
    ----------
    seed:
        Root seed for all random streams (see :class:`~repro.sim.rng.RngRegistry`).
    trace:
        Optional tracer; when omitted a disabled tracer is installed so call
        sites never need to branch.
    watchdog:
        Optional :class:`Watchdog`; when armed, every event pop feeds the
        progress checks and a stall raises :class:`LivelockError` out of
        whichever ``run`` variant is driving the loop.
    """

    #: tombstone count below which compaction never triggers (a tiny heap
    #: dominated by tombstones is not worth a heapify)
    COMPACT_MIN_TOMBSTONES = 64

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[Tracer] = None,
        watchdog: Optional[Watchdog] = None,
    ) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._events_processed = 0
        self._tombstones = 0
        self._tombstones_total = 0
        self._compactions = 0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer(enabled=False)
        self._watchdog = watchdog
        #: optional :class:`repro.obs.MetricsRegistry`; installed by
        #: :func:`repro.obs.attach_metrics`.  The engine never touches it —
        #: holding the slot here lets every layer reach metrics through the
        #: simulator it already has, without importing repro.obs.
        self.metrics: Optional[Any] = None

    # ---------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total heap pops processed so far (the `repro.perf` denominator)."""
        return self._events_processed

    @property
    def tombstones_total(self) -> int:
        """Cumulative timer cancellations over the run (never decremented)."""
        return self._tombstones_total

    @property
    def compactions(self) -> int:
        """Number of in-place heap compactions triggered by tombstones."""
        return self._compactions

    # ------------------------------------------------------------- watchdog
    @property
    def watchdog(self) -> Optional[Watchdog]:
        """The armed progress watchdog, or None."""
        return self._watchdog

    def arm_watchdog(self, watchdog: Optional[Watchdog]) -> Optional[Watchdog]:
        """Install (or, with None, disarm) the progress watchdog."""
        self._watchdog = watchdog
        return watchdog

    # ------------------------------------------------------------- factories
    def event(self, name: Optional[str] = None) -> Event:
        """Create a pending one-shot event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: Optional[str] = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Spawn a process driving ``generator``; starts at the current time."""
        return Process(self, generator, name=name)

    # Alias that reads better at call sites spawning many children.
    spawn = process

    def all_of(self, events: Iterable[Event], name: Optional[str] = None) -> AllOf:
        return AllOf(self, events, name=name)

    def any_of(self, events: Iterable[Event], name: Optional[str] = None) -> AnyOf:
        return AnyOf(self, events, name=name)

    def call_at(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        name: Optional[str] = None,
    ) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` seconds.

        Returns a :class:`TimerHandle` whose :meth:`~TimerHandle.cancel`
        guarantees the callback never runs.  This is the cheap path for
        scheduled callbacks: no :class:`~repro.sim.events.Event`, no
        closure, one heap entry.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s into the past")
        self._seq += 1
        handle = TimerHandle(self, self._now + delay, callback, args, name)
        heapq.heappush(self._heap, (handle.time, NORMAL, self._seq, handle))
        return handle

    # ----------------------------------------------------------------- queue
    def _push(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s into the past")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def _note_tombstone(self) -> None:
        """Account one cancelled heap entry; compact when they dominate.

        Compaction is in place (the heap list's identity is load-bearing:
        the run loops hold a local binding) and deterministic — pop order
        depends only on the entry tuples, not the heap's internal layout.
        """
        self._tombstones += 1
        self._tombstones_total += 1
        heap = self._heap
        if (self._tombstones > self.COMPACT_MIN_TOMBSTONES
                and self._tombstones * 2 > len(heap)):
            heap[:] = [entry for entry in heap if not entry[3].cancelled]
            heapq.heapify(heap)
            self._tombstones = 0
            self._compactions += 1

    def peek(self) -> float:
        """Time of the next live event, or ``float('inf')`` when empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._tombstones -= 1
        return heap[0][0] if heap else float("inf")

    def step(self) -> None:
        """Process exactly one live event (tombstones are discarded)."""
        heap = self._heap
        while heap:
            time, priority, seq, item = heapq.heappop(heap)
            if item.cancelled:
                self._tombstones -= 1
                continue
            if time < self._now:  # pragma: no cover - guarded by _push
                raise SimulationError("event heap went backwards in time")
            self._now = time
            self._events_processed += 1
            # The watchdog sees the event *before* its callbacks run, while
            # the waiting processes are still attached — that is what makes
            # the cycle report name who would have been resumed.
            if self._watchdog is not None:
                self._watchdog.observe(self, time, item)
            # Online monitors observe the raw pop order through the tracer's
            # step listeners (repro.verify's total-order invariant); the
            # list is empty unless a monitor asked for it.
            listeners = self.trace.step_listeners
            if listeners:
                for listener in listeners:
                    listener(time, priority, seq)
            item._process()
            return
        raise SimulationError("step() on an empty event heap")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until!r} is in the past (now={self._now!r})")
        # Hot loop: locals for the heap, pop and listener list (all mutated
        # in place, so the bindings stay live); the watchdog is re-read per
        # pop because callbacks may legally arm or disarm it.
        heap = self._heap
        pop = heapq.heappop
        listeners = self.trace.step_listeners
        while heap:
            time, priority, seq, item = heap[0]
            if item.cancelled:
                pop(heap)
                self._tombstones -= 1
                continue
            if until is not None and time > until:
                break
            pop(heap)
            self._now = time
            self._events_processed += 1
            watchdog = self._watchdog
            if watchdog is not None:
                watchdog.observe(self, time, item)
            if listeners:
                for listener in listeners:
                    listener(time, priority, seq)
            item._process()
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, :class:`DeadlockError`
        if the heap drains first, or :class:`TimeLimitError` when ``limit``
        is hit (both are :class:`SimulationError` subclasses).
        """
        heap = self._heap
        pop = heapq.heappop
        listeners = self.trace.step_listeners
        while not event.processed:
            while heap and heap[0][3].cancelled:
                pop(heap)
                self._tombstones -= 1
            if not heap:
                raise DeadlockError(
                    f"deadlock: event heap drained before {event!r} completed"
                )
            time, priority, seq, item = heap[0]
            if limit is not None and time > limit:
                raise TimeLimitError(
                    f"time limit {limit!r} reached before {event!r} completed"
                )
            pop(heap)
            self._now = time
            self._events_processed += 1
            watchdog = self._watchdog
            if watchdog is not None:
                watchdog.observe(self, time, item)
            if listeners:
                for listener in listeners:
                    listener(time, priority, seq)
            item._process()
        if event.ok:
            return event.value
        event.defused = True
        raise event.value
