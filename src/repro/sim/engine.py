"""The simulation event loop.

:class:`Simulator` owns the clock and the event heap.  Heap entries are
``(time, priority, sequence, item)`` tuples; the monotonically increasing
sequence number makes the order a deterministic total order, which is the
backbone of the reproducibility guarantees the benchmark harness relies on.
An item is either an :class:`~repro.sim.events.Event` or a
:class:`TimerHandle` — a cancellable, *re-armable* scheduled callback
returned by :meth:`Simulator.call_at`.

Slot-encoded timers
-------------------
A :class:`TimerHandle` is a reusable *slot*: its authoritative fire position
``(handle.time, handle.seq)`` lives on the handle, outside the heap, and the
heap holds disposable pointer entries.  The entry whose ``(time, seq)`` key
matches ``(handle.heap_time, handle.heap_seq)`` is the handle's *anchor*;
every other entry pointing at the handle is garbage awaiting lazy discard.
This encoding makes the two hottest scheduler operations O(1):

* :meth:`TimerHandle.cancel` sets the tombstone bit and leaves the anchor
  where it is — exactly the lazy tombstone the pre-slot kernel used.
* :meth:`TimerHandle.rearm` *moves* the timer.  It always burns a fresh
  sequence number (matching, push for push and seq for seq, what an eager
  ``cancel(); call_at()`` pair would have allocated — that is what keeps the
  deterministic total order byte-identical to the eager kernel), but it only
  touches the heap when the timer moved *earlier* than its anchor.  A timer
  moved later (or re-armed at the same instant, the flow scheduler's common
  case) keeps its anchor: when the anchor surfaces at the heap top ahead of
  the authoritative position, the run loop *reconciles* — it re-pushes the
  entry at the authoritative key if anything else must run first, or fires
  the timer immediately (at its authoritative time and sequence) when the
  anchor is next anyway.

The reconciliation rule makes the optimisation exact rather than heuristic:
the observable pop order is the total order over authoritative keys, which
is precisely the order the eager kernel produces.  ``tests/sim/
test_kernel_differential.py`` pins this with a differential rig against the
retained naive kernel in :mod:`repro.sim.reference`.

Garbage (tombstones, superseded anchors) is discarded when it surfaces —
never advancing the clock, never feeding the watchdog or step listeners —
and the heap is compacted in place once garbage outnumbers live entries, so
hot re-rate paths can cancel-and-reschedule without growing the heap.

The optional :class:`Watchdog` turns the two ways a discrete-event program
can stall — a zero-time event cascade that never advances the clock, and a
wall-clock stall at one simulated instant — into a :class:`LivelockError`
that carries the repeating event cycle and the processes waiting on the
heap, so a stuck run is a diagnosable artifact instead of a hung pytest.
"""

from __future__ import annotations

import heapq
import time as _wall
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout, NORMAL
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

__all__ = [
    "Simulator",
    "SimulationError",
    "DeadlockError",
    "TimeLimitError",
    "LivelockError",
    "TimerHandle",
    "Watchdog",
    "DEFAULT_MAX_SAME_TIME_EVENTS",
]

#: default zero-time cascade budget before the watchdog trips.  Legitimate
#: same-timestamp bursts measured across the harness peak in the hundreds
#: (a 337-process barrier release is ~1.3k pops); real livelocks spin
#: millions of times, so 100k separates the two by orders of magnitude in
#: both directions while tripping within a fraction of a second.
DEFAULT_MAX_SAME_TIME_EVENTS = 100_000

#: sentinel ``heap_seq`` meaning "no heap entry points at this handle"
_NO_ENTRY = -1

#: hot-loop bound for "no time limit": one float compare beats an is-None
#: test plus a compare, and simulated times are always finite
_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. time travel)."""


class TimerHandle:
    """A scheduled callback slot: cancellable and re-armable in O(1).

    Returned by :meth:`Simulator.call_at`.  The handle is the authoritative
    record of when its callback runs — ``(time, seq)`` — while heap entries
    are disposable pointers (see the module docstring).  :meth:`cancel`
    marks the tombstone bit; a cancelled handle's callback is guaranteed
    never to run.  :meth:`rearm` reuses the slot for a new fire time, which
    is what lets one flow own one handle for its whole lifetime instead of
    allocating a fresh handle per re-rate.
    """

    __slots__ = (
        "sim",
        "time",
        "seq",
        "heap_time",
        "heap_seq",
        "callback",
        "args",
        "name",
        "cancelled",
    )

    def __init__(
        self,
        sim: "Simulator",
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        name: Optional[str],
    ) -> None:
        self.sim = sim
        #: authoritative fire time
        self.time = time
        #: authoritative tie-break sequence number
        self.seq = seq
        #: key of the anchor heap entry (the one entry that is not garbage)
        self.heap_time = time
        self.heap_seq = seq
        self.callback = callback
        self.args = args
        self.name = name
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            if self.heap_seq != _NO_ENTRY:
                self.heap_seq = _NO_ENTRY
                self.sim._note_tombstone()

    def rearm(self, delay: float) -> None:
        """Move this timer to fire ``delay`` seconds from now.

        Equivalent — including its effect on the deterministic total event
        order — to ``self.cancel()`` followed by ``sim.call_at(delay,
        self.callback, *self.args)``, but without allocating a handle and,
        unless the timer moved earlier than its current heap anchor,
        without touching the heap at all.  An already-fired slot is
        re-armed with a fresh heap entry; re-arming a cancelled slot is a
        programming error (cancel() promises the callback never runs).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s into the past")
        if self.cancelled:
            raise SimulationError("cannot rearm a cancelled timer")
        sim = self.sim
        sim._seq += 1
        seq = sim._seq
        time = sim._now + delay
        self.time = time
        self.seq = seq
        anchor = self.heap_seq
        if anchor != _NO_ENTRY and time >= self.heap_time:
            # Lazy move: the anchor surfaces no later than the authoritative
            # position; the run loop reconciles it there.
            return
        if anchor != _NO_ENTRY:
            # Moving earlier: the old anchor becomes garbage and a fresh
            # entry is pushed so the timer cannot fire late.
            self.sim._tombstones += 1
            self.sim._tombstones_total += 1
        self.heap_time = time
        self.heap_seq = seq
        heapq.heappush(sim._heap, (time, NORMAL, seq, self))
        sim._maybe_compact()

    def _process(self) -> None:
        # The anchor entry was just popped: forget it *before* the callback
        # runs, so a rearm from inside the callback pushes a fresh entry
        # instead of lazily trusting an entry that no longer exists.
        self.heap_seq = _NO_ENTRY
        self.callback(*self.args)

    def describe(self) -> str:
        """Diagnostic label for watchdog reports; resolves the callback's
        qualified name lazily so the hot scheduling path never pays for it."""
        if self.name:
            return self.name
        target = getattr(self.callback, "__qualname__", None)
        return f"call:{target}" if target else "timer"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<TimerHandle {self.describe()} t={self.time!r} {state}>"


class DeadlockError(SimulationError):
    """The event heap drained before the awaited event completed."""


class TimeLimitError(SimulationError):
    """The simulated-time limit was reached before the awaited event."""


class LivelockError(SimulationError):
    """The engine is processing events but the clock no longer advances.

    Attributes
    ----------
    time:
        Simulated time at which the cascade is stuck.
    kind:
        ``"zero-time-cascade"`` (N pops without the clock moving) or
        ``"wall-stall"`` (wall-clock seconds elapsed at one instant).
    cascade_length:
        Number of same-timestamp pops observed before tripping.
    cycle:
        The repeating tail of event descriptions (empty when no exact
        repetition was found; ``cycle_exact`` tells the difference).
    waiting:
        Descriptions of the heap's head events and the processes their
        callbacks would resume — the "who is stuck" stack.
    """

    def __init__(
        self,
        message: str,
        time: float,
        kind: str = "zero-time-cascade",
        cascade_length: int = 0,
        cycle: Tuple[str, ...] = (),
        cycle_exact: bool = False,
        waiting: Tuple[str, ...] = (),
    ) -> None:
        self.time = time
        self.kind = kind
        self.cascade_length = cascade_length
        self.cycle = tuple(cycle)
        self.cycle_exact = cycle_exact
        self.waiting = tuple(waiting)
        lines = [message]
        if self.cycle:
            label = ("repeating event cycle" if cycle_exact
                     else "most recent same-time events (no exact cycle)")
            lines.append(f"{label} (length {len(self.cycle)}):")
            lines.extend(f"  {entry}" for entry in self.cycle)
        if self.waiting:
            lines.append("event heap head at trip time (who is waiting):")
            lines.extend(f"  {entry}" for entry in self.waiting)
        super().__init__("\n".join(lines))


class Watchdog:
    """Engine progress watchdog: detects zero-time cascades and wall stalls.

    Parameters
    ----------
    max_same_time_events:
        Trip after this many consecutive event pops without the simulation
        clock advancing.  Must comfortably exceed the largest legitimate
        same-timestamp burst of the workload (see
        :data:`DEFAULT_MAX_SAME_TIME_EVENTS`).
    wall_stall_seconds:
        When set, also trip if this many *wall-clock* seconds pass while
        the simulated clock sits at one instant.  Off by default: the check
        reads the host clock, so tripping is timing-dependent (the
        zero-time cascade detector is fully deterministic).
    sample_window:
        Number of event descriptions recorded past the threshold before
        tripping; the cycle report is extracted from this window.
    clock:
        Wall-clock source (injectable for tests); defaults to
        :func:`time.monotonic`.
    """

    #: wall-clock checks happen every ``_WALL_CHECK_MASK + 1`` pops
    _WALL_CHECK_MASK = 0x0FFF

    def __init__(
        self,
        max_same_time_events: int = DEFAULT_MAX_SAME_TIME_EVENTS,
        wall_stall_seconds: Optional[float] = None,
        sample_window: int = 64,
        clock: Callable[[], float] = _wall.monotonic,
    ) -> None:
        if max_same_time_events < 1:
            raise ValueError("max_same_time_events must be >= 1")
        if sample_window < 4:
            raise ValueError("sample_window must be >= 4")
        if wall_stall_seconds is not None and wall_stall_seconds <= 0:
            raise ValueError("wall_stall_seconds must be positive")
        self.max_same_time_events = max_same_time_events
        self.wall_stall_seconds = wall_stall_seconds
        self.sample_window = sample_window
        self.clock = clock
        self.reset()

    def reset(self) -> None:
        """Forget all progress state (e.g. before reusing across runs)."""
        self._time: Optional[float] = None
        self._streak = 0
        self._pops = 0
        self._samples: List[str] = []
        self._wall_mark: Optional[float] = None
        self._advanced = True
        self._max_cascade = 0

    @property
    def max_cascade(self) -> int:
        """Longest same-timestamp pop streak seen so far (including the
        streak currently in flight) — an observability figure, updated only
        when the clock advances so the hot path stays one comparison."""
        return max(self._max_cascade, self._streak)

    # ------------------------------------------------------------- observing
    def observe(self, sim: "Simulator", now: float, event: Event) -> None:
        """Called by :meth:`Simulator.step` once per popped event."""
        self._pops += 1
        if now != self._time:
            self._time = now
            if self._streak > self._max_cascade:
                self._max_cascade = self._streak
            self._streak = 0
            self._advanced = True
            if self._samples:
                self._samples.clear()
        else:
            self._streak += 1
            if self._streak >= self.max_same_time_events:
                self._samples.append(event.describe())
                if len(self._samples) >= self.sample_window:
                    self._trip_cascade(sim, now)
        if (self.wall_stall_seconds is not None
                and not (self._pops & self._WALL_CHECK_MASK)):
            wall = self.clock()
            if self._wall_mark is None or self._advanced:
                self._wall_mark = wall
                self._advanced = False
            elif wall - self._wall_mark >= self.wall_stall_seconds:
                self._trip_wall(sim, now, wall - self._wall_mark)

    # -------------------------------------------------------------- tripping
    def _trip_cascade(self, sim: "Simulator", now: float) -> None:
        cycle, exact = self._detect_cycle(self._samples)
        raise LivelockError(
            f"livelock: {self._streak + 1} events processed at "
            f"t={now!r} without the simulation clock advancing "
            f"(threshold {self.max_same_time_events})",
            time=now,
            kind="zero-time-cascade",
            cascade_length=self._streak + 1,
            cycle=cycle,
            cycle_exact=exact,
            waiting=self._waiting_report(sim),
        )

    def _trip_wall(self, sim: "Simulator", now: float, stalled: float) -> None:
        raise LivelockError(
            f"livelock: wall clock advanced {stalled:.1f}s while the "
            f"simulation clock sat at t={now!r} "
            f"(threshold {self.wall_stall_seconds}s)",
            time=now,
            kind="wall-stall",
            cascade_length=self._streak + 1,
            cycle=tuple(self._samples[-8:]),
            cycle_exact=False,
            waiting=self._waiting_report(sim),
        )

    @staticmethod
    def _detect_cycle(samples: List[str]) -> Tuple[Tuple[str, ...], bool]:
        """Smallest period whose repetition produces the window's tail."""
        n = len(samples)
        for period in range(1, n // 2 + 1):
            if samples[-period:] == samples[-2 * period:-period]:
                return tuple(samples[-period:]), True
        return tuple(samples[-min(8, n):]), False

    @staticmethod
    def _waiting_report(sim: "Simulator", limit: int = 12) -> Tuple[str, ...]:
        # Over-sample so garbage entries (tombstones and superseded anchors
        # awaiting lazy discard) don't crowd live waiters out of the report.
        head = heapq.nsmallest(limit * 4, sim._heap)
        return tuple(
            f"t={entry_time!r} prio={priority} seq={seq} {event.describe()}"
            for entry_time, priority, seq, event in head
            if not event.cancelled
            and seq == getattr(event, "heap_seq", seq)
        )[:limit]


class Simulator:
    """Discrete-event simulator with a deterministic total event order.

    Parameters
    ----------
    seed:
        Root seed for all random streams (see :class:`~repro.sim.rng.RngRegistry`).
    trace:
        Optional tracer; when omitted a disabled tracer is installed so call
        sites never need to branch.
    watchdog:
        Optional :class:`Watchdog`; when armed, every event pop feeds the
        progress checks and a stall raises :class:`LivelockError` out of
        whichever ``run`` variant is driving the loop.
    """

    #: garbage count below which compaction never triggers (a tiny heap
    #: dominated by garbage is not worth a heapify)
    COMPACT_MIN_TOMBSTONES = 64

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[Tracer] = None,
        watchdog: Optional[Watchdog] = None,
    ) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._events_processed = 0
        self._tombstones = 0
        self._tombstones_total = 0
        self._compactions = 0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer(enabled=False)
        self._watchdog = watchdog
        #: optional :class:`repro.obs.MetricsRegistry`; installed by
        #: :func:`repro.obs.attach_metrics`.  The engine never touches it —
        #: holding the slot here lets every layer reach metrics through the
        #: simulator it already has, without importing repro.obs.
        self.metrics: Optional[Any] = None

    # ---------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total live heap pops processed so far (the `repro.perf`
        denominator); garbage discards are never counted."""
        return self._events_processed

    @property
    def tombstones_total(self) -> int:
        """Cumulative garbage heap entries over the run: timer
        cancellations plus anchors superseded by an earlier-moving
        :meth:`TimerHandle.rearm` (never decremented)."""
        return self._tombstones_total

    @property
    def compactions(self) -> int:
        """Number of in-place heap compactions triggered by garbage."""
        return self._compactions

    # ------------------------------------------------------------- watchdog
    @property
    def watchdog(self) -> Optional[Watchdog]:
        """The armed progress watchdog, or None."""
        return self._watchdog

    def arm_watchdog(self, watchdog: Optional[Watchdog]) -> Optional[Watchdog]:
        """Install (or, with None, disarm) the progress watchdog."""
        self._watchdog = watchdog
        return watchdog

    # ------------------------------------------------------------- factories
    def event(self, name: Optional[str] = None) -> Event:
        """Create a pending one-shot event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: Optional[str] = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Spawn a process driving ``generator``; starts at the current time."""
        return Process(self, generator, name=name)

    # Alias that reads better at call sites spawning many children.
    spawn = process

    def all_of(self, events: Iterable[Event], name: Optional[str] = None) -> AllOf:
        return AllOf(self, events, name=name)

    def any_of(self, events: Iterable[Event], name: Optional[str] = None) -> AnyOf:
        return AnyOf(self, events, name=name)

    def call_at(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        name: Optional[str] = None,
    ) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` seconds.

        Returns a :class:`TimerHandle` whose :meth:`~TimerHandle.cancel`
        guarantees the callback never runs and whose
        :meth:`~TimerHandle.rearm` reuses the slot for a new fire time.
        This is the cheap path for scheduled callbacks: no
        :class:`~repro.sim.events.Event`, no closure, one heap entry.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s into the past")
        self._seq += 1
        handle = TimerHandle(self, self._now + delay, self._seq, callback,
                             args, name)
        heapq.heappush(self._heap, (handle.time, NORMAL, self._seq, handle))
        return handle

    # ----------------------------------------------------------------- queue
    def _push(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s into the past")
        self._seq += 1
        event.seq = self._seq
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def _note_tombstone(self) -> None:
        """Account one garbage heap entry; compact when they dominate."""
        self._tombstones += 1
        self._tombstones_total += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap in place once garbage outnumbers live entries.

        Compaction is in place (the heap list's identity is load-bearing:
        the run loops hold a local binding) and deterministic — pop order
        depends only on the entry keys, not the heap's internal layout.
        Surviving timer anchors are re-keyed to their authoritative
        ``(time, seq)`` so a lazily moved timer keeps exactly one entry.
        """
        heap = self._heap
        if not (self._tombstones > self.COMPACT_MIN_TOMBSTONES
                and self._tombstones * 2 > len(heap)):
            return
        live: List[Tuple[float, int, int, Any]] = []
        for entry in heap:
            item = entry[3]
            if item.cancelled:
                continue
            seq = item.seq
            if seq == entry[2]:
                live.append(entry)
            elif entry[2] == item.heap_seq:
                # a live timer's anchor, superseded by a lazy rearm:
                # re-key it to the authoritative position
                item.heap_time = item.time
                item.heap_seq = seq
                live.append((item.time, entry[1], seq, item))
        heap[:] = live
        heapq.heapify(heap)
        self._tombstones = 0
        self._compactions += 1

    def _surface(self) -> Optional[Tuple[float, int, int, Any]]:
        """Discard garbage and reconcile stale anchors at the heap top.

        Returns the next *live* entry — popped, with its authoritative key —
        or None when the heap has drained.  The non-inlined twin of the hot
        run loops, used by :meth:`peek` and :meth:`step`.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            time, priority, seq, item = entry
            if item.seq == seq:
                if item.cancelled:
                    self._tombstones -= 1
                    continue
                return entry
            # Slot-encoded timer whose authoritative position moved.
            if item.cancelled or seq != item.heap_seq:
                self._tombstones -= 1
                continue
            atime, aseq = item.time, item.seq
            if heap and heap[0][:3] < (atime, priority, aseq):
                item.heap_time = atime
                item.heap_seq = aseq
                heapq.heappush(heap, (atime, priority, aseq, item))
                continue
            return (atime, priority, aseq, item)
        return None

    def peek(self) -> float:
        """Time of the next live event, or ``float('inf')`` when empty."""
        entry = self._surface()
        if entry is None:
            return float("inf")
        # _surface pops; restore the entry (now keyed authoritatively).
        item = entry[3]
        if isinstance(item, TimerHandle):
            item.heap_time = entry[0]
            item.heap_seq = entry[2]
        heapq.heappush(self._heap, entry)
        return entry[0]

    def step(self) -> None:
        """Process exactly one live event (garbage is discarded)."""
        entry = self._surface()
        if entry is None:
            raise SimulationError("step() on an empty event heap")
        time, priority, seq, item = entry
        if time < self._now:  # pragma: no cover - guarded by _push
            raise SimulationError("event heap went backwards in time")
        self._now = time
        self._events_processed += 1
        # The watchdog sees the event *before* its callbacks run, while
        # the waiting processes are still attached — that is what makes
        # the cycle report name who would have been resumed.
        if self._watchdog is not None:
            self._watchdog.observe(self, time, item)
        # Online monitors observe the raw pop order through the tracer's
        # step listeners (repro.verify's total-order invariant); the
        # list is empty unless a monitor asked for it.
        listeners = self.trace.step_listeners
        if listeners:
            for listener in listeners:
                listener(time, priority, seq)
        item._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until!r} is in the past (now={self._now!r})")
        # Hot loop: locals for the heap, the heap ops, the listener list
        # (all mutated in place, so the bindings stay live) and the
        # watchdog (fixed for a run: nothing arms or disarms one from a
        # callback).  ``until`` becomes a float so the per-pop bound check
        # is one comparison instead of an is-None test plus a comparison.
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        listeners = self.trace.step_listeners
        watchdog = self._watchdog
        bound = _INF if until is None else until
        while heap:
            entry = pop(heap)
            time, priority, seq, item = entry
            if item.seq != seq or item.cancelled:
                # Garbage, or the stale anchor of a lazily moved timer.
                if item.cancelled or seq != item.heap_seq:
                    self._tombstones -= 1
                    continue
                time, seq = item.time, item.seq
                if time > bound or (heap and heap[0][:3] < (time, priority, seq)):
                    item.heap_time = time
                    item.heap_seq = seq
                    push(heap, (time, priority, seq, item))
                    if time > bound:
                        break
                    continue
            elif time > bound:
                push(heap, entry)
                break
            self._now = time
            self._events_processed += 1
            if watchdog is not None:
                watchdog.observe(self, time, item)
            if listeners:
                for listener in listeners:
                    listener(time, priority, seq)
            item._process()
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, :class:`DeadlockError`
        if the heap drains first, or :class:`TimeLimitError` when ``limit``
        is hit (both are :class:`SimulationError` subclasses).
        """
        # Same hot-loop shape as run(); see the comment there.  The loop
        # condition reads the event's state slot directly — the .processed
        # property would cost a descriptor call per pop.
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        listeners = self.trace.step_listeners
        watchdog = self._watchdog
        bound = _INF if limit is None else limit
        done = Event.PROCESSED
        while event._state != done:
            if not heap:
                raise DeadlockError(
                    f"deadlock: event heap drained before {event!r} completed"
                )
            entry = pop(heap)
            time, priority, seq, item = entry
            if item.seq != seq or item.cancelled:
                if item.cancelled or seq != item.heap_seq:
                    self._tombstones -= 1
                    continue
                time, seq = item.time, item.seq
                if time > bound or (heap and heap[0][:3] < (time, priority, seq)):
                    item.heap_time = time
                    item.heap_seq = seq
                    push(heap, (time, priority, seq, item))
                    if time > bound:
                        raise TimeLimitError(
                            f"time limit {limit!r} reached before {event!r} "
                            "completed"
                        )
                    continue
            elif time > bound:
                push(heap, entry)
                raise TimeLimitError(
                    f"time limit {limit!r} reached before {event!r} completed"
                )
            self._now = time
            self._events_processed += 1
            if watchdog is not None:
                watchdog.observe(self, time, item)
            if listeners:
                for listener in listeners:
                    listener(time, priority, seq)
            item._process()
        if event.ok:
            return event.value
        event.defused = True
        raise event.value
