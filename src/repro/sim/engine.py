"""The simulation event loop.

:class:`Simulator` owns the clock and the event heap.  Heap entries are
``(time, priority, sequence, event)`` tuples; the monotonically increasing
sequence number makes the order a deterministic total order, which is the
backbone of the reproducibility guarantees the benchmark harness relies on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout, NORMAL
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. time travel)."""


class Simulator:
    """Discrete-event simulator with a deterministic total event order.

    Parameters
    ----------
    seed:
        Root seed for all random streams (see :class:`~repro.sim.rng.RngRegistry`).
    trace:
        Optional tracer; when omitted a disabled tracer is installed so call
        sites never need to branch.
    """

    def __init__(self, seed: int = 0, trace: Optional[Tracer] = None) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else Tracer(enabled=False)

    # ---------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------- factories
    def event(self, name: Optional[str] = None) -> Event:
        """Create a pending one-shot event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: Optional[str] = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Spawn a process driving ``generator``; starts at the current time."""
        return Process(self, generator, name=name)

    # Alias that reads better at call sites spawning many children.
    spawn = process

    def all_of(self, events: Iterable[Event], name: Optional[str] = None) -> AllOf:
        return AllOf(self, events, name=name)

    def any_of(self, events: Iterable[Event], name: Optional[str] = None) -> AnyOf:
        return AnyOf(self, events, name=name)

    def call_at(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        name: Optional[str] = None,
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` seconds.

        Returns the underlying timeout event (useful for cancellation by
        removing the callback).
        """
        event = self.timeout(delay, name=name)
        event.callbacks.append(lambda _ev: callback(*args))
        return event

    # ----------------------------------------------------------------- queue
    def _push(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r}s into the past")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` when the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        time, priority, seq, event = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - guarded by _push
            raise SimulationError("event heap went backwards in time")
        self._now = time
        # Online monitors observe the raw pop order through the tracer's
        # step listeners (repro.verify's total-order invariant); the list is
        # empty unless a monitor asked for it, so the idle cost is one
        # attribute chain and a branch per event.
        listeners = self.trace.step_listeners
        if listeners:
            for listener in listeners:
                listener(time, priority, seq)
        event._process()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        compose predictably.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until!r} is in the past (now={self._now!r})")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)

    def run_until_complete(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or :class:`SimulationError`
        if the heap drains (or ``limit`` is hit) first — i.e. deadlock.
        """
        while not event.processed:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: event heap drained before {event!r} completed"
                )
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit!r} reached before {event!r} completed"
                )
            self.step()
        if event.ok:
            return event.value
        event.defused = True
        raise event.value
