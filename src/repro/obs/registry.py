"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

1. **Zero overhead when off.**  Metrics are opt-in per run: a
   :class:`~repro.sim.Simulator` carries ``sim.metrics = None`` until a
   registry is installed (:func:`repro.obs.attach_metrics`), and every
   instrumented call site is guarded by one attribute load and an ``is
   None`` check.  With metrics off, no instrument object is ever created,
   no label tuple is built, and no trace category is forced live — the
   smoke figures stay byte-identical and ``repro.perf`` holds its gate.

2. **Deterministic.**  Instruments never touch the event heap or any RNG
   stream; they observe, timestamped with the *simulation* clock.  Two runs
   of the same seed produce the same snapshot, metrics on or off.

3. **Allocation-light when on.**  Instruments are created once per
   ``(name, labels)`` pair and cached; hot call sites hold the instrument
   handle (see :class:`~repro.mpi.channels.base.BaseChannel`) so the steady
   state is one float add per event.

Scoped labels (``protocol``, ``channel``, ``rank``, ``wave``, ...) are plain
keyword arguments; a snapshot renders them into stable ``name{k=v,...}``
keys with the label dict kept alongside, so consumers never parse keys.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "metric_values",
    "phase_totals",
]

#: default histogram buckets for durations in simulated seconds: wide
#: log-spaced coverage from microsecond engine costs to whole-run spans
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0,
)

LabelItems = Tuple[Tuple[str, Any], ...]


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("value", "updated")

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0
        self.updated = 0.0

    def inc(self, amount: float = 1.0, now: float = 0.0) -> None:
        self.value += amount
        self.updated = now

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "updated": self.updated}


class Gauge:
    """A last-value instrument that also tracks its high-water mark."""

    __slots__ = ("value", "peak", "updated")

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self.peak = 0.0
        self.updated = 0.0

    def set(self, value: float, now: float = 0.0) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value
        self.updated = now

    def to_dict(self) -> Dict[str, Any]:
        return {"value": self.value, "peak": self.peak,
                "updated": self.updated}


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow.

    Buckets are ascending upper bounds set at creation and never resized —
    observation is a linear scan over a short tuple (bisect would allocate
    nothing either, but the scan wins at these sizes) plus three float
    updates.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "max", "updated")

    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly ascending")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self.updated = 0.0

    def observe(self, value: float, now: float = 0.0) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        self.updated = now

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "updated": self.updated,
        }


def _format_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Holds every instrument of one run, keyed by ``(name, labels)``.

    Parameters
    ----------
    sim:
        Optional simulator whose clock timestamps instrument updates; a
        registry without one stamps everything ``0.0`` (unit tests).
    """

    def __init__(self, sim: Optional["Simulator"] = None) -> None:
        self.sim = sim
        self._instruments: Dict[Tuple[str, LabelItems], Any] = {}
        #: callbacks run (in registration order) at snapshot time; use for
        #: state that is cheap to read once but hot to track incrementally
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # ----------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    # ----------------------------------------------------------- instruments
    def _get(self, factory: Callable[[], Any], name: str,
             labels: Dict[str, Any]) -> Any:
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
                  **labels: Any) -> Histogram:
        return self._get(lambda: Histogram(bounds), name, labels)

    # ------------------------------------------------------------ shorthands
    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        self.counter(name, **labels).inc(amount, self.now)

    def set(self, name: str, value: float, **labels: Any) -> None:
        self.gauge(name, **labels).set(value, self.now)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.histogram(name, **labels).observe(value, self.now)

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge (0.0 when never touched)."""
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        return instrument.value if instrument is not None else 0.0

    # ------------------------------------------------------------ collectors
    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Run ``fn(registry)`` at every snapshot (snapshot-time sampling)."""
        self._collectors.append(fn)

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, Any]:
        """One JSON-able document of every instrument, deterministically
        ordered; runs the registered collectors first."""
        for collector in self._collectors:
            collector(self)
        doc: Dict[str, Any] = {
            "schema": "repro.obs/1",
            "time": self.now,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        section = {"counter": "counters", "gauge": "gauges",
                   "histogram": "histograms"}
        for (name, labels) in sorted(self._instruments,
                                     key=lambda k: (k[0], _format_key(*k))):
            instrument = self._instruments[(name, labels)]
            entry = instrument.to_dict()
            entry["name"] = name
            entry["labels"] = {k: v for k, v in labels}
            doc[section[instrument.kind]][_format_key(name, labels)] = entry
        if self.sim is not None and self.sim.trace.counters:
            # the tracer's scalar counters (mpi.messages, mpi.bytes,
            # ft.restore_local, ...) ride along — they are always-on and
            # already deterministic
            doc["trace_counters"] = {
                key: self.sim.trace.counters[key]
                for key in sorted(self.sim.trace.counters)
            }
        return doc


# ------------------------------------------------------------ snapshot query
def metric_values(snapshot: Dict[str, Any], name: str,
                  section: str = "counters") -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """All ``(labels, entry)`` pairs of metric ``name`` in a snapshot."""
    out = []
    for entry in snapshot.get(section, {}).values():
        if entry.get("name") == name:
            out.append((entry.get("labels", {}), entry))
    return out


def phase_totals(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Summed seconds per checkpoint-wave phase from a metrics snapshot.

    Sources the ``ft.wave_phase_seconds`` histograms the protocol layer
    feeds (one per ``(protocol, phase)`` label set) and folds them to a
    ``phase -> total seconds`` map — the decomposition
    :func:`repro.tools.trace_analysis.overhead_breakdown` reports.
    """
    totals: Dict[str, float] = {}
    for labels, entry in metric_values(snapshot, "ft.wave_phase_seconds",
                                       "histograms"):
        phase = str(labels.get("phase", "unknown"))
        totals[phase] = totals.get(phase, 0.0) + float(entry.get("sum", 0.0))
    return totals
