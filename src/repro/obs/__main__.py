"""Command-line entry for the observability layer.

Usage::

    # run one configuration with full tracing + metrics, dump the trace
    python -m repro.obs record --protocol pcl -o run.jsonl

    # export a recorded trace as a Chrome-trace / Perfetto timeline
    python -m repro.obs timeline run.jsonl -o run.trace.json

    # check a timeline document against the trace_events shape rules
    python -m repro.obs validate run.trace.json

``record`` writes two files: the raw trace (JSONL, one record per line,
re-loadable with :func:`repro.sim.trace.load_jsonl`) and — unless
``--no-metrics`` — a ``<out>.metrics.json`` snapshot of every counter,
gauge and histogram the run accumulated.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main"]


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.apps import BENCHMARKS
    from repro.harness.config import get_profile
    from repro.harness.runner import execute
    from repro.sim import Tracer
    from repro.sim.trace import dump_jsonl

    bench = BENCHMARKS[args.bench](klass=args.klass)
    profile = get_profile(args.profile, seed=args.seed)
    tracer = Tracer(enabled=True)
    result = execute(
        bench,
        args.n_procs,
        args.protocol,
        profile,
        channel=args.channel,
        period=args.period,
        procs_per_node=args.procs_per_node,
        name=f"obs-{args.protocol or 'none'}",
        metrics=not args.no_metrics,
        tracer=tracer,
    )
    count = dump_jsonl(tracer.records, args.out)
    print(f"recorded {count} trace records -> {args.out}")
    print(f"completion={result.completion:.3f}s waves={result.waves} "
          f"monitors_ok={result.monitors_ok}")
    if not args.no_metrics:
        snapshot = result.meta.get("metrics", {})
        metrics_path = args.metrics_out or f"{args.out}.metrics.json"
        with open(metrics_path, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics snapshot -> {metrics_path}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs.timeline import export_timeline

    doc = export_timeline(args.trace, args.out)
    print(f"{len(doc['traceEvents'])} trace events -> {args.out}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.obs.timeline import validate_trace_events

    with open(args.trace) as handle:
        doc = json.load(handle)
    problems = validate_trace_events(doc)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    print(f"{args.trace}: ok ({len(doc.get('traceEvents', []))} events)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Record, export and validate simulation timelines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="run one configuration with tracing + metrics on")
    record.add_argument("--bench", default="bt", help="benchmark (default: bt)")
    record.add_argument("--klass", default="B", help="NAS class (default: B)")
    record.add_argument("--protocol", default="pcl",
                        choices=("pcl", "vcl", "dcl", "none"),
                        help="checkpoint protocol (default: pcl)")
    record.add_argument("-n", "--n-procs", type=int, default=9,
                        help="process count (BT needs a perfect square)")
    record.add_argument("--channel", default=None,
                        help="channel kind (default: the protocol's)")
    record.add_argument("--period", type=float, default=30.0,
                        help="checkpoint period, paper seconds")
    record.add_argument("--procs-per-node", type=int, default=2)
    record.add_argument("--profile", default="smoke")
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("-o", "--out", default="run.jsonl",
                        help="trace output path (JSONL)")
    record.add_argument("--metrics-out", default=None,
                        help="metrics snapshot path "
                             "(default: <out>.metrics.json)")
    record.add_argument("--no-metrics", action="store_true")
    record.set_defaults(func=_cmd_record)

    timeline = sub.add_parser(
        "timeline", help="export a recorded trace as a Perfetto timeline")
    timeline.add_argument("trace", help="trace JSONL from 'record'")
    timeline.add_argument("-o", "--out", default=None,
                          help="output path (default: <trace>.trace.json)")
    timeline.set_defaults(func=_cmd_timeline)

    validate = sub.add_parser(
        "validate", help="check a timeline JSON against shape rules")
    validate.add_argument("trace", help="trace_events JSON from 'timeline'")
    validate.set_defaults(func=_cmd_validate)

    args = parser.parse_args(argv)
    if args.command == "record" and args.protocol == "none":
        args.protocol = None
    if args.command == "timeline" and args.out is None:
        args.out = f"{args.trace}.trace.json"
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
