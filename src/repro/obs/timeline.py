"""Chrome-trace / Perfetto timeline export.

Turns a recorded trace (``repro.sim.trace.dump_jsonl`` output) into the
``trace_events`` JSON that chrome://tracing and https://ui.perfetto.dev
load directly:

* a **protocol track** with one slice per wave *phase* (markers / flush /
  stream / commit, from the ``ft.wave_phase`` records the protocols emit at
  commit time) — a Pcl flush stall is literally a wide "flush" slice; a
  second thread on the same track carries the *recovery* phases
  (detect / agree / promote / restore, from ``ft.recovery_phase``) that
  tile each recovery, plus one instant per membership agreement round;
* one **track per rank** with its per-wave activity: the blocked interval
  (Pcl: wave entry until resume), the draining window (Dcl: drain entry
  until resume) or the logging window (Vcl: local checkpoint until the
  last peer marker), plus instants for local checkpoints and stored
  images;
* **counter tracks** for cumulative logged in-transit bytes (Vcl) and
  failures/restarts as instants.

Timestamps are simulated seconds converted to microseconds (the
``trace_events`` unit).  The export is pure data transformation —
deterministic for a given input file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Tuple

from repro.sim.trace import TraceRecord, load_jsonl

__all__ = ["build_timeline", "export_timeline", "validate_trace_events",
           "phase_sums"]

#: trace_events pids: one virtual "process" per track group
PROTOCOL_PID = 1
RANKS_PID = 2
COUNTERS_PID = 3

_US = 1e6  # simulated seconds -> trace_events microseconds


def _meta(pid: int, name: str, tid: int = 0,
          thread: str = "") -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": name},
    }]
    if thread:
        events.append({
            "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": thread},
        })
    return events


def build_timeline(records: Iterable[TraceRecord]) -> Dict[str, Any]:
    """Build the ``trace_events`` document from trace records."""
    events: List[Dict[str, Any]] = []
    ranks_seen: set = set()
    recovery_seen = False
    protocol_name = "protocol"
    logged_cumulative = 0.0
    # (rank, wave) -> open time of the rank's wave slice, with its flavour
    open_slices: Dict[Tuple[int, int], Tuple[float, str]] = {}

    for record in records:
        category = record.category
        ts = record.time * _US
        if category == "ft.wave_phase":
            start = float(record.get("start", record.time)) * _US
            end = float(record.get("end", record.time)) * _US
            protocol_name = record.get("protocol", protocol_name)
            events.append({
                "ph": "X", "pid": PROTOCOL_PID, "tid": 1,
                "name": str(record.get("phase", "phase")),
                "cat": "wave",
                "ts": start, "dur": max(0.0, end - start),
                "args": {"wave": record.get("wave"),
                         "protocol": record.get("protocol"),
                         "seconds": record.get("duration")},
            })
        elif category == "ft.wave_started":
            events.append({
                "ph": "i", "pid": PROTOCOL_PID, "tid": 1,
                "name": f"wave {record.get('wave')} started",
                "cat": "wave", "ts": ts, "s": "p",
                "args": {"wave": record.get("wave")},
            })
        elif category == "ft.enter_wave":
            # Pcl: the rank is now blocked (gates closed / sources frozen)
            rank = int(record.get("rank", 0))
            wave = int(record.get("wave", 0))
            ranks_seen.add(rank)
            open_slices[(rank, wave)] = (ts, "blocked")
        elif category == "ft.resume":
            rank = int(record.get("rank", 0))
            wave = int(record.get("wave", 0))
            ranks_seen.add(rank)
            opened = open_slices.pop((rank, wave), None)
            if opened is not None:
                start, flavour = opened
                events.append({
                    "ph": "X", "pid": RANKS_PID, "tid": rank,
                    "name": f"w{wave} {flavour}", "cat": "rank",
                    "ts": start, "dur": max(0.0, ts - start),
                    "args": {"wave": wave},
                })
        elif category == "ft.drain_open":
            # Dcl: app sends frozen until the wave's image is forked
            rank = int(record.get("rank", 0))
            wave = int(record.get("wave", 0))
            ranks_seen.add(rank)
            open_slices[(rank, wave)] = (ts, "draining")
        elif category == "ft.drain_quiesced":
            events.append({
                "ph": "i", "pid": PROTOCOL_PID, "tid": 1,
                "name": f"wave {record.get('wave')} quiesced",
                "cat": "wave", "ts": ts, "s": "p",
                "args": {"wave": record.get("wave"),
                         "sent": record.get("sent"),
                         "recvd": record.get("recvd")},
            })
        elif category == "ft.logging_open":
            # Vcl: computation continues; the slice is the logging window
            rank = int(record.get("rank", 0))
            wave = int(record.get("wave", 0))
            ranks_seen.add(rank)
            open_slices[(rank, wave)] = (ts, "logging")
        elif category == "ft.logging_closed":
            rank = int(record.get("rank", 0))
            wave = int(record.get("wave", 0))
            ranks_seen.add(rank)
            opened = open_slices.pop((rank, wave), None)
            if opened is not None:
                start, flavour = opened
                events.append({
                    "ph": "X", "pid": RANKS_PID, "tid": rank,
                    "name": f"w{wave} {flavour}", "cat": "rank",
                    "ts": start, "dur": max(0.0, ts - start),
                    "args": {"wave": wave,
                             "messages": record.get("messages"),
                             "nbytes": record.get("nbytes")},
                })
        elif category == "ft.local_checkpoint":
            rank = int(record.get("rank", 0))
            ranks_seen.add(rank)
            events.append({
                "ph": "i", "pid": RANKS_PID, "tid": rank,
                "name": f"checkpoint w{record.get('wave')}",
                "cat": "rank", "ts": ts, "s": "t",
                "args": {"wave": record.get("wave"),
                         "protocol": record.get("protocol")},
            })
        elif category == "ft.image_stored":
            rank = int(record.get("rank", 0))
            ranks_seen.add(rank)
            events.append({
                "ph": "i", "pid": RANKS_PID, "tid": rank,
                "name": f"image stored w{record.get('wave')}",
                "cat": "rank", "ts": ts, "s": "t",
                "args": {"wave": record.get("wave"),
                         "nbytes": record.get("nbytes")},
            })
        elif category == "ft.logged":
            logged_cumulative += float(record.get("nbytes", 0.0))
            events.append({
                "ph": "C", "pid": COUNTERS_PID, "tid": 0,
                "name": "logged in-transit bytes", "ts": ts,
                "args": {"bytes": logged_cumulative},
            })
        elif category == "ft.recovery_phase":
            # detect / agree / promote / restore tiling one recovery
            recovery_seen = True
            start = float(record.get("start", record.time)) * _US
            end = float(record.get("end", record.time)) * _US
            events.append({
                "ph": "X", "pid": PROTOCOL_PID, "tid": 2,
                "name": str(record.get("phase", "phase")),
                "cat": "recovery",
                "ts": start, "dur": max(0.0, end - start),
                "args": {"policy": record.get("policy"),
                         "seconds": record.get("duration")},
            })
        elif category == "ft.membership_round":
            recovery_seen = True
            events.append({
                "ph": "i", "pid": PROTOCOL_PID, "tid": 2,
                "name": f"agreement ballot {record.get('ballot')}",
                "cat": "recovery", "ts": ts, "s": "p",
                "args": {"ballot": record.get("ballot"),
                         "coordinator": record.get("coordinator"),
                         "failed": list(record.get("failed", ())),
                         "survivors": record.get("survivors")},
            })
        elif category in ("ft.failure_detected", "ft.restarted"):
            events.append({
                "ph": "i", "pid": PROTOCOL_PID, "tid": 1,
                "name": category.split(".", 1)[1].replace("_", " "),
                "cat": "failure", "ts": ts, "s": "g",
                "args": record.as_dict(),
            })

    # a rank slice never closed (run ended mid-wave): emit it zero-length at
    # its open point so the open interval is still visible
    for (rank, wave), (start, flavour) in sorted(open_slices.items()):
        events.append({
            "ph": "X", "pid": RANKS_PID, "tid": rank,
            "name": f"w{wave} {flavour} (unfinished)", "cat": "rank",
            "ts": start, "dur": 0.0, "args": {"wave": wave},
        })

    meta: List[Dict[str, Any]] = []
    meta += _meta(PROTOCOL_PID, f"{protocol_name} waves", 1, "waves")
    if recovery_seen:
        meta.append({"ph": "M", "pid": PROTOCOL_PID, "tid": 2,
                     "name": "thread_name", "args": {"name": "recovery"}})
    meta.append({"ph": "M", "pid": RANKS_PID, "tid": 0, "name": "process_name",
                 "args": {"name": "ranks"}})
    for rank in sorted(ranks_seen):
        meta.append({"ph": "M", "pid": RANKS_PID, "tid": rank,
                     "name": "thread_name", "args": {"name": f"rank {rank}"}})
    meta += _meta(COUNTERS_PID, "counters")

    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "schema": "trace_events"},
    }


def export_timeline(jsonl_path: str, out_path: str) -> Dict[str, Any]:
    """Convert a trace JSONL file to a ``trace_events`` JSON file."""
    doc = build_timeline(load_jsonl(jsonl_path))
    with open(out_path, "w") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")
    return doc


def phase_sums(records: Iterable[TraceRecord]) -> Dict[int, float]:
    """wave -> summed phase durations, from ``ft.wave_phase`` records.

    The acceptance check: these sums must equal the wave durations in
    :class:`~repro.ft.protocol.FTStats` (up to float addition error).
    """
    sums: Dict[int, float] = {}
    for record in records:
        if record.category != "ft.wave_phase":
            continue
        wave = int(record.get("wave", 0))
        sums[wave] = sums.get(wave, 0.0) + float(record.get("duration", 0.0))
    return sums


def validate_trace_events(doc: Any) -> List[str]:
    """Structural validation of a ``trace_events`` document.

    Returns a list of problems (empty == valid): the checks Perfetto's
    loader actually cares about — a ``traceEvents`` array of objects, each
    with a known phase, numeric ``ts`` (and non-negative ``dur`` for
    complete events), integer ``pid``/``tid``, and a string ``name``.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    if not events:
        problems.append("traceEvents is empty")
    known_phases = {"B", "E", "X", "i", "I", "C", "M", "b", "e", "n", "s",
                    "t", "f", "P", "N", "O", "D"}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in known_phases:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name", ""), str):
            problems.append(f"{where}: name is not a string")
        for key in ("pid", "tid"):
            if key in event and not isinstance(event[key], int):
                problems.append(f"{where}: {key} is not an integer")
        if phase == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: ts missing or non-numeric")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
    return problems
