"""repro.obs — the observability layer.

The paper's argument is about *where* a checkpoint wave spends its time
(Pcl's channel-flush stall vs. Vcl's daemon latency and logged in-transit
volume), so the reproduction carries a first-class metrics + timeline
subsystem:

* :class:`MetricsRegistry` (:mod:`repro.obs.registry`) — deterministic
  counters / gauges / fixed-bucket histograms with scoped labels,
  timestamped with the simulation clock.
* :func:`attach_metrics` — installs a registry on a simulator: direct hooks
  in the engine, channels, protocols and storage light up (they all guard
  on ``sim.metrics is not None``), and a :class:`MetricsTap` subscribes to
  the tracer's per-category dispatch plan so protocol lifecycle records
  (waves, checkpoints, images, markers) are folded into metrics without
  extra call sites.
* :mod:`repro.obs.timeline` — exports a recorded trace as a Chrome-trace /
  Perfetto ``trace_events`` timeline: one track per rank, one track of
  per-wave phase slices.
* ``python -m repro.obs`` — record / timeline / validate CLI
  (:mod:`repro.obs.__main__`).

Everything here is strictly observational: no simulation events are
scheduled, no RNG stream is touched, so a run's figures are byte-identical
with metrics on or off.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_SECONDS_BUCKETS,
    metric_values,
    phase_totals,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsTap",
    "DEFAULT_SECONDS_BUCKETS",
    "attach_metrics",
    "collect_engine",
    "metric_values",
    "phase_totals",
]


class MetricsTap:
    """Folds protocol lifecycle trace records into metrics.

    Rides the tracer's per-category dispatch plan: subscribing for exactly
    these categories makes :meth:`~repro.sim.trace.Tracer.wants` true for
    them *only while metrics are attached*, so the untapped run pays
    nothing and the tapped run reuses the records the trace layer already
    defines instead of sprouting parallel hooks.
    """

    CATEGORIES = (
        "ft.wave_started",
        "ft.wave_completed",
        "ft.wave_aborted",
        "ft.local_checkpoint",
        "ft.image_stored",
        "ft.marker_recv",
        "ft.failure_detected",
        "ft.restarted",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def install(self, tracer: "Tracer") -> None:
        tracer.subscribe(self.dispatch, categories=self.CATEGORIES)

    def dispatch(self, record: "TraceRecord") -> None:
        reg = self.registry
        category = record.category
        if category == "ft.wave_completed":
            protocol = record.get("protocol", "?")
            reg.count("ft.waves_completed", 1.0, protocol=protocol)
            reg.observe("ft.wave_seconds", float(record.get("duration", 0.0)),
                        protocol=protocol)
        elif category == "ft.wave_started":
            reg.count("ft.waves_started", 1.0,
                      protocol=record.get("protocol", "?"))
        elif category == "ft.wave_aborted":
            reg.count("ft.waves_aborted", 1.0,
                      protocol=record.get("protocol", "?"))
        elif category == "ft.local_checkpoint":
            reg.count("ft.local_checkpoints", 1.0,
                      protocol=record.get("protocol", "?"))
        elif category == "ft.image_stored":
            reg.count("ft.images_stored", 1.0)
            reg.count("ft.image_bytes_stored", float(record.get("nbytes", 0.0)))
        elif category == "ft.marker_recv":
            reg.count("ft.markers_received", 1.0,
                      protocol=record.get("protocol", "?"))
        elif category == "ft.failure_detected":
            reg.count("ft.failures_detected", 1.0)
        elif category == "ft.restarted":
            reg.count("ft.restarts", 1.0)


def collect_engine(registry: MetricsRegistry, sim: "Simulator") -> None:
    """Snapshot-time engine figures: read once, never tracked per event."""
    registry.set("engine.events_processed", float(sim.events_processed))
    registry.set("engine.timer_tombstones", float(sim.tombstones_total))
    registry.set("engine.heap_compactions", float(sim.compactions))
    registry.set("engine.heap_depth", float(len(sim._heap)))
    watchdog = sim.watchdog
    if watchdog is not None:
        registry.set("engine.max_zero_time_cascade",
                     float(watchdog.max_cascade))


def attach_metrics(sim: "Simulator") -> MetricsRegistry:
    """Install a :class:`MetricsRegistry` on ``sim`` (idempotent).

    Lights up every direct hook in the stack, registers the engine
    collector, and taps the tracer's dispatch plan for protocol lifecycle
    records.  Returns the registry.
    """
    if sim.metrics is not None:
        return sim.metrics
    registry = MetricsRegistry(sim)
    sim.metrics = registry
    registry.add_collector(lambda reg: collect_engine(reg, sim))
    MetricsTap(registry).install(sim.trace)
    return registry
