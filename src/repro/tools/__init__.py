"""Measurement tools: the NetPIPE probe, trace analysis, ASCII plots."""

from repro.tools.ascii_plot import ascii_plot
from repro.tools.netpipe import DEFAULT_SIZES, NetpipeSample, run_netpipe, summarize
from repro.tools.trace_analysis import (
    LinearFit,
    linear_fit,
    overhead_breakdown,
    wave_summary,
)

__all__ = [
    "DEFAULT_SIZES",
    "ascii_plot",
    "LinearFit",
    "NetpipeSample",
    "linear_fit",
    "overhead_breakdown",
    "run_netpipe",
    "summarize",
    "wave_summary",
]
