"""Minimal ASCII line plots for terminal reports.

The harness tables carry the exact numbers; these plots make trends (the
U-shape of the MTTF sweep, the linear time-vs-waves lines) visible at a
glance in a terminal or CI log without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@%&"


def ascii_plot(
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``[(label, xs, ys), ...]`` as an ASCII scatter/line chart.

    Points from different series get different markers; collisions show the
    later series' marker.  Returns a multi-line string.
    """
    if width < 16 or height < 4:
        raise ValueError("plot area too small")
    points = [
        (x, y, index)
        for index, (_label, xs, ys) in enumerate(series)
        for x, y in zip(xs, ys)
    ]
    if not points:
        return "(no data)\n"
    xs_all = [p[0] for p in points]
    ys_all = [p[1] for p in points]
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for x, y, index in points:
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = height - 1 - int(round((y - y_lo) / y_span * (height - 1)))
        grid[row][col] = _MARKERS[index % len(_MARKERS)]

    lines: List[str] = []
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    margin = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(margin)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|" + "".join(row))
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}".rjust(8)
    lines.append(" " * (margin + 1) + x_axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, (label, _xs, _ys) in enumerate(series)
    )
    lines.append(f"{y_label} vs {x_label}:   {legend}")
    return "\n".join(lines) + "\n"
