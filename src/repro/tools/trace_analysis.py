"""Trace analysis helpers used by the harness and tests.

Everything the paper reports — completion times, checkpoint-wave counts,
overhead decompositions, slopes of time-vs-waves lines — is derived here
from run statistics and traces rather than ad-hoc in each figure script.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ft.protocol import FTStats
from repro.sim.trace import Tracer

__all__ = [
    "LinearFit",
    "linear_fit",
    "wave_summary",
    "overhead_breakdown",
]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line y = slope * x + intercept."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Least-squares fit with the coefficient of determination.

    Used to check the paper's "completion time is linear in the number of
    checkpoint waves" claims (Figs. 7-9).
    """
    if len(xs) != len(ys):
        raise ValueError("x/y length mismatch")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    total = float(((y - y.mean()) ** 2).sum())
    residual = float(((y - predicted) ** 2).sum())
    r2 = 1.0 if total == 0.0 else 1.0 - residual / total
    return LinearFit(float(slope), float(intercept), r2)


def wave_summary(stats: FTStats) -> dict:
    """Waves completed, mean/max wave duration, blocked time."""
    durations = stats.wave_durations()
    return {
        "waves": stats.waves_completed,
        "mean_wave_seconds": float(np.mean(durations)) if durations else 0.0,
        "max_wave_seconds": float(np.max(durations)) if durations else 0.0,
        "blocked_seconds": stats.blocked_seconds,
        "logged_mbytes": stats.logged_bytes / 1e6,
        "image_mbytes": stats.image_bytes_stored / 1e6,
    }


def overhead_breakdown(
    completion: float,
    baseline: float,
    stats: Optional[FTStats] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> dict:
    """Decompose a run's overhead versus its checkpoint-free baseline.

    ``stats`` supplies the wave count (the legacy interface).  A
    :mod:`repro.obs` ``metrics`` snapshot is the richer source: the wave
    count is read from the ``ft.waves_completed`` counters and the overhead
    is additionally decomposed per checkpoint-wave *phase* (markers / flush
    / stream / commit) from the ``ft.wave_phase_seconds`` histograms the
    protocols feed — so a Pcl run's overhead is visibly flush-dominated and
    a Vcl run's commit/stream-dominated, instead of one opaque number.
    At least one of ``stats`` / ``metrics`` must be given.
    """
    if stats is None and metrics is None:
        raise ValueError("overhead_breakdown needs stats and/or metrics")
    waves = stats.waves_completed if stats is not None else 0
    phases: Dict[str, float] = {}
    if metrics is not None:
        from repro.obs import metric_values, phase_totals

        phases = phase_totals(metrics)
        if stats is None:
            waves = int(sum(
                entry.get("value", 0.0)
                for _, entry in metric_values(metrics, "ft.waves_completed")
            ))
    overhead = completion - baseline
    doc = {
        "completion_seconds": completion,
        "baseline_seconds": baseline,
        "overhead_seconds": overhead,
        "overhead_percent": 100.0 * overhead / baseline if baseline > 0 else 0.0,
        "overhead_per_wave": overhead / waves if waves else 0.0,
        "waves": waves,
    }
    if phases:
        total = sum(phases.values())
        doc["phase_seconds"] = {k: phases[k] for k in sorted(phases)}
        doc["phase_share"] = {
            k: (phases[k] / total if total > 0 else 0.0) for k in sorted(phases)
        }
    return doc
