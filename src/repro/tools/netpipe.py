"""A NetPIPE-style network performance probe.

The paper measures the raw Grid'5000 platform with NetPIPE (Sec. 5.4): a
ping-pong test over a sweep of message sizes with small perturbations of
each size, reporting latency and bandwidth.  That measurement is what the
WAN fabric parameters encode, so this tool doubles as the calibration check:
run it intra-cluster and inter-cluster and compare the ratios against the
paper's "up to 20 times" bandwidth and "two orders of magnitude" latency
observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.apps.synthetic import ping_pong
from repro.mpi import FtSockChannel, MPIJob
from repro.net.topology import BaseNetwork, Endpoint

__all__ = ["NetpipeSample", "run_netpipe", "DEFAULT_SIZES"]

#: NetPIPE's classic sweep: powers of two with +/- perturbations
DEFAULT_SIZES = tuple(
    size + delta
    for base in (1, 64, 1024, 16 * 1024, 256 * 1024, 1024 * 1024)
    for size, delta in ((base, 0), (base, -3), (base, 3))
    if size + delta > 0
)


@dataclass(frozen=True)
class NetpipeSample:
    """One measured point of the sweep."""

    nbytes: float
    rtt: float

    @property
    def latency(self) -> float:
        """One-way latency estimate."""
        return self.rtt / 2.0

    @property
    def bandwidth(self) -> float:
        """Application-visible throughput in bytes/second."""
        return 2.0 * self.nbytes / self.rtt if self.rtt > 0 else float("inf")


def run_netpipe(
    sim: "Simulator",
    net: BaseNetwork,
    a: Endpoint,
    b: Endpoint,
    sizes: Optional[Sequence[float]] = None,
    repeats: int = 3,
    channel_cls: type = FtSockChannel,
) -> List[NetpipeSample]:
    """Ping-pong between two endpoints; returns one sample per size."""
    sizes = tuple(sizes) if sizes is not None else DEFAULT_SIZES
    samples: List[NetpipeSample] = []
    for nbytes in sizes:
        job = MPIJob(
            sim, net, [a, b], ping_pong(repeats, float(nbytes)), channel_cls,
            name=f"netpipe:{int(nbytes)}",
        )
        job.start()
        sim.run_until_complete(job.completed)
        rtts = job.contexts[0].state["rtts"]
        # drop the first round trip: it pays connection establishment
        steady = rtts[1:] if len(rtts) > 1 else rtts
        samples.append(NetpipeSample(float(nbytes), sum(steady) / len(steady)))
        job.kill()
    return samples


def summarize(samples: Sequence[NetpipeSample]) -> dict:
    """Headline numbers: small-message latency, large-message bandwidth."""
    smallest = min(samples, key=lambda s: s.nbytes)
    largest = max(samples, key=lambda s: s.nbytes)
    return {
        "latency": smallest.latency,
        "bandwidth": largest.bandwidth,
        "points": len(samples),
    }
