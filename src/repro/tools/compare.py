"""Compare two saved result sets (regression / profile diffing).

``python -m repro.tools.compare results_a results_b`` prints, per experiment
present in both directories, the relative change of every shared series
point and whether any shape check flipped — the tool to run after touching
a model constant to see exactly which figures moved.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ExperimentDiff", "compare_dirs", "load_results", "main"]


@dataclass
class ExperimentDiff:
    """The differences of one experiment between two result sets."""

    figure_id: str
    #: (series label, x, old y, new y, relative change)
    point_changes: List[Tuple[str, float, float, float, float]] = field(
        default_factory=list)
    #: check name -> (old, new), only where they differ
    check_flips: Dict[str, Tuple[bool, bool]] = field(default_factory=dict)

    @property
    def max_relative_change(self) -> float:
        if not self.point_changes:
            return 0.0
        return max(abs(change) for *_rest, change in self.point_changes)

    @property
    def regressed(self) -> bool:
        return any(old and not new for old, new in self.check_flips.values())


def load_results(directory: str) -> Dict[str, dict]:
    """Load the newest result per figure id from a directory of JSONs."""
    by_id: Dict[str, dict] = {}
    rank = {"smoke": 0, "quick": 1, "paper": 2}
    for path in sorted(glob.glob(os.path.join(directory, "*.json"))):
        with open(path) as handle:
            data = json.load(handle)
        current = by_id.get(data["figure"])
        if current is None or rank.get(data.get("profile"), 0) >= rank.get(
                current.get("profile"), 0):
            by_id[data["figure"]] = data
    return by_id


def _diff_one(old: dict, new: dict) -> ExperimentDiff:
    diff = ExperimentDiff(figure_id=old["figure"])
    old_series = {s["label"]: s for s in old.get("series", [])}
    for entry in new.get("series", []):
        base = old_series.get(entry["label"])
        if base is None:
            continue
        for x, y in zip(entry["xs"], entry["ys"]):
            try:
                index = base["xs"].index(x)
            except ValueError:
                continue
            previous = base["ys"][index]
            if not isinstance(previous, (int, float)) or previous == 0:
                continue
            change = (y - previous) / abs(previous)
            if abs(change) > 1e-12:
                diff.point_changes.append(
                    (entry["label"], x, previous, y, change))
    old_checks = old.get("checks", {})
    for name, new_state in new.get("checks", {}).items():
        if name in old_checks and old_checks[name] != new_state:
            diff.check_flips[name] = (old_checks[name], new_state)
    return diff


def compare_dirs(dir_a: str, dir_b: str) -> List[ExperimentDiff]:
    """Diff every experiment present in both directories."""
    results_a = load_results(dir_a)
    results_b = load_results(dir_b)
    return [
        _diff_one(results_a[figure_id], results_b[figure_id])
        for figure_id in sorted(set(results_a) & set(results_b))
    ]


def render_diff(diff: ExperimentDiff, threshold: float = 0.01) -> str:
    lines = [f"== {diff.figure_id} =="]
    notable = [c for c in diff.point_changes if abs(c[4]) >= threshold]
    if not notable and not diff.check_flips:
        lines.append("  unchanged")
    for label, x, old, new, change in notable:
        lines.append(
            f"  {label} @ x={x:g}: {old:.3f} -> {new:.3f} ({change:+.1%})")
    for name, (old_state, new_state) in diff.check_flips.items():
        arrow = "PASS->FAIL" if old_state else "FAIL->PASS"
        lines.append(f"  check {arrow}: {name}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("dir_a")
    parser.add_argument("dir_b")
    parser.add_argument("--threshold", type=float, default=0.01,
                        help="minimum relative change to report")
    args = parser.parse_args(argv)
    diffs = compare_dirs(args.dir_a, args.dir_b)
    if not diffs:
        print("no experiments in common")
        return 1
    regressions = 0
    for diff in diffs:
        print(render_diff(diff, args.threshold))
        regressions += diff.regressed
    if regressions:
        print(f"{regressions} experiment(s) regressed (checks flipped to FAIL)")
    return 1 if regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
