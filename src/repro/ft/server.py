"""Checkpoint servers.

A checkpoint server is a dedicated machine that collects the local
checkpoints of its assigned MPI processes (Sec. 4.1).  Image and log bytes
arrive over ordinary network connections, so concurrent transfers from many
ranks contend on the server's NIC — the effect behind Figure 5's
checkpoint-server scaling study.

Both implementations (Vcl and Pcl) share this server, as in the paper.

Wire protocol (payloads on the rank<->server connection):

* ``("image", rank, wave, image, final)``  rank -> server, sized ``image.nbytes``
  (legacy 4-tuples without ``final`` are accepted as ``final=True``)
* ``("log", rank, wave, packets, nbytes)`` rank -> server, sized logged bytes
* ``("fetch", rank, wave)``                rank -> server (restart)
* ``("image_data", image, status)``        server -> rank, sized ``image.nbytes``
  when ``status == "ok"``; ``status`` is one of ``ok`` / ``missing`` /
  ``partial`` / ``corrupt`` and the payload is ``None`` unless ok
* ``("ack", kind, rank, wave)``            server -> rank
* ``("commit", wave)``                     initiator -> server

Storage semantics.  The server keeps its *own copy* of every record
(:meth:`CheckpointImage.replica`) so per-replica state — arrival time,
sealing, corruption — never aliases another server's copy or the sender's
in-memory image.  A record is *sealed* once it is complete (final image
received, and any log attached); only sealed records are restorable, and a
connection that breaks mid-transfer discards that connection's unsealed
records instead of leaving a truncated upload that a racing commit could
bless.  Only *committed* waves survive garbage collection: commits keep the
newest ``gc_keep`` committed waves per server (the paper's "simple garbage
collection" is ``gc_keep=1``; replicated configurations may retain more so
recovery can fall back past a damaged wave).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ft.image import CheckpointImage
from repro.net.topology import BaseNetwork, Endpoint
from repro.sim.process import Interrupt

__all__ = ["CheckpointServer", "assign_servers", "assign_replicas"]

#: wire size of small control records on the server connection
_CONTROL_BYTES = 64.0


class CheckpointServer:
    """One checkpoint server process on its own machine."""

    def __init__(self, sim: "Simulator", net: BaseNetwork, node: "Node",
                 name: str = "ckpt-server", gc_keep: int = 1) -> None:
        if gc_keep < 1:
            raise ValueError("gc_keep must be >= 1")
        self.sim = sim
        self.net = net
        self.node = node
        self.name = name
        self.gc_keep = gc_keep
        self.endpoint = Endpoint(node, 0)
        #: wave -> rank -> image (this server's own replica copies)
        self.storage: Dict[int, Dict[int, CheckpointImage]] = {}
        self.committed_wave: int = 0
        #: every wave this server has committed, oldest first (GC ledger)
        self.committed_waves: List[int] = []
        self.bytes_received = 0.0
        self.peak_stored_bytes = 0.0
        self._receivers: List["Process"] = []
        #: (wave, rank) -> serving connection end, for unsealed records only;
        #: lets a broken connection discard exactly its own partial uploads
        self._origin: Dict[Tuple[int, int], "ConnectionEnd"] = {}

    # ------------------------------------------------------------ connections
    def open_connection(self, rank_endpoint: Endpoint) -> "ConnectionEnd":
        """Connect a rank's daemon to this server; returns the rank-side end.

        The real daemon opens three sockets (data / messages / control); one
        modelled FIFO connection carries all three roles.
        """
        connection = self.net.connect(rank_endpoint, self.endpoint)
        self.serve_connection(connection.end_b)
        return connection.end_a

    def serve_connection(self, end: "ConnectionEnd") -> None:
        """Start serving requests arriving on ``end`` (server side)."""
        receiver = self.sim.process(self._serve(end), name=f"{self.name}:serve")
        self._receivers.append(receiver)

    def _serve(self, end: "ConnectionEnd"):
        while True:
            try:
                message = yield end.recv()
            except ConnectionError:
                # The rank died or the job was torn down mid-transfer: any
                # record this connection uploaded but never completed is a
                # truncated file — drop it so a racing commit cannot bless it.
                self._discard_partial(end)
                return
            kind = message[0]
            if kind == "image":
                if len(message) == 5:
                    _kind, rank, wave, image, final = message
                else:  # legacy sender: the image message is the whole upload
                    _kind, rank, wave, image = message
                    final = True
                record = image.replica()
                record.stored_at = self.sim.now
                self.storage.setdefault(wave, {})[rank] = record
                self.bytes_received += image.nbytes
                self._track_peak()
                if final:
                    self._seal(record)
                    self._origin.pop((wave, rank), None)
                else:
                    self._origin[(wave, rank)] = end
                end.send(("ack", "image", rank, wave), nbytes=_CONTROL_BYTES)
            elif kind == "log":
                _kind, rank, wave, packets, nbytes = message
                image = self.storage.get(wave, {}).get(rank)
                if image is not None:
                    image.logged_messages = list(packets)
                    image.logged_bytes = nbytes
                    self._seal(image)
                    self._origin.pop((wave, rank), None)
                self.bytes_received += nbytes
                self._track_peak()
                end.send(("ack", "log", rank, wave), nbytes=_CONTROL_BYTES)
            elif kind == "fetch":
                _kind, rank, wave = message
                image = self.storage.get(wave, {}).get(rank)
                if image is None:
                    payload, status = None, "missing"
                elif not image.sealed:
                    payload, status = None, "partial"
                elif not image.verify():
                    payload, status = None, "corrupt"
                else:
                    payload, status = image, "ok"
                end.send(("image_data", payload, status),
                         nbytes=payload.nbytes if payload else _CONTROL_BYTES)
            elif kind == "commit":
                _kind, wave = message
                self.commit(wave)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown server message {kind!r}")

    # ---------------------------------------------------------------- storage
    def seal_record(self, wave: int, rank: int) -> None:
        """Seal a stored record in place (no further data expected).

        Used by Vcl's no-log fast path, whose completion notification is
        in-process (see ``VclEndpoint._ship_logs_and_ack``) rather than a
        wire message.
        """
        image = self.storage.get(wave, {}).get(rank)
        if image is not None and not image.sealed:
            self._seal(image)
            self._origin.pop((wave, rank), None)

    def _seal(self, record: CheckpointImage) -> None:
        record.seal()
        if self.sim.trace.wants("ft.replica_stored"):
            self.sim.trace.record(
                self.sim.now, "ft.replica_stored", server=self.name,
                rank=record.rank, wave=record.wave,
                checksum=record.checksum, nbytes=record.total_bytes)

    def _discard_partial(self, end: "ConnectionEnd") -> None:
        """Drop every unsealed record uploaded over ``end``."""
        for (wave, rank), origin in list(self._origin.items()):
            if origin is not end:
                continue
            del self._origin[(wave, rank)]
            record = self.storage.get(wave, {}).get(rank)
            if record is not None and not record.sealed:
                del self.storage[wave][rank]
                if not self.storage[wave]:
                    del self.storage[wave]

    def commit(self, wave: int) -> None:
        """Mark ``wave`` complete and garbage-collect older waves.

        Retains the newest ``gc_keep`` committed waves so recovery can fall
        back to an older commit when the newest one is damaged.
        """
        if wave <= self.committed_wave:
            return
        self.committed_wave = wave
        self.committed_waves.append(wave)
        if self.sim.trace.wants("ft.commit"):
            self.sim.trace.record(
                self.sim.now, "ft.commit", server=self.name, wave=wave,
                ranks=sorted(self.storage.get(wave, {})))
        retained = set(self.committed_waves[-self.gc_keep:])
        for old in [w for w in self.storage if w < wave and w not in retained]:
            del self.storage[old]
            if self.sim.trace.wants("ft.wave_gc"):
                self.sim.trace.record(self.sim.now, "ft.wave_gc",
                                      server=self.name, wave=old)

    def images_for(self, wave: int) -> Dict[int, CheckpointImage]:
        return dict(self.storage.get(wave, {}))

    def stored_bytes(self) -> float:
        return sum(
            image.total_bytes
            for per_rank in self.storage.values()
            for image in per_rank.values()
        )

    def _track_peak(self) -> None:
        self.peak_stored_bytes = max(self.peak_stored_bytes, self.stored_bytes())

    def shutdown(self) -> None:
        for receiver in self._receivers:
            receiver.interrupt("server shutdown")
        self._receivers.clear()


def assign_servers(n_ranks: int, servers: List[CheckpointServer]) -> Dict[int, CheckpointServer]:
    """Round-robin mapping of ranks to servers (the paper distributes
    computing nodes equally among the checkpoint servers)."""
    if not servers:
        raise ValueError("at least one checkpoint server is required")
    return {rank: servers[rank % len(servers)] for rank in range(n_ranks)}


def assign_replicas(
    n_ranks: int,
    servers: List[CheckpointServer],
    replication: int = 1,
) -> Dict[int, List[CheckpointServer]]:
    """Rank -> ordered list of K replica servers.

    The primary follows the same round-robin as :func:`assign_servers`
    (so ``replication=1`` is exactly the unreplicated layout) and the
    remaining K-1 replicas are the next servers in ring order — every
    server carries the same share of primaries and of secondaries.
    """
    if not servers:
        raise ValueError("at least one checkpoint server is required")
    if not 1 <= replication <= len(servers):
        raise ValueError(
            f"replication must be between 1 and the number of servers "
            f"({len(servers)}), got {replication}")
    n = len(servers)
    return {
        rank: [servers[(rank + j) % n] for j in range(replication)]
        for rank in range(n_ranks)
    }
