"""Checkpoint servers.

A checkpoint server is a dedicated machine that collects the local
checkpoints of its assigned MPI processes (Sec. 4.1).  Image and log bytes
arrive over ordinary network connections, so concurrent transfers from many
ranks contend on the server's NIC — the effect behind Figure 5's
checkpoint-server scaling study.

Both implementations (Vcl and Pcl) share this server, as in the paper.

Wire protocol (payloads on the rank<->server connection):

* ``("image", rank, wave, image)``     rank -> server, sized ``image.nbytes``
* ``("log", rank, wave, packets)``     rank -> server, sized logged bytes
* ``("fetch", rank, wave)``            rank -> server (restart)
* ``("image_data", image)``            server -> rank, sized ``image.nbytes``
* ``("ack", kind, rank, wave)``        server -> rank
* ``("commit", wave)``                 initiator -> server

Only *committed* waves survive: a failure mid-wave breaks the connections,
and the partial wave's records are discarded when the next commit garbage-
collects everything but the newest committed wave (the paper's "simple
garbage collection").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ft.image import CheckpointImage
from repro.net.topology import BaseNetwork, Endpoint
from repro.sim.process import Interrupt

__all__ = ["CheckpointServer", "assign_servers"]

#: wire size of small control records on the server connection
_CONTROL_BYTES = 64.0


class CheckpointServer:
    """One checkpoint server process on its own machine."""

    def __init__(self, sim: "Simulator", net: BaseNetwork, node: "Node",
                 name: str = "ckpt-server") -> None:
        self.sim = sim
        self.net = net
        self.node = node
        self.name = name
        self.endpoint = Endpoint(node, 0)
        #: wave -> rank -> image
        self.storage: Dict[int, Dict[int, CheckpointImage]] = {}
        self.committed_wave: int = 0
        self.bytes_received = 0.0
        self.peak_stored_bytes = 0.0
        self._receivers: List["Process"] = []

    # ------------------------------------------------------------ connections
    def open_connection(self, rank_endpoint: Endpoint) -> "ConnectionEnd":
        """Connect a rank's daemon to this server; returns the rank-side end.

        The real daemon opens three sockets (data / messages / control); one
        modelled FIFO connection carries all three roles.
        """
        connection = self.net.connect(rank_endpoint, self.endpoint)
        self.serve_connection(connection.end_b)
        return connection.end_a

    def serve_connection(self, end: "ConnectionEnd") -> None:
        """Start serving requests arriving on ``end`` (server side)."""
        receiver = self.sim.process(self._serve(end), name=f"{self.name}:serve")
        self._receivers.append(receiver)

    def _serve(self, end: "ConnectionEnd"):
        while True:
            try:
                message = yield end.recv()
            except ConnectionError:
                return  # rank died or job torn down; partial data stays until GC
            kind = message[0]
            if kind == "image":
                _kind, rank, wave, image = message
                self.storage.setdefault(wave, {})[rank] = image
                image.stored_at = self.sim.now
                self.bytes_received += image.nbytes
                self._track_peak()
                end.send(("ack", "image", rank, wave), nbytes=_CONTROL_BYTES)
            elif kind == "log":
                _kind, rank, wave, packets, nbytes = message
                image = self.storage.get(wave, {}).get(rank)
                if image is not None:
                    image.logged_messages = list(packets)
                    image.logged_bytes = nbytes
                self.bytes_received += nbytes
                self._track_peak()
                end.send(("ack", "log", rank, wave), nbytes=_CONTROL_BYTES)
            elif kind == "fetch":
                _kind, rank, wave = message
                image = self.storage.get(wave, {}).get(rank)
                end.send(("image_data", image),
                         nbytes=image.nbytes if image else _CONTROL_BYTES)
            elif kind == "commit":
                _kind, wave = message
                self.commit(wave)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown server message {kind!r}")

    # ---------------------------------------------------------------- storage
    def commit(self, wave: int) -> None:
        """Mark ``wave`` complete and garbage-collect older waves."""
        if wave <= self.committed_wave:
            return
        self.committed_wave = wave
        for old in [w for w in self.storage if w < wave]:
            del self.storage[old]

    def images_for(self, wave: int) -> Dict[int, CheckpointImage]:
        return dict(self.storage.get(wave, {}))

    def stored_bytes(self) -> float:
        return sum(
            image.total_bytes
            for per_rank in self.storage.values()
            for image in per_rank.values()
        )

    def _track_peak(self) -> None:
        self.peak_stored_bytes = max(self.peak_stored_bytes, self.stored_bytes())

    def shutdown(self) -> None:
        for receiver in self._receivers:
            receiver.interrupt("server shutdown")
        self._receivers.clear()


def assign_servers(n_ranks: int, servers: List[CheckpointServer]) -> Dict[int, CheckpointServer]:
    """Round-robin mapping of ranks to servers (the paper distributes
    computing nodes equally among the checkpoint servers)."""
    if not servers:
        raise ValueError("at least one checkpoint server is required")
    return {rank: servers[rank % len(servers)] for rank in range(n_ranks)}
