"""Vcl: the non-blocking Chandy–Lamport protocol (Sec. 3, Fig. 1).

A dedicated *checkpoint scheduler* process initiates waves.  On its first
marker of a wave (from the scheduler or from a peer), a process:

1. records its local state immediately — the fork makes the interruption
   "only the local checkpointing" — and starts streaming the image to its
   checkpoint server while computation continues;
2. sends a marker to every other process;
3. starts logging: every application message received on a channel after the
   local checkpoint and before that channel's marker is copied into the
   daemon's volatile memory as the channel state, to be shipped to the
   checkpoint server and replayed at restart.

When the markers of all peers have arrived and the image and logs are
stored, the process acknowledges the scheduler; the scheduler asserts the
wave to the servers once every acknowledgment is in, and only then arms the
timer for the next wave.

Communication is never frozen — the protocol's entire cost is the fork, the
background image transfer, and the logging copies.  That is why Vcl's
completion time is flat in the number of waves (Figs. 5–7) while Pcl's is
linear.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ft.image import CheckpointImage
from repro.ft.protocol import BaseEndpoint, BaseProtocol, SCHEDULER_ID
from repro.mpi.channels.ch_v import ChVChannel
from repro.mpi.message import (
    AppPacket,
    ControlPacket,
    MarkerPacket,
    MARKER_BYTES,
    Packet,
)
from repro.net.topology import Endpoint
from repro.sim.process import Interrupt

__all__ = ["VclProtocol", "VclEndpoint"]

_ACK_BYTES = 64.0


class VclEndpoint(BaseEndpoint):
    """Rank-side state machine of the non-blocking protocol."""

    #: the image message does not complete a Vcl upload — the channel-state
    #: log may still follow, so the server seals the record at log attach
    #: (or via seal_record() when the wave logged nothing)
    image_final = False

    def __init__(self, protocol: "VclProtocol", rank: int) -> None:
        super().__init__(protocol, rank)
        self.wave = 0
        self._logging_from: Set[int] = set()
        self._log: List[AppPacket] = []
        self._log_bytes = 0.0
        self._image_stored = False
        self._acked = False

    # ------------------------------------------------------------ wave entry
    def start_wave(self, wave: int) -> None:
        if wave <= self.wave:
            return
        self.wave = wave
        # 1. local checkpoint, immediately and atomically; the fork pause is
        # the protocol's only interruption of the computation
        snapshot = self.context.take_snapshot(wave)
        self.context.add_stall(self.protocol.fork_latency)
        self.sim.trace.record(
            self.sim.now, "ft.local_checkpoint", rank=self.rank,
            wave=wave, protocol="vcl",
        )
        self.protocol.note_phase("enter", wave)
        # 2. open the logging window for every peer channel
        self._logging_from = {r for r in range(self.job.size) if r != self.rank}
        self._log = []
        self._log_bytes = 0.0
        self._image_stored = False
        self._acked = False
        if self.sim.trace.wants("ft.logging_open"):
            self.sim.trace.record(
                self.sim.now, "ft.logging_open", rank=self.rank, wave=wave,
                peers=tuple(sorted(self._logging_from)),
            )
        # 3. markers to everyone; image transfer in the background
        if self._logging_from:
            self._spawn(self._send_markers(sorted(self._logging_from), wave),
                        f"vcl:markers:r{self.rank}")
        self._spawn(self._store(snapshot), f"vcl:store:r{self.rank}")

    def _send_markers(self, others, wave: int):
        for dst in others:
            try:
                yield from self.channel.send_control(
                    dst, MarkerPacket(self.rank, wave), MARKER_BYTES
                )
            except ConnectionError:
                return
            self.protocol.stats.markers_sent += 1

    def _store(self, snapshot):
        image = CheckpointImage(self.rank, snapshot.wave, snapshot.image_bytes, snapshot)
        try:
            yield from self._store_image(image)
        except ConnectionError:
            return
        self._image_stored = True
        self._image = image
        self._check_local_done()

    # ---------------------------------------------------------------- events
    def on_control(self, packet: Packet) -> None:
        if isinstance(packet, MarkerPacket):
            self.start_wave(packet.wave)
            if packet.wave != self.wave:
                return
            if self.sim.trace.wants("ft.marker_recv"):
                self.sim.trace.record(
                    self.sim.now, "ft.marker_recv", rank=self.rank,
                    src=packet.src, wave=packet.wave, protocol="vcl",
                )
            if packet.src != SCHEDULER_ID and packet.src in self._logging_from:
                self._logging_from.discard(packet.src)
                if not self._logging_from:
                    # every peer's marker has arrived: the Chandy–Lamport
                    # cut is complete for this rank
                    self.protocol.note_phase("flushed", self.wave)
                    if self.sim.trace.wants("ft.logging_closed"):
                        self.sim.trace.record(
                            self.sim.now, "ft.logging_closed",
                            rank=self.rank, wave=self.wave,
                            messages=len(self._log), nbytes=self._log_bytes,
                        )
                self._check_local_done()

    def on_app_packet(self, packet: AppPacket) -> None:
        """Chandy–Lamport channel-state recording (the daemon's copy)."""
        if not self.protocol.logging_enabled:
            return
        if packet.src in self._logging_from:
            if self.sim.trace.wants("ft.logged"):
                self.sim.trace.record(
                    self.sim.now, "ft.logged", rank=self.rank,
                    src=packet.src, seq=packet.seq, wave=self.wave,
                    nbytes=packet.nbytes,
                )
            self._log.append(packet)
            self._log_bytes += packet.nbytes
            if isinstance(self.channel, ChVChannel):
                self.channel.log_buffer_bytes += packet.nbytes
            self.protocol.stats.logged_messages += 1
            self.protocol.stats.logged_bytes += packet.nbytes
            metrics = self.sim.metrics
            if metrics is not None:
                metrics.count("ft.logged_messages", 1.0,
                              rank=self.rank, wave=self.wave)
                metrics.count("ft.logged_bytes", packet.nbytes,
                              rank=self.rank, wave=self.wave)
                if isinstance(self.channel, ChVChannel):
                    metrics.set("channel.log_buffer_bytes",
                                self.channel.log_buffer_bytes,
                                rank=self.rank)

    # ----------------------------------------------------------- completion
    def _check_local_done(self) -> None:
        if self._acked or not self._image_stored or self._logging_from:
            return
        self._acked = True
        self._spawn(self._ship_logs_and_ack(), f"vcl:logs:r{self.rank}")

    def _ship_logs_and_ack(self):
        wave = self.wave
        if self._log:
            if len(self.replicas) == 1:
                end = self._server_connection()
                ack = self._await_ack("log", wave)
                try:
                    end.send(("log", self.rank, wave, list(self._log),
                              self._log_bytes), nbytes=self._log_bytes)
                except ConnectionError:
                    return
                try:
                    yield ack
                except ConnectionError:
                    return
            else:
                # Ship the channel state to the replicas that hold this
                # wave's image; a majority of them must attach (and seal)
                # the log before the wave may be acknowledged.
                targets = self._live_replica_ends(
                    sorted(self._acked_replicas.get(wave, ())))
                if not targets:
                    return
                gate = self._replicated_send(
                    "log", wave, targets,
                    ("log", self.rank, wave, list(self._log), self._log_bytes),
                    nbytes=self._log_bytes)
                try:
                    yield gate
                except ConnectionError:
                    return
            # keep the image's log reference locally too (same-node restarts)
            self._image.logged_messages = list(self._log)
            self._image.logged_bytes = self._log_bytes
            if isinstance(self.channel, ChVChannel):
                self.channel.log_buffer_bytes = 0.0
                if self.sim.metrics is not None:
                    self.sim.metrics.set("channel.log_buffer_bytes", 0.0,
                                         rank=self.rank)
        else:
            # No channel state this wave: nothing more will arrive, so the
            # stored replicas are complete — seal them in place (in-process,
            # like the on_rank_ack notification below).
            for index in sorted(self._acked_replicas.get(wave, ())):
                server = self.replicas[index]
                if server.node.alive:
                    server.seal_record(wave, self.rank)
        self.protocol.on_rank_ack(self.rank, wave)


class VclScheduler:
    """The centralized checkpoint-wave initiator (its own machine)."""

    def __init__(self, protocol: "VclProtocol", node: "Node") -> None:
        self.protocol = protocol
        self.sim = protocol.sim
        self.node = node
        self.endpoint = Endpoint(node, 0)
        self._rank_ends: Dict[int, "ConnectionEnd"] = {}

    def connect_all(self) -> None:
        """Open one connection per MPI process (as the scheduler does at
        deployment time) and plug the rank side into each rank's channel."""
        job = self.protocol.job
        for rank in range(job.size):
            connection = job.net.connect(self.endpoint, job.endpoints[rank])
            self._rank_ends[rank] = connection.end_a
            job.channels[rank].attach(SCHEDULER_ID, connection.end_b)
            self.protocol._connections.append(connection)
            self.sim.process(
                self._listen(rank, connection.end_a), name=f"vcl:sched:r{rank}"
            )

    def broadcast_markers(self, wave: int) -> None:
        for rank, end in self._rank_ends.items():
            if not end.broken:
                end.send(MarkerPacket(SCHEDULER_ID, wave), nbytes=MARKER_BYTES)

    def _listen(self, rank: int, end: "ConnectionEnd"):
        while True:
            try:
                message = yield end.recv()
            except ConnectionError:
                return
            if isinstance(message, ControlPacket) and message.kind == "vcl_ack":
                self.protocol.on_rank_ack(message.src, message.payload)


class VclProtocol(BaseProtocol):
    """Non-blocking coordinated checkpointing inside MPICH-1 (MPICH-Vcl)."""

    protocol_name = "vcl"

    #: test-only knob for repro.verify: setting this False disables the
    #: daemon's channel-state logging, which the vcl-logging monitor must
    #: catch as an incomplete cut (never disable outside tests)
    logging_enabled = True

    def __init__(self, *args, scheduler_node: "Node" = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if scheduler_node is None:
            raise ValueError("VclProtocol needs a scheduler_node")
        self.scheduler = VclScheduler(self, scheduler_node)
        # wave-in-progress bookkeeping (_current_wave, _wave_committed)
        # lives in BaseProtocol so detach() can record aborted waves
        self._acks_from: Set[int] = set()

    def install(self) -> None:
        self.endpoints = [VclEndpoint(self, rank) for rank in range(self.job.size)]
        for rank, endpoint in enumerate(self.endpoints):
            self.job.channels[rank].protocol = endpoint
        self.scheduler.connect_all()
        self._driver = self.sim.process(self._drive(), name="vcl:scheduler")

    def _drive(self):
        wave = self.start_wave
        while True:
            try:
                yield self._arm_timer()
            except Interrupt:
                return
            if self.job.completed.triggered or self.job.killed:
                return
            committed = self._begin_wave(wave)
            self._acks_from = set()
            self.scheduler.broadcast_markers(wave)
            try:
                yield committed
            except Interrupt:
                return
            wave += 1

    def on_rank_ack(self, rank: int, wave: int) -> None:
        """Endpoint-local wave done.  Rank endpoints report in-process (the
        ack message cost is modelled by the log/image acks that precede it)."""
        if wave != self._current_wave or self.detached:
            return
        self._acks_from.add(rank)
        if len(self._acks_from) == self.job.size:
            self._commit_servers(wave)
            self._record_wave(wave, self._wave_started_at)
            if self._wave_committed is not None and not self._wave_committed.triggered:
                self._wave_committed.succeed()
