"""ULFM-style failure-set membership agreement.

Survivor-based recovery (``spare``/``shrink`` policies) cannot act the
instant one socket closes: different survivors notice different closures at
different times, and a cascading failure can widen the failed set while the
first recovery is still being decided.  Acting on a partial view would let
two survivors recover toward two different worlds.

:class:`MembershipTracker` reproduces the shape of ULFM's
``MPIX_Comm_agree`` on top of the simulator's socket-closure detection:

1. **Suspicion** — every ``job.socket_closed`` signal lands in
   :meth:`observe`; a suspicion window (a small multiple of the fabric
   latency) lets near-simultaneous closures coalesce into one round.
2. **Ballots** — the lowest-ranked survivor proposes the failed set it can
   prove (ranks whose channel is down or whose machine is dead); one round
   trip later every survivor acknowledges.  If the view changed while the
   ballot was in flight (a cascading kill), the ballot fails and a new one
   starts with a higher number.
3. **Commit** — when a ballot completes with an unchanged view, every
   survivor commits the same failed set (``ft.membership_commit`` per rank);
   only then may the recovery policy act.  After ``max_ballots`` unstable
   rounds the current view is committed anyway — agreement must terminate,
   and the recovery path re-checks liveness before relaunching.

The tracker is deterministic: rounds are timed off the fabric latency, no
randomness, and the commit records carry the ballot number so the
``membership-agreement`` monitor can check that no survivor ever acts on a
set that differs from what the round proposed.
"""

from __future__ import annotations

from typing import List, Set, Tuple

__all__ = ["MembershipTracker"]

#: one propose + one acknowledge traversal per ballot
_BALLOT_ROUND_TRIPS = 2.0


class MembershipTracker:
    """Drives one failure-set agreement round among the survivors."""

    def __init__(
        self,
        sim: "Simulator",
        job: "MPIJob",
        latency: float,
        ballot_start: int = 1,
        max_ballots: int = 4,
        suspicion_window: float = None,
    ) -> None:
        self.sim = sim
        self.job = job
        self.latency = latency
        self.ballot_start = ballot_start
        self.max_ballots = max_ballots
        #: coalescing delay before the first ballot; defaults to one round
        #: trip so simultaneous socket closures land in the same proposal
        self.suspicion_window = (
            2.0 * latency if suspicion_window is None else suspicion_window
        )
        #: set by observe() while a ballot is in flight; dirties the ballot
        self._dirty = False
        #: ranks reported via socket closures (the suspicion seed; the
        #: proposal itself is re-derived from ground truth each ballot)
        self.suspected: Set[int] = set()
        #: when the suspicion window closed (detect/agree phase boundary)
        self.window_closed_at: float = sim.now

    # -------------------------------------------------------------- suspicion
    def observe(self, rank: int, peer) -> None:
        """Fold one socket-closure signal into the pending agreement."""
        if rank not in self.suspected:
            self.suspected.add(rank)
            self._dirty = True
            trace = self.sim.trace
            if trace.wants("ft.suspect"):
                trace.record(self.sim.now, "ft.suspect", rank=rank,
                             peer=peer if peer is not None else -1)

    def _failed_now(self) -> Tuple[int, ...]:
        """The provable failed set: dead channel or dead machine."""
        job = self.job
        return tuple(sorted(
            rank for rank in range(job.size)
            if job.channels[rank].down or not job.endpoints[rank].node.alive
        ))

    # -------------------------------------------------------------- agreement
    def agree(self):
        """Run ballots until the failed set holds still; returns
        ``(failed, survivors, ballot)``.  Generator — drive as a process."""
        sim = self.sim
        trace = self.sim.trace
        if self.suspicion_window > 0.0:
            yield sim.timeout(self.suspicion_window)
        self.window_closed_at = sim.now
        ballot = self.ballot_start
        last = self.ballot_start + self.max_ballots - 1
        while True:
            failed = self._failed_now()
            survivors = [r for r in range(self.job.size) if r not in failed]
            coordinator = survivors[0] if survivors else -1
            if trace.wants("ft.membership_round"):
                trace.record(sim.now, "ft.membership_round", ballot=ballot,
                             coordinator=coordinator, failed=failed,
                             survivors=len(survivors))
            self._dirty = False
            yield sim.timeout(_BALLOT_ROUND_TRIPS * self.latency)
            stable = not self._dirty and failed == self._failed_now()
            if stable or ballot >= last:
                if not stable:
                    # Forced commit after max_ballots: re-propose the final
                    # view so the committed set matches a round's proposal.
                    ballot += 1
                    failed = self._failed_now()
                    survivors = [r for r in range(self.job.size)
                                 if r not in failed]
                    coordinator = survivors[0] if survivors else -1
                    if trace.wants("ft.membership_round"):
                        trace.record(sim.now, "ft.membership_round",
                                     ballot=ballot, coordinator=coordinator,
                                     failed=failed, survivors=len(survivors))
                if trace.wants("ft.membership_commit"):
                    for rank in survivors:
                        trace.record(sim.now, "ft.membership_commit",
                                     rank=rank, ballot=ballot, failed=failed)
                return failed, survivors, ballot
            ballot += 1
