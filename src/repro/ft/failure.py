"""Failure injection.

The paper emulates failures by killing the MPI *task*, not the operating
system (Sec. 4.1): the TCP connections break as soon as the task dies, so
detection is immediate, and the machine — including the local checkpoint
file on its disk — survives.  :meth:`FailureInjector.kill_task` reproduces
that.  :meth:`FailureInjector.kill_node` additionally takes the machine (and
its local images) down, for the spare-node recovery path.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["FailureInjector"]


class FailureInjector:
    """Schedules and executes process/node failures."""

    def __init__(self, sim: "Simulator", net: "BaseNetwork",
                 local_images: Optional["LocalImageStore"] = None) -> None:
        self.sim = sim
        self.net = net
        self.local_images = local_images
        self.kills: list = []

    # ------------------------------------------------------------ immediate
    def kill_task(self, job: "MPIJob", rank: int) -> None:
        """Kill one MPI process now.  Its sockets close; peers notice."""
        if job.killed or not (0 <= rank < job.size):
            return
        self.sim.trace.record(self.sim.now, "ft.failure", kind="task", rank=rank)
        self.kills.append((self.sim.now, "task", rank))
        channel = job.channels[rank]
        endpoint_protocol = channel.protocol
        channel.shutdown()  # breaks every socket of this task
        if endpoint_protocol is not None:
            server_end = getattr(endpoint_protocol, "_server_end", None)
            if server_end is not None:
                server_end.connection.break_()
            endpoint_protocol.detach()
        job.app_processes[rank].interrupt("task killed")
        # The runtime (dispatcher / process manager) holds a monitoring
        # socket to every process from launch, so the death is detected
        # even if no peer ever connected to this rank (Sec. 4.1: "failure
        # detection was immediate").
        job.notify_socket_closed(rank, None)

    def kill_node(self, job: "MPIJob", rank: int) -> None:
        """Kill the whole machine hosting ``rank`` (disk contents lost)."""
        if job.killed or not (0 <= rank < job.size):
            return
        node = job.endpoints[rank].node
        self.sim.trace.record(self.sim.now, "ft.failure", kind="node", node=node.name)
        self.kills.append((self.sim.now, "node", rank))
        if self.local_images is not None:
            self.local_images.drop_node(node.name)
        # every rank on that node dies
        for r, endpoint in enumerate(job.endpoints):
            if endpoint.node is node:
                self.kill_task(job, r)
        self.net.fail_node(node)

    # ------------------------------------------------------------- scheduled
    def schedule_task_kill(self, job: "MPIJob", rank: int, at: float) -> None:
        delay = at - self.sim.now
        if delay < 0:
            raise ValueError(f"kill time {at} is in the past")
        self.sim.call_at(delay, self.kill_task, job, rank)

    def schedule_node_kill(self, job: "MPIJob", rank: int, at: float) -> None:
        delay = at - self.sim.now
        if delay < 0:
            raise ValueError(f"kill time {at} is in the past")
        self.sim.call_at(delay, self.kill_node, job, rank)
