"""Failure injection.

The paper emulates failures by killing the MPI *task*, not the operating
system (Sec. 4.1): the TCP connections break as soon as the task dies, so
detection is immediate, and the machine — including the local checkpoint
file on its disk — survives.  :meth:`FailureInjector.kill_task` reproduces
that.  :meth:`FailureInjector.kill_node` additionally takes the machine (and
its local images) down, for the spare-node recovery path.

The storage tier fails too: :meth:`FailureInjector.kill_server` takes a
checkpoint-server machine down (its stored replicas die with it), and
:meth:`FailureInjector.corrupt_image` silently damages one stored replica —
the corruption surfaces only when a restore verifies the checksum, like
latent media corruption.

Every executed injection is appended to :attr:`FailureInjector.kills` as a
typed :class:`KillRecord`, which chaos reports surface verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

__all__ = ["FailureInjector", "KillRecord"]


@dataclass(frozen=True)
class KillRecord:
    """One executed fault injection.

    ``kind`` is ``task``/``node``/``server``/``corrupt``; ``target`` is the
    victim rank for task and node kills, the server name for server kills,
    and a ``(server, rank, wave)`` triple for corruptions.
    """

    time: float
    kind: str
    target: Any

    def as_dict(self) -> dict:
        target = list(self.target) if isinstance(self.target, tuple) \
            else self.target
        return {"time": self.time, "kind": self.kind, "target": target}


class FailureInjector:
    """Schedules and executes process/node failures."""

    def __init__(self, sim: "Simulator", net: "BaseNetwork",
                 local_images: Optional["LocalImageStore"] = None) -> None:
        self.sim = sim
        self.net = net
        self.local_images = local_images
        self.kills: List[KillRecord] = []

    # ------------------------------------------------------------ immediate
    def kill_task(self, job: "MPIJob", rank: int) -> None:
        """Kill one MPI process now.  Its sockets close; peers notice."""
        if job.killed or not (0 <= rank < job.size):
            return
        self.sim.trace.record(self.sim.now, "ft.failure", kind="task", rank=rank)
        self.kills.append(KillRecord(self.sim.now, "task", rank))
        channel = job.channels[rank]
        endpoint_protocol = channel.protocol
        channel.shutdown()  # breaks every socket of this task
        if endpoint_protocol is not None:
            server_ends = getattr(endpoint_protocol, "_server_ends", None)
            if server_ends is None:
                server_end = getattr(endpoint_protocol, "_server_end", None)
                server_ends = [server_end] if server_end is not None else []
            for server_end in server_ends:
                if server_end is not None:
                    server_end.connection.break_()
            endpoint_protocol.detach()
        job.app_processes[rank].interrupt("task killed")
        # The runtime (dispatcher / process manager) holds a monitoring
        # socket to every process from launch, so the death is detected
        # even if no peer ever connected to this rank (Sec. 4.1: "failure
        # detection was immediate").
        job.notify_socket_closed(rank, None)

    def kill_node(self, job: "MPIJob", rank: int,
                  node: Optional["Node"] = None) -> None:
        """Kill the whole machine hosting ``rank`` (disk contents lost).

        The machine dies even when the job is already down — a kill landing
        inside an in-progress recovery must still take the node, its local
        images and its connections with it, or the relaunch would happily
        target a dead machine.  Only the per-task teardown is skipped for a
        killed job (those processes are already gone).  ``node`` overrides
        the victim machine (the caller's current endpoint placement may
        differ from the dying incarnation's after a spare promotion).
        """
        if not (0 <= rank < job.size):
            return
        if node is None:
            node = job.endpoints[rank].node
        if not node.alive:
            return
        self.sim.trace.record(self.sim.now, "ft.failure", kind="node", node=node.name)
        self.kills.append(KillRecord(self.sim.now, "node", rank))
        if self.local_images is not None:
            self.local_images.drop_node(node.name)
        # every rank on that node dies
        for r, endpoint in enumerate(job.endpoints):
            if endpoint.node is node:
                self.kill_task(job, r)
        self.net.fail_node(node)

    def kill_server(self, server: "CheckpointServer") -> None:
        """Kill a checkpoint-server machine.

        Every connection touching it breaks (in-flight uploads and fetches
        fail over to the surviving replicas), its receiver processes stop,
        and the replicas stored on it are gone.  The compute job itself does
        not die — storage loss only matters at the next wave or restart.
        """
        if not server.node.alive:
            return
        self.sim.trace.record(self.sim.now, "ft.failure", kind="server",
                              server=server.name, node=server.node.name)
        self.kills.append(KillRecord(self.sim.now, "server", server.name))
        server.shutdown()
        self.net.fail_node(server.node)

    def corrupt_image(self, server: "CheckpointServer", rank: int,
                      wave: Optional[int] = None) -> None:
        """Silently corrupt ``rank``'s stored replica on ``server``.

        Targets the newest *committed* wave by default (the one a restore
        would fetch), falling back to the newest stored wave; a no-op when
        the server holds nothing for the rank.
        """
        if wave is None:
            if rank in server.storage.get(server.committed_wave, {}):
                wave = server.committed_wave
            else:
                waves = [w for w in sorted(server.storage, reverse=True)
                         if rank in server.storage[w]]
                wave = waves[0] if waves else server.committed_wave
        image = server.storage.get(wave, {}).get(rank)
        if image is None:
            return
        image.corrupt()
        self.sim.trace.record(self.sim.now, "ft.image_corrupted",
                              server=server.name, rank=rank, wave=wave)
        self.kills.append(
            KillRecord(self.sim.now, "corrupt", (server.name, rank, wave)))

    # ------------------------------------------------------------- scheduled
    def schedule_task_kill(self, job: "MPIJob", rank: int, at: float) -> None:
        delay = at - self.sim.now
        if delay < 0:
            raise ValueError(f"kill time {at} is in the past")
        self.sim.call_at(delay, self.kill_task, job, rank)

    def schedule_node_kill(self, job: "MPIJob", rank: int, at: float) -> None:
        delay = at - self.sim.now
        if delay < 0:
            raise ValueError(f"kill time {at} is in the past")
        self.sim.call_at(delay, self.kill_node, job, rank)
