"""Dcl: coordinated message-drain checkpointing (counter quiescence).

A third protocol family next to the paper's two: instead of flushing every
channel pairwise with markers (Pcl) or logging in-transit messages at the
daemon (Vcl), Dcl *drains* the network — the topological-sort / Collective
Vector Clock idiom (arXiv:2408.02218, arXiv:2212.05701).  Wave life cycle:

1. Rank 0 starts a wave after ``period`` seconds, enters the ``draining``
   state and broadcasts a drain request to every other process.
2. On the request, a process stops injecting new application sends (send
   gates / the Nemesis stopper — exactly Pcl's machinery) and reports its
   cumulative *committed-send* and *receive* counters to rank 0.  Every
   application packet that still arrives while draining bumps the receive
   counter and triggers a fresh report.
3. Rank 0 declares **counter quiescence** once every rank has reported and
   the reported sends equal the reported receives.  Because sends are
   frozen after a rank's report, the send total is exact and the receive
   total can only grow toward it: equality is reached exactly when the last
   in-flight message arrived — the network is empty.  No per-channel
   markers, no delayed-receive queues, no message logging.
4. Rank 0 then orders the checkpoint: every process forks, streams its
   image to the checkpoint server (replication/quorum as usual) and resumes;
   rank 0 commits the wave once all images are acknowledged.

Because no application message is in flight at fork time, the set of local
images alone is a consistent global state — the ``dcl-network-empty``
monitor (:mod:`repro.verify.monitors`) checks precisely this, and the
``dcl-drain-liveness`` monitor checks that quiescence lands within
:data:`DRAIN_BUDGET` of the wave start.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.ft.image import CheckpointImage
from repro.ft.protocol import BaseEndpoint, BaseProtocol
from repro.mpi.channels.nemesis import NemesisChannel
from repro.mpi.message import (
    CheckpointDonePacket,
    DrainCountPacket,
    DrainGoPacket,
    MarkerPacket,
    MARKER_BYTES,
    Packet,
)
from repro.sim.process import Interrupt

__all__ = ["DclProtocol", "DclEndpoint", "DRAIN_BUDGET"]

#: simulated seconds a drain may take from ``ft.wave_started`` to counter
#: quiescence before the ``dcl-drain-liveness`` monitor calls it stalled.
#: Shared between the protocol docs and the monitor (the same pattern as
#: the engine watchdog's budget) so the two never disagree.
DRAIN_BUDGET = 30.0

_COUNT_BYTES = 64.0
_DONE_BYTES = 64.0


class DclEndpoint(BaseEndpoint):
    """Rank-side state machine of the message-drain protocol."""

    def __init__(self, protocol: "DclProtocol", rank: int) -> None:
        super().__init__(protocol, rank)
        self.state = "normal"
        self.wave = 0
        #: cumulative application sends committed to the wire (see
        #: :meth:`on_app_sent`: counted at the commit point, not at seq
        #: assignment — a packet parked at a closed gate was not sent)
        self.sent = 0
        #: cumulative application packets that arrived at the channel
        self.recvd = 0
        self._entered_at = 0.0
        self._report_dirty = False
        self._reporting = False
        self._local_pending = False

    # ------------------------------------------------------------ drain entry
    def enter_drain(self, wave: int) -> None:
        if self.state == "draining" or wave <= self.wave:
            return
        self.state = "draining"
        self.wave = wave
        self._entered_at = self.sim.now
        self.protocol.note_phase("enter", wave)
        if self.sim.trace.wants("ft.drain_open"):
            self.sim.trace.record(self.sim.now, "ft.drain_open",
                                  rank=self.rank, wave=wave,
                                  sent=self.sent, recvd=self.recvd)
        others = [r for r in range(self.job.size) if r != self.rank]
        # Freeze new sends before anything else: a commit after the report
        # would make the reported send total stale (see on_app_sent).
        if self.protocol.drain_gating_enabled:
            if isinstance(self.channel, NemesisChannel):
                self.channel.enqueue_stopper()
            else:
                self.channel.close_send_gates(others)
        if self.rank == 0 and others:
            self._spawn(
                self._broadcast(others, lambda dst: MarkerPacket(0, wave),
                                MARKER_BYTES, count_markers=True),
                f"dcl:drain-req:r{self.rank}")
        self._counters_changed()

    def _broadcast(self, others, make_packet, nbytes, count_markers=False):
        for dst in others:
            try:
                yield from self.channel.send_control(dst, make_packet(dst),
                                                     nbytes)
            except ConnectionError:
                return  # mid-wave failure: recovery will discard this wave
            if count_markers:
                self.protocol.stats.markers_sent += 1

    # ------------------------------------------------------- counter reports
    def _counters_changed(self) -> None:
        """Push the current counters to the initiator (coalesced)."""
        if self.state != "draining":
            return
        if self.rank == 0:
            # Deferred one heap event: if the triggering packet is still in
            # ``handle_packet``, it must reach the matching engine *before*
            # quiescence can order a snapshot, or the message would be
            # counted as received yet missing from the image.
            if not self._local_pending:
                self._local_pending = True
                self.sim.call_at(0.0, self._local_report, self.wave)
        else:
            self._report_dirty = True
            if not self._reporting:
                self._reporting = True
                self._spawn(self._reporter(self.wave),
                            f"dcl:report:r{self.rank}")

    def _local_report(self, wave: int) -> None:
        self._local_pending = False
        if (self.state != "draining" or self.wave != wave
                or self.protocol.detached):
            return
        self.protocol.on_rank_count(0, wave, self.sent, self.recvd)

    def _reporter(self, wave: int):
        """Single in-flight report per rank; re-sends while counters move."""
        while (self.state == "draining" and self.wave == wave
               and not self.protocol.detached):
            self._report_dirty = False
            packet = DrainCountPacket(self.rank, wave, self.sent, self.recvd)
            try:
                yield from self.channel.send_control(0, packet, _COUNT_BYTES)
            except ConnectionError:
                break
            if not self._report_dirty:
                break
        self._reporting = False

    # ---------------------------------------------------------------- events
    def on_app_sent(self, packet, dst: int) -> None:
        self.sent += 1
        self._counters_changed()

    def on_app_packet(self, packet) -> None:
        self.recvd += 1
        self._counters_changed()

    def on_control(self, packet: Packet) -> None:
        if isinstance(packet, MarkerPacket):
            # the drain request doubles as the wave marker
            self.enter_drain(packet.wave)
            if packet.wave != self.wave:
                return  # stale request from an aborted wave
            if self.sim.trace.wants("ft.marker_recv"):
                self.sim.trace.record(
                    self.sim.now, "ft.marker_recv", rank=self.rank,
                    src=packet.src, wave=packet.wave, protocol="dcl",
                )
        elif isinstance(packet, DrainCountPacket):
            self.protocol.on_rank_count(packet.src, packet.wave,
                                        packet.sent, packet.recvd)
        elif isinstance(packet, DrainGoPacket):
            if packet.wave == self.wave and self.state == "draining":
                self._take_checkpoint()
        elif isinstance(packet, CheckpointDonePacket):
            self.protocol.on_rank_done(packet.src, packet.wave)

    # ------------------------------------------------------------ checkpoint
    def _take_checkpoint(self) -> None:
        # the network is empty: the local snapshot needs no channel state
        self.protocol.note_phase("flushed", self.wave)
        snapshot = self.context.take_snapshot(self.wave)
        # fork() suspends the whole process briefly
        self.context.add_stall(self.protocol.fork_latency)
        self.sim.trace.record(
            self.sim.now, "ft.local_checkpoint", rank=self.rank,
            wave=self.wave, protocol="dcl",
        )
        self._spawn(self._resume(), f"dcl:resume:r{self.rank}")
        self._spawn(self._store_and_notify(snapshot), f"dcl:store:r{self.rank}")

    def _resume(self):
        """After the fork pause, reopen the gates and resume computing."""
        yield self.sim.timeout(self.protocol.fork_latency)
        self.state = "normal"
        if self.sim.trace.wants("ft.resume"):
            self.sim.trace.record(self.sim.now, "ft.resume",
                                  rank=self.rank, wave=self.wave)
        if isinstance(self.channel, NemesisChannel):
            self.channel.dequeue_stopper()
        self.channel.open_send_gates()
        blocked = self.sim.now - self._entered_at
        self.protocol.stats.blocked_seconds += blocked
        if self.sim.metrics is not None:
            self.sim.metrics.observe("ft.rank_blocked_seconds", blocked,
                                     protocol="dcl", rank=self.rank)

    def _store_and_notify(self, snapshot):
        image = CheckpointImage(self.rank, snapshot.wave, snapshot.image_bytes,
                                snapshot)
        try:
            yield from self._store_image(image)
        except ConnectionError:
            return  # failure mid-transfer; the wave will never commit
        if self.rank == 0:
            self.protocol.on_rank_done(0, image.wave)
        else:
            try:
                yield from self.channel.send_control(
                    0, CheckpointDonePacket(self.rank, image.wave), _DONE_BYTES
                )
            except ConnectionError:
                return


class DclProtocol(BaseProtocol):
    """Coordinated message-drain checkpointing (counter quiescence)."""

    protocol_name = "dcl"

    #: the drain wave adds its own phase between the request broadcast and
    #: the channel-empty snapshot; see BaseProtocol._emit_phases
    wave_phase_milestones = (
        ("markers", "enter"),
        ("drain", "drained"),
        ("flush", "flushed"),
        ("stream", "stored"),
    )

    #: test-only knob for repro.verify: setting this False lets application
    #: sends commit while draining, so stale counter reports can declare
    #: quiescence with messages still in flight — the dcl-network-empty
    #: monitor must catch both (never disable outside tests)
    drain_gating_enabled = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: rank -> (sent, recvd), the latest report of the open wave
        self._counts: Dict[int, Tuple[int, int]] = {}
        self._done_from: Set[int] = set()
        self._quiesced = False

    def install(self) -> None:
        self.endpoints = [DclEndpoint(self, rank)
                          for rank in range(self.job.size)]
        for rank, endpoint in enumerate(self.endpoints):
            self.job.channels[rank].protocol = endpoint
        self._driver = self.sim.process(self._drive(), name="dcl:driver")

    def _drive(self):
        """Rank 0's wave initiation loop."""
        wave = self.start_wave
        while True:
            try:
                yield self._arm_timer()
            except Interrupt:
                return
            if self.job.completed.triggered or self.job.killed:
                return
            committed = self._begin_wave(wave)
            self._counts = {}
            self._done_from = set()
            self._quiesced = False
            self.endpoints[0].enter_drain(wave)
            try:
                yield committed
            except Interrupt:
                return
            wave += 1

    # ------------------------------------------------------------ quiescence
    def on_rank_count(self, rank: int, wave: int, sent: int, recvd: int) -> None:
        """A rank's counter report (message to rank 0, or rank 0's own)."""
        if wave != self._current_wave or self.detached or self._quiesced:
            return
        self._counts[rank] = (sent, recvd)
        if len(self._counts) < self.job.size:
            return
        total_sent = sum(s for s, _r in self._counts.values())
        total_recvd = sum(r for _s, r in self._counts.values())
        if total_sent != total_recvd:
            return  # messages still in flight; a fresh report will follow
        self._quiesced = True
        self.note_phase("drained", wave)
        elapsed = self.sim.now - self._wave_started_at
        self.sim.trace.record(
            self.sim.now, "ft.drain_quiesced", wave=wave,
            sent=total_sent, recvd=total_recvd, elapsed=elapsed,
            protocol=self.protocol_name,
        )
        if self.sim.metrics is not None:
            self.sim.metrics.observe("ft.drain_seconds", elapsed,
                                     protocol=self.protocol_name)
        initiator = self.endpoints[0]
        others = [r for r in range(self.job.size) if r != 0]
        if others:
            initiator._spawn(
                initiator._broadcast(others, lambda dst: DrainGoPacket(0, wave),
                                     MARKER_BYTES),
                "dcl:go:r0")
        initiator._take_checkpoint()

    def on_rank_done(self, rank: int, wave: int) -> None:
        """A rank's image is stored (message to rank 0)."""
        if wave != self._current_wave or self.detached:
            return
        self._done_from.add(rank)
        if len(self._done_from) == self.job.size:
            self._commit_servers(wave)
            self._record_wave(wave, self._wave_started_at)
            if self._wave_committed is not None and not self._wave_committed.triggered:
                self._wave_committed.succeed()
