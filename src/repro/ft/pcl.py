"""Pcl: the blocking coordinated checkpointing protocol (Sec. 3, Fig. 2).

Wave life cycle, exactly as the paper describes it:

1. The MPI process of rank 0 starts a wave after ``period`` seconds have
   elapsed since the previous wave's images were all stored; it moves to the
   ``checkpointing`` state and sends markers to every other process.
2. On its first marker, a process enters ``checkpointing`` and sends markers
   to every other process.  After *sending* a marker on a channel, it sends
   no further application message on that channel until its checkpoint
   (send gates / the Nemesis stopper request); after *receiving* a marker on
   a channel, application receptions from it are delayed until the end of
   the local checkpoint (receive freezing with a delayed queue).
3. Once a process holds markers from every other process, the channels are
   flushed: it takes its snapshot (no channel state needs saving), forks,
   and — after the fork pause — reopens its gates, delivers its delayed
   queue and resumes computing while the clone streams the image to the
   checkpoint server concurrently with the resumed application traffic
   (this contention is the Fig. 5 effect).
4. When a process's image is stored it notifies rank 0; rank 0 commits the
   wave on every checkpoint server once all notifications arrived, and only
   then starts the timer for the next wave.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.ft.image import CheckpointImage
from repro.ft.protocol import BaseEndpoint, BaseProtocol
from repro.mpi.channels.nemesis import NemesisChannel
from repro.mpi.message import (
    CheckpointDonePacket,
    MarkerPacket,
    MARKER_BYTES,
    Packet,
)
from repro.sim.process import Interrupt

__all__ = ["PclProtocol", "PclEndpoint"]

_DONE_BYTES = 64.0


class PclEndpoint(BaseEndpoint):
    """Rank-side state machine of the blocking protocol."""

    def __init__(self, protocol: "PclProtocol", rank: int) -> None:
        super().__init__(protocol, rank)
        self.state = "normal"
        self.wave = 0
        self._markers_from: Set[int] = set()
        self._entered_at = 0.0

    # ------------------------------------------------------------ wave entry
    def enter_wave(self, wave: int) -> None:
        if self.state == "checkpointing" or wave <= self.wave:
            return
        self.state = "checkpointing"
        self.wave = wave
        self._markers_from = set()
        self._entered_at = self.sim.now
        self.protocol.note_phase("enter", wave)
        if self.sim.trace.wants("ft.enter_wave"):
            self.sim.trace.record(self.sim.now, "ft.enter_wave",
                                  rank=self.rank, wave=wave)
        others = [r for r in range(self.job.size) if r != self.rank]
        # Freeze sends *before* the markers go out: anything already queued
        # precedes the marker (FIFO); nothing may follow it.
        if self.protocol.channel_gating_enabled:
            if isinstance(self.channel, NemesisChannel):
                self.channel.enqueue_stopper()
            else:
                self.channel.close_send_gates(others)
        if others:
            self._spawn(self._send_markers(others, wave),
                        f"pcl:markers:r{self.rank}")
        else:
            self._take_checkpoint()

    def _send_markers(self, others, wave: int):
        for dst in others:
            try:
                yield from self.channel.send_control(
                    dst, MarkerPacket(self.rank, wave), MARKER_BYTES
                )
            except ConnectionError:
                return  # mid-wave failure: recovery will discard this wave
            self.protocol.stats.markers_sent += 1

    # ---------------------------------------------------------------- events
    def on_control(self, packet: Packet) -> None:
        if isinstance(packet, MarkerPacket):
            self.enter_wave(packet.wave)
            if packet.wave != self.wave:
                return  # stale marker from an aborted wave
            if self.sim.trace.wants("ft.marker_recv"):
                self.sim.trace.record(
                    self.sim.now, "ft.marker_recv", rank=self.rank,
                    src=packet.src, wave=packet.wave, protocol="pcl",
                )
            if self.protocol.channel_gating_enabled:
                self.channel.freeze_source(packet.src)
            self._markers_from.add(packet.src)
            if len(self._markers_from) == self.job.size - 1:
                self._take_checkpoint()
        elif isinstance(packet, CheckpointDonePacket):
            self.protocol.on_rank_done(packet.src, packet.wave)

    # ------------------------------------------------------------ checkpoint
    def _take_checkpoint(self) -> None:
        # this rank holds every marker: its channels are flushed
        self.protocol.note_phase("flushed", self.wave)
        snapshot = self.context.take_snapshot(self.wave)
        # fork() suspends the whole process briefly
        self.context.add_stall(self.protocol.fork_latency)
        self.sim.trace.record(
            self.sim.now, "ft.local_checkpoint", rank=self.rank,
            wave=self.wave, protocol="pcl",
        )
        self._spawn(self._resume(), f"pcl:resume:r{self.rank}")
        self._spawn(self._store_and_notify(snapshot), f"pcl:store:r{self.rank}")

    def _resume(self):
        """After the fork pause, unfreeze and deliver the delayed queue."""
        yield self.sim.timeout(self.protocol.fork_latency)
        self.state = "normal"
        if self.sim.trace.wants("ft.resume"):
            self.sim.trace.record(self.sim.now, "ft.resume",
                                  rank=self.rank, wave=self.wave)
        if isinstance(self.channel, NemesisChannel):
            self.channel.dequeue_stopper()
        self.channel.open_send_gates()
        self.channel.thaw_sources()
        blocked = self.sim.now - self._entered_at
        self.protocol.stats.blocked_seconds += blocked
        if self.sim.metrics is not None:
            self.sim.metrics.observe("ft.rank_blocked_seconds", blocked,
                                     protocol="pcl", rank=self.rank)

    def _store_and_notify(self, snapshot):
        image = CheckpointImage(self.rank, snapshot.wave, snapshot.image_bytes, snapshot)
        try:
            yield from self._store_image(image)
        except ConnectionError:
            return  # failure mid-transfer; the wave will never commit
        if self.rank == 0:
            self.protocol.on_rank_done(0, image.wave)
        else:
            try:
                yield from self.channel.send_control(
                    0, CheckpointDonePacket(self.rank, image.wave), _DONE_BYTES
                )
            except ConnectionError:
                return


class PclProtocol(BaseProtocol):
    """Blocking coordinated checkpointing inside MPICH2 (MPICH2-Pcl)."""

    protocol_name = "pcl"

    #: test-only knob for repro.verify: setting this False disables the
    #: send gates / Nemesis stopper and the receive freezing, which the
    #: pcl-flush monitor must catch as payload crossing a flushed channel
    #: (never disable outside tests)
    channel_gating_enabled = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # wave-in-progress bookkeeping (_current_wave, _wave_committed)
        # lives in BaseProtocol so detach() can record aborted waves
        self._done_from: Set[int] = set()

    def install(self) -> None:
        self.endpoints = [PclEndpoint(self, rank) for rank in range(self.job.size)]
        for rank, endpoint in enumerate(self.endpoints):
            self.job.channels[rank].protocol = endpoint
        self._driver = self.sim.process(self._drive(), name="pcl:driver")

    def _drive(self):
        """Rank 0's wave initiation loop."""
        wave = self.start_wave
        while True:
            try:
                yield self._arm_timer()
            except Interrupt:
                return
            if self.job.completed.triggered or self.job.killed:
                return
            committed = self._begin_wave(wave)
            self._done_from = set()
            self.endpoints[0].enter_wave(wave)
            try:
                yield committed
            except Interrupt:
                return
            wave += 1

    def on_rank_done(self, rank: int, wave: int) -> None:
        """A rank's image is stored (message to rank 0)."""
        if wave != self._current_wave or self.detached:
            return
        self._done_from.add(rank)
        if len(self._done_from) == self.job.size:
            self._commit_servers(wave)
            self._record_wave(wave, self._wave_started_at)
            if self._wave_committed is not None and not self._wave_committed.triggered:
                self._wave_committed.succeed()
