"""Checkpoint-interval theory: Young/Daly periods and cost models.

The paper's conclusion: "Evaluating the MTTF (mean time to failure) of the
system can significantly improve performances, since the best value for the
checkpoint wave frequency is close to the MTTF, trying to make a checkpoint
just before every failure."  This module provides the classical first-order
analysis (Young 1974; Daly 2006) used to pick that frequency, plus an
analytic expected-completion model the MTTF experiment compares against
simulation.

Notation: ``C`` = time one checkpoint wave costs the application, ``R`` =
restart (rollback + redo) fixed cost, ``M`` = MTTF of the whole system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "young_period",
    "daly_period",
    "expected_completion",
    "optimal_period_numeric",
    "IntervalModel",
]


def young_period(mttf: float, checkpoint_cost: float) -> float:
    """Young's first-order optimum: ``sqrt(2 * C * M)``."""
    if mttf <= 0 or checkpoint_cost < 0:
        raise ValueError("mttf must be positive and cost non-negative")
    return math.sqrt(2.0 * checkpoint_cost * mttf)


def daly_period(mttf: float, checkpoint_cost: float) -> float:
    """Daly's higher-order refinement of Young's formula.

    ``sqrt(2 C M) * (1 + sqrt(C/(2M))/3 + (C/(2M))/9) - C`` for C < 2M,
    falling back to ``M`` otherwise (checkpointing constantly).
    """
    if mttf <= 0 or checkpoint_cost < 0:
        raise ValueError("mttf must be positive and cost non-negative")
    if checkpoint_cost >= 2.0 * mttf:
        return mttf
    ratio = math.sqrt(checkpoint_cost / (2.0 * mttf))
    return (
        math.sqrt(2.0 * checkpoint_cost * mttf)
        * (1.0 + ratio / 3.0 + (ratio * ratio) / 9.0)
        - checkpoint_cost
    )


def expected_completion(
    work: float,
    period: float,
    checkpoint_cost: float,
    restart_cost: float,
    mttf: float,
) -> float:
    """Expected wall time to finish ``work`` under exponential failures.

    First-order renewal model: each period of useful work costs
    ``period + C``; a failure (rate 1/M) loses on average half a period plus
    the restart.  Valid for ``period + C << M`` and good enough to locate the
    optimum, which is all the experiment needs.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    cycle = period + checkpoint_cost
    # fraction of time lost to failures: each failure (rate 1/M) costs the
    # restart plus on average half a cycle of redone work
    loss_fraction = (restart_cost + cycle / 2.0) / mttf
    efficiency = (period / cycle) * (1.0 - min(0.95, loss_fraction))
    if efficiency <= 0:  # pragma: no cover - clamped above
        return float("inf")
    return work / efficiency


def optimal_period_numeric(
    work: float,
    checkpoint_cost: float,
    restart_cost: float,
    mttf: float,
    lo: float = 1e-3,
    hi: float = None,
) -> float:
    """Golden-section minimization of :func:`expected_completion`."""
    hi = hi if hi is not None else 4.0 * mttf
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi

    def f(t: float) -> float:
        return expected_completion(work, t, checkpoint_cost, restart_cost, mttf)

    c = b - phi * (b - a)
    d = a + phi * (b - a)
    for _ in range(80):
        if f(c) < f(d):
            b = d
        else:
            a = c
        c = b - phi * (b - a)
        d = a + phi * (b - a)
    return (a + b) / 2.0


@dataclass(frozen=True)
class IntervalModel:
    """Bundle of the model inputs for one system configuration."""

    work: float
    checkpoint_cost: float
    restart_cost: float
    mttf: float

    def young(self) -> float:
        return young_period(self.mttf, self.checkpoint_cost)

    def daly(self) -> float:
        return daly_period(self.mttf, self.checkpoint_cost)

    def expected(self, period: float) -> float:
        return expected_completion(self.work, period, self.checkpoint_cost,
                                   self.restart_cost, self.mttf)

    def optimal(self) -> float:
        return optimal_period_numeric(self.work, self.checkpoint_cost,
                                      self.restart_cost, self.mttf)
