"""Shared protocol machinery: stats, endpoints, image storage.

Both protocols are built from the same pieces the paper's implementations
share (Sec. 4): the abstract checkpointing mechanism (fork + pipelined
local-disk write and network stream to the checkpoint server), the
acknowledgement plumbing, and per-wave bookkeeping.  The subclasses
(:mod:`repro.ft.pcl`, :mod:`repro.ft.vcl`) differ exactly where the paper's
protocols differ: when the local snapshot is taken, whether communication is
frozen, and whether in-transit messages are logged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ft.image import CheckpointImage, FORK_LATENCY
from repro.ft.server import CheckpointServer
from repro.mpi.context import Snapshot
from repro.mpi.message import Packet

__all__ = ["FTStats", "BaseProtocol", "BaseEndpoint", "SCHEDULER_ID", "LocalImageStore"]

#: pseudo-rank of the Vcl checkpoint scheduler on rank channels
SCHEDULER_ID = -100

_CONTROL_BYTES = 64.0


class FTStats:
    """Fault-tolerance counters that persist across job incarnations."""

    def __init__(self) -> None:
        self.waves_completed = 0
        #: (wave, start_time, completion_time)
        self.wave_records: List[Tuple[int, float, float]] = []
        self.logged_bytes = 0.0
        self.logged_messages = 0
        self.image_bytes_stored = 0.0
        self.blocked_seconds = 0.0
        self.markers_sent = 0
        self.failures = 0
        self.restarts = 0
        self.recovery_seconds = 0.0

    def wave_durations(self) -> List[float]:
        return [end - start for _w, start, end in self.wave_records]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FTStats waves={self.waves_completed} blocked={self.blocked_seconds:.2f}s "
            f"logged={self.logged_bytes / 1e6:.1f}MB restarts={self.restarts}>"
        )


class LocalImageStore:
    """Per-machine local checkpoint files, persistent across incarnations.

    Restarting on the same machine reads the image from local disk; restarting
    elsewhere must fetch it from the checkpoint server (Sec. 4.2's FTPM
    location database makes the same distinction).
    """

    def __init__(self) -> None:
        self._images: Dict[Tuple[str, int], CheckpointImage] = {}

    def put(self, node_name: str, rank: int, image: CheckpointImage) -> None:
        self._images[(node_name, rank)] = image

    def get(self, node_name: str, rank: int, wave: int) -> Optional[CheckpointImage]:
        image = self._images.get((node_name, rank))
        if image is not None and image.wave == wave:
            return image
        return None

    def drop_node(self, node_name: str) -> None:
        """A machine died: its local checkpoint files are gone."""
        for key in [k for k in self._images if k[0] == node_name]:
            del self._images[key]


class BaseEndpoint:
    """Per-rank protocol endpoint: server connection, image storage."""

    def __init__(self, protocol: "BaseProtocol", rank: int) -> None:
        self.protocol = protocol
        self.rank = rank
        self.job = protocol.job
        self.sim = protocol.sim
        self.channel = self.job.channels[rank]
        self.context = self.job.contexts[rank]
        self.endpoint = self.job.endpoints[rank]
        self.server: CheckpointServer = protocol.server_map[rank]
        self._server_end = None
        self._ack_waiters: Dict[Tuple[str, int], "Event"] = {}
        self._helpers: List["Process"] = []

    # ----------------------------------------------------------- plumbing
    def _spawn(self, generator, name: str) -> "Process":
        process = self.sim.process(generator, name=name)
        self._helpers.append(process)
        return process

    def _server_connection(self):
        if self._server_end is None:
            self._server_end = self.server.open_connection(self.endpoint)
            self._spawn(self._ack_loop(), f"ft:ack:r{self.rank}")
            self.protocol._connections.append(self._server_end.connection)
        return self._server_end

    def _ack_loop(self):
        end = self._server_end
        while True:
            try:
                message = yield end.recv()
            except ConnectionError:
                return
            if message[0] == "ack":
                _kind, what, _rank, wave = message
                waiter = self._ack_waiters.pop((what, wave), None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed()

    def _await_ack(self, what: str, wave: int) -> "Event":
        event = self.sim.event(name=f"ack:{what}:{wave}:r{self.rank}")
        self._ack_waiters[(what, wave)] = event
        return event

    # --------------------------------------------------------- image storage
    def _store_image(self, image: CheckpointImage):
        """Generator: fork, then pipeline the image to local disk and to the
        checkpoint server; completes when the server acknowledged."""
        yield self.sim.timeout(self.protocol.fork_latency)
        end = self._server_connection()
        disk_write = self.endpoint.node.disk.write(image.nbytes)
        ack = self._await_ack("image", image.wave)
        end.send(("image", self.rank, image.wave, image), nbytes=image.nbytes)
        # While the image streams, the channel taxes application messages
        # (progress-engine coupling; see BaseChannel.transfer_tax).
        self.channel.active_transfer_end = end
        try:
            yield ack
        finally:
            self.channel.active_transfer_end = None
        yield disk_write
        self.protocol.local_images.put(self.endpoint.node.name, self.rank, image)
        self.protocol.stats.image_bytes_stored += image.nbytes
        self.sim.trace.record(
            self.sim.now, "ft.image_stored",
            rank=self.rank, wave=image.wave, nbytes=image.nbytes,
        )

    def detach(self) -> None:
        for helper in self._helpers:
            helper.interrupt("protocol detached")
        self._helpers.clear()
        for waiter in self._ack_waiters.values():
            if not waiter.triggered:
                waiter.defused = True
                waiter.fail(ConnectionError("protocol detached"))
        self._ack_waiters.clear()

    # ------------------------------------------------- hooks for the channel
    def on_control(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_app_packet(self, packet) -> None:
        """Default: application packets need no protocol attention."""


class BaseProtocol:
    """One protocol instance per job incarnation."""

    #: human-readable protocol name for reports
    protocol_name = "base"

    def __init__(
        self,
        job: "MPIJob",
        server_map: Dict[int, CheckpointServer],
        period: float,
        stats: Optional[FTStats] = None,
        local_images: Optional[LocalImageStore] = None,
        start_wave: int = 1,
        fork_latency: float = FORK_LATENCY,
    ) -> None:
        if period <= 0:
            raise ValueError("checkpoint period must be positive")
        self.job = job
        self.sim = job.sim
        self.server_map = server_map
        self.period = period
        self.stats = stats if stats is not None else FTStats()
        self.local_images = local_images if local_images is not None else LocalImageStore()
        self.start_wave = start_wave
        self.fork_latency = fork_latency
        self.endpoints: List[BaseEndpoint] = []
        self.detached = False
        self._connections: List["Connection"] = []
        self._driver: Optional["Process"] = None
        self._wave_trigger: Optional["Event"] = None
        # Wave-in-progress bookkeeping shared by both drivers; the pending
        # ``_wave_committed`` event is what detach() inspects to tell an
        # aborted wave from a quiescent protocol.
        self._current_wave = 0
        self._wave_started_at = 0.0
        self._wave_committed: Optional["Event"] = None

    # ------------------------------------------------------- proactive waves
    def request_wave(self) -> None:
        """Trigger the next checkpoint wave immediately (conclusion of the
        paper: components observing a rising failure probability — e.g. a
        CPU temperature probe — should start a wave without waiting for the
        timer).  No-op while a wave is already in progress."""
        trigger = self._wave_trigger
        if trigger is not None and not trigger.triggered:
            trigger.succeed()
            self.sim.trace.record(self.sim.now, "ft.wave_requested",
                                  protocol=self.protocol_name)

    def _arm_timer(self):
        """Event for the driver: the period timeout or an early trigger."""
        self._wave_trigger = self.sim.event(name=f"{self.protocol_name}:trigger")
        return self.sim.any_of([self.sim.timeout(self.period),
                                self._wave_trigger])

    @property
    def servers(self) -> List[CheckpointServer]:
        seen: List[CheckpointServer] = []
        for server in self.server_map.values():
            if server not in seen:
                seen.append(server)
        return seen

    def install(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def detach(self) -> None:
        """Stop drivers and endpoint helpers; break protocol connections.

        Called when the job dies (failure) or completes.  Checkpoint servers
        and the stats object survive for the next incarnation.
        """
        if self.detached:
            return
        self.detached = True
        if self._wave_committed is not None and not self._wave_committed.triggered:
            # A wave was in flight when the job died or completed: it will
            # never commit.  Recording the abort closes the liveness ledger
            # (every ft.wave_started is matched by ft.wave_completed or
            # ft.wave_aborted — the wave-liveness monitor checks this).
            self.sim.trace.record(
                self.sim.now, "ft.wave_aborted",
                wave=self._current_wave, protocol=self.protocol_name,
            )
            self._wave_committed = None
        if self._driver is not None:
            self._driver.interrupt("protocol detached")
        for endpoint in self.endpoints:
            endpoint.detach()
        for channel in self.job.channels:
            if channel.protocol in self.endpoints:
                channel.protocol = None
        for connection in self._connections:
            connection.break_()
        self._connections.clear()

    def _record_wave(self, wave: int, started_at: float) -> None:
        self.stats.waves_completed += 1
        self.stats.wave_records.append((wave, started_at, self.sim.now))
        self.sim.trace.record(
            self.sim.now, "ft.wave_completed", wave=wave,
            duration=self.sim.now - started_at, protocol=self.protocol_name,
        )

    def _commit_servers(self, wave: int) -> None:
        for server in self.servers:
            server.commit(wave)
