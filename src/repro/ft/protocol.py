"""Shared protocol machinery: stats, endpoints, image storage.

Both protocols are built from the same pieces the paper's implementations
share (Sec. 4): the abstract checkpointing mechanism (fork + pipelined
local-disk write and network stream to the checkpoint server), the
acknowledgement plumbing, and per-wave bookkeeping.  The subclasses
(:mod:`repro.ft.pcl`, :mod:`repro.ft.vcl`) differ exactly where the paper's
protocols differ: when the local snapshot is taken, whether communication is
frozen, and whether in-transit messages are logged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ft.image import CheckpointImage, FORK_LATENCY
from repro.ft.server import CheckpointServer
from repro.mpi.context import Snapshot
from repro.mpi.message import Packet

__all__ = ["FTStats", "BaseProtocol", "BaseEndpoint", "SCHEDULER_ID", "LocalImageStore"]

#: pseudo-rank of the Vcl checkpoint scheduler on rank channels
SCHEDULER_ID = -100

_CONTROL_BYTES = 64.0


class FTStats:
    """Fault-tolerance counters that persist across job incarnations."""

    def __init__(self) -> None:
        self.waves_completed = 0
        #: (wave, start_time, completion_time)
        self.wave_records: List[Tuple[int, float, float]] = []
        self.logged_bytes = 0.0
        self.logged_messages = 0
        self.image_bytes_stored = 0.0
        self.blocked_seconds = 0.0
        self.markers_sent = 0
        self.failures = 0
        self.restarts = 0
        self.recovery_seconds = 0.0
        #: remote image fetches that failed and were retried on another
        #: replica or a later backoff round
        self.fetch_retries = 0
        #: restarts that had to fall back past the newest committed wave
        self.wave_fallbacks = 0
        #: spare-pool nodes promoted to replace dead machines
        self.spares_promoted = 0
        #: shrink recoveries (the job re-decomposed over the survivors)
        self.shrinks = 0
        #: survivor-policy recoveries that degraded to a full restart
        #: (spare-pool exhaustion, non-malleable app, cascading kills)
        self.policy_degradations = 0

    def wave_durations(self) -> List[float]:
        return [end - start for _w, start, end in self.wave_records]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FTStats waves={self.waves_completed} blocked={self.blocked_seconds:.2f}s "
            f"logged={self.logged_bytes / 1e6:.1f}MB restarts={self.restarts}>"
        )


class LocalImageStore:
    """Per-machine local checkpoint files, persistent across incarnations.

    Restarting on the same machine reads the image from local disk; restarting
    elsewhere must fetch it from the checkpoint server (Sec. 4.2's FTPM
    location database makes the same distinction).
    """

    def __init__(self) -> None:
        self._images: Dict[Tuple[str, int], CheckpointImage] = {}

    def put(self, node_name: str, rank: int, image: CheckpointImage) -> None:
        self._images[(node_name, rank)] = image

    def get(self, node_name: str, rank: int, wave: int) -> Optional[CheckpointImage]:
        image = self._images.get((node_name, rank))
        if image is not None and image.wave == wave:
            return image
        return None

    def drop_node(self, node_name: str) -> None:
        """A machine died: its local checkpoint files are gone."""
        for key in [k for k in self._images if k[0] == node_name]:
            del self._images[key]

    def waves(self) -> List[int]:
        """Distinct waves with at least one surviving local image."""
        return sorted({image.wave for image in self._images.values()})


class BaseEndpoint:
    """Per-rank protocol endpoint: server connections, image storage.

    With ``ckpt_replication == 1`` a rank talks to exactly one server and
    the code path is byte-for-byte the unreplicated protocol.  With K > 1
    the rank streams its image to all K assigned replicas concurrently
    (each stream is a real connection, so the extra NIC/uplink contention
    the replication costs is modelled, keeping Fig. 5 honest) and proceeds
    once a majority of the reachable replicas acknowledged.
    """

    #: whether the image message alone completes this protocol's upload
    #: (Vcl overrides: its log may still follow, so the server must not
    #: seal the record at image receipt)
    image_final = True

    def __init__(self, protocol: "BaseProtocol", rank: int) -> None:
        self.protocol = protocol
        self.rank = rank
        self.job = protocol.job
        self.sim = protocol.sim
        self.channel = self.job.channels[rank]
        self.context = self.job.contexts[rank]
        self.endpoint = self.job.endpoints[rank]
        self.server: CheckpointServer = protocol.server_map[rank]
        #: ordered replica servers; index 0 is the primary (== self.server)
        self.replicas: List[CheckpointServer] = protocol.replica_map[rank]
        self._server_ends: List[Optional["ConnectionEnd"]] = [None] * len(self.replicas)
        self._ack_waiters: Dict[Tuple[int, str, int], "Event"] = {}
        #: wave -> replica indices whose image upload was acknowledged
        self._acked_replicas: Dict[int, set] = {}
        self._helpers: List["Process"] = []

    @property
    def _server_end(self):
        """Primary-server connection end (back-compat accessor)."""
        return self._server_ends[0]

    # ----------------------------------------------------------- plumbing
    def _spawn(self, generator, name: str) -> "Process":
        process = self.sim.process(generator, name=name)
        self._helpers.append(process)
        return process

    def _server_connection(self, index: int = 0):
        if self._server_ends[index] is None:
            end = self.replicas[index].open_connection(self.endpoint)
            self._server_ends[index] = end
            suffix = "" if index == 0 else f":s{index}"
            self._spawn(self._ack_loop(index), f"ft:ack:r{self.rank}{suffix}")
            self.protocol._connections.append(end.connection)
        return self._server_ends[index]

    def _ack_loop(self, index: int = 0):
        end = self._server_ends[index]
        while True:
            try:
                message = yield end.recv()
            except ConnectionError:
                # The replica (or our own node) went away: fail this
                # replica's pending acks so quorum gates can re-count.
                for key in [k for k in self._ack_waiters if k[0] == index]:
                    waiter = self._ack_waiters.pop(key)
                    if not waiter.triggered:
                        waiter.defused = True
                        waiter.fail(ConnectionError("server connection lost"))
                return
            if message[0] == "ack":
                _kind, what, _rank, wave = message
                waiter = self._ack_waiters.pop((index, what, wave), None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed()

    def _await_ack(self, what: str, wave: int, index: int = 0) -> "Event":
        suffix = "" if index == 0 else f":s{index}"
        event = self.sim.event(name=f"ack:{what}:{wave}:r{self.rank}{suffix}")
        self._ack_waiters[(index, what, wave)] = event
        return event

    # --------------------------------------------------------- image storage
    def _store_image(self, image: CheckpointImage):
        """Generator: fork, then pipeline the image to local disk and to the
        checkpoint server replicas; completes when acknowledged (K=1) or
        when a majority of reachable replicas acknowledged (K>1)."""
        yield self.sim.timeout(self.protocol.fork_latency)
        if len(self.replicas) == 1:
            yield from self._upload_single(image)
        else:
            yield from self._upload_replicated(image)
        self.protocol.local_images.put(self.endpoint.node.name, self.rank, image)
        self.protocol.stats.image_bytes_stored += image.nbytes
        self.sim.trace.record(
            self.sim.now, "ft.image_stored",
            rank=self.rank, wave=image.wave, nbytes=image.nbytes,
        )
        self.protocol.note_phase("stored", image.wave)

    def _upload_single(self, image: CheckpointImage):
        end = self._server_connection()
        disk_write = self.endpoint.node.disk.write(image.nbytes)
        ack = self._await_ack("image", image.wave)
        end.send(("image", self.rank, image.wave, image, self.image_final),
                 nbytes=image.nbytes)
        # While the image streams, the channel taxes application messages
        # (progress-engine coupling; see BaseChannel.transfer_tax).
        self.channel.active_transfer_end = end
        try:
            yield ack
        finally:
            self.channel.active_transfer_end = None
        self._acked_replicas.setdefault(image.wave, set()).add(0)
        yield disk_write

    def _live_replica_ends(self, indices=None) -> List[Tuple[int, "ConnectionEnd"]]:
        """(index, connection end) for every reachable replica.

        ``indices`` restricts the candidates (e.g. to the replicas that
        acknowledged this wave's image); by default all replicas are tried.
        Connections are opened lazily, dead servers and broken connections
        are skipped.
        """
        candidates = range(len(self.replicas)) if indices is None else indices
        ends: List[Tuple[int, "ConnectionEnd"]] = []
        for index in candidates:
            if not self.replicas[index].node.alive:
                continue
            end = self._server_connection(index)
            if end.broken:
                continue
            ends.append((index, end))
        return ends

    def _replicated_send(self, what: str, wave: int, targets, message,
                         nbytes: float, on_ok=None) -> "Event":
        """Send ``message`` to every target replica; the returned gate event
        succeeds once a majority of the targets acknowledged and fails when
        enough replicas became unreachable that a majority is impossible.

        Majority of the replicas reachable *now*: a healthy K-replica set
        proceeds only with ceil((K+1)/2) copies — enough that any single
        server failure leaves the wave restorable — while an already
        degraded replica set can still make progress on what is left.
        """
        need = len(targets) // 2 + 1
        gate = self.sim.event(name=f"quorum:{what}:{wave}:r{self.rank}")
        state = {"ok": 0, "done": 0}

        def _on_ack(index: int):
            def callback(event: "Event") -> None:
                state["done"] += 1
                if event.ok:
                    state["ok"] += 1
                    if on_ok is not None:
                        on_ok(index)
                else:
                    # the gate is this transfer's consumer; a per-replica
                    # failure must not escape to the engine
                    event.defused = True
                if gate.triggered:
                    return
                if state["ok"] >= need:
                    gate.succeed()
                elif state["done"] == len(targets):
                    gate.fail(ConnectionError(
                        f"checkpoint replica quorum unreachable ({what})"))
            return callback

        for index, end in targets:
            ack = self._await_ack(what, wave, index)
            ack.callbacks.append(_on_ack(index))
            end.send(message, nbytes=nbytes)
        return gate

    def _upload_replicated(self, image: CheckpointImage):
        ends = self._live_replica_ends()
        if not ends:
            raise ConnectionError("no reachable checkpoint replica")
        disk_write = self.endpoint.node.disk.write(image.nbytes)
        acked = self._acked_replicas.setdefault(image.wave, set())
        gate = self._replicated_send(
            "image", image.wave, ends,
            ("image", self.rank, image.wave, image, self.image_final),
            nbytes=image.nbytes, on_ok=acked.add)
        # All K streams contend on this rank's uplink; the progress-engine
        # tax is charged once, keyed off the primary stream.
        self.channel.active_transfer_end = ends[0][1]
        try:
            yield gate
        finally:
            self.channel.active_transfer_end = None
        yield disk_write

    def detach(self) -> None:
        for helper in self._helpers:
            helper.interrupt("protocol detached")
        self._helpers.clear()
        for waiter in self._ack_waiters.values():
            if not waiter.triggered:
                waiter.defused = True
                waiter.fail(ConnectionError("protocol detached"))
        self._ack_waiters.clear()

    # ------------------------------------------------- hooks for the channel
    def on_control(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_app_packet(self, packet) -> None:
        """Default: application packets need no protocol attention."""

    def on_app_sent(self, packet, dst: int) -> None:
        """Called at the send *commit* point (payload on the wire or in the
        wave's channel state).  Default: no protocol attention; Dcl counts
        committed sends here for counter quiescence."""


class BaseProtocol:
    """One protocol instance per job incarnation."""

    #: human-readable protocol name for reports
    protocol_name = "base"

    #: ordered (phase name, milestone key) pairs that tile a committed wave
    #: between ``ft.wave_started`` and the commit; the trailing ``commit``
    #: phase (last milestone -> commit time) is implicit.  Subclasses insert
    #: protocol-specific phases (Dcl adds ``drain`` between the request
    #: broadcast and the channel flush); see :meth:`_emit_phases`.
    wave_phase_milestones: Tuple[Tuple[str, str], ...] = (
        ("markers", "enter"),
        ("flush", "flushed"),
        ("stream", "stored"),
    )

    def __init__(
        self,
        job: "MPIJob",
        server_map: Dict[int, CheckpointServer],
        period: float,
        stats: Optional[FTStats] = None,
        local_images: Optional[LocalImageStore] = None,
        start_wave: int = 1,
        fork_latency: float = FORK_LATENCY,
        replica_map: Optional[Dict[int, List[CheckpointServer]]] = None,
    ) -> None:
        if period <= 0:
            raise ValueError("checkpoint period must be positive")
        self.job = job
        self.sim = job.sim
        self.server_map = server_map
        #: rank -> ordered replica servers; defaults to the unreplicated
        #: layout (each rank's single assigned server)
        self.replica_map: Dict[int, List[CheckpointServer]] = (
            replica_map if replica_map is not None
            else {rank: [server] for rank, server in server_map.items()}
        )
        self.period = period
        self.stats = stats if stats is not None else FTStats()
        self.local_images = local_images if local_images is not None else LocalImageStore()
        self.start_wave = start_wave
        self.fork_latency = fork_latency
        self.endpoints: List[BaseEndpoint] = []
        self.detached = False
        self._connections: List["Connection"] = []
        self._driver: Optional["Process"] = None
        self._wave_trigger: Optional["Event"] = None
        # Wave-in-progress bookkeeping shared by both drivers; the pending
        # ``_wave_committed`` event is what detach() inspects to tell an
        # aborted wave from a quiescent protocol.
        self._current_wave = 0
        self._wave_started_at = 0.0
        self._wave_committed: Optional["Event"] = None
        #: phase -> latest sim time any rank hit that milestone this wave
        #: (see :meth:`note_phase`); reset by :meth:`_begin_wave`
        self._phase_marks: Dict[str, float] = {}

    # ------------------------------------------------------- proactive waves
    def request_wave(self) -> None:
        """Trigger the next checkpoint wave immediately (conclusion of the
        paper: components observing a rising failure probability — e.g. a
        CPU temperature probe — should start a wave without waiting for the
        timer).  No-op while a wave is already in progress."""
        trigger = self._wave_trigger
        if trigger is not None and not trigger.triggered:
            trigger.succeed()
            self.sim.trace.record(self.sim.now, "ft.wave_requested",
                                  protocol=self.protocol_name)

    def _arm_timer(self):
        """Event for the driver: the period timeout or an early trigger."""
        self._wave_trigger = self.sim.event(name=f"{self.protocol_name}:trigger")
        return self.sim.any_of([self.sim.timeout(self.period),
                                self._wave_trigger])

    @property
    def servers(self) -> List[CheckpointServer]:
        seen: List[CheckpointServer] = []
        for replicas in self.replica_map.values():
            for server in replicas:
                if server not in seen:
                    seen.append(server)
        for server in self.server_map.values():
            if server not in seen:
                seen.append(server)
        return seen

    def install(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def detach(self) -> None:
        """Stop drivers and endpoint helpers; break protocol connections.

        Called when the job dies (failure) or completes.  Checkpoint servers
        and the stats object survive for the next incarnation.
        """
        if self.detached:
            return
        self.detached = True
        if self._wave_committed is not None and not self._wave_committed.triggered:
            # A wave was in flight when the job died or completed: it will
            # never commit.  Recording the abort closes the liveness ledger
            # (every ft.wave_started is matched by ft.wave_completed or
            # ft.wave_aborted — the wave-liveness monitor checks this).
            self.sim.trace.record(
                self.sim.now, "ft.wave_aborted",
                wave=self._current_wave, protocol=self.protocol_name,
            )
            self._wave_committed = None
        if self._driver is not None:
            self._driver.interrupt("protocol detached")
        for endpoint in self.endpoints:
            endpoint.detach()
        for channel in self.job.channels:
            if channel.protocol in self.endpoints:
                channel.protocol = None
        for connection in self._connections:
            connection.break_()
        self._connections.clear()

    def _begin_wave(self, wave: int) -> "Event":
        """Shared wave-start bookkeeping for both drivers.

        Sets the in-progress state, clears the phase marks, creates the
        commit event and emits ``ft.wave_started``; returns the commit
        event for the driver to await.
        """
        self._current_wave = wave
        self._wave_started_at = self.sim.now
        self._phase_marks = {}
        self._wave_committed = self.sim.event(
            name=f"{self.protocol_name}:wave{wave}")
        self.sim.trace.record(self.sim.now, "ft.wave_started",
                              wave=wave, protocol=self.protocol_name)
        return self._wave_committed

    def note_phase(self, phase: str, wave: int) -> None:
        """Record that a rank reached a per-wave milestone *now*.

        Milestones are ``enter`` (local checkpoint / wave entry),
        ``drained`` (dcl: the initiator observed counter quiescence),
        ``flushed`` (pcl: all markers held, channels flushed; dcl: the
        checkpoint order arrived; vcl: logging window closed) and
        ``stored`` (image upload acknowledged).  The
        *last* rank to reach each milestone defines the wave-global phase
        boundary, so later calls simply overwrite.  One dict store per
        milestone per rank — cheap enough to run unconditionally.
        """
        if wave == self._current_wave:
            self._phase_marks[phase] = self.sim.now

    def _record_wave(self, wave: int, started_at: float) -> None:
        self.stats.waves_completed += 1
        self.stats.wave_records.append((wave, started_at, self.sim.now))
        self.sim.trace.record(
            self.sim.now, "ft.wave_completed", wave=wave,
            duration=self.sim.now - started_at, protocol=self.protocol_name,
        )
        self._emit_phases(wave, started_at)

    def _emit_phases(self, wave: int, started_at: float) -> None:
        """Tile the committed wave into its phases and publish them.

        The raw milestone marks (one per :attr:`wave_phase_milestones`
        entry) are clamped monotone into ``[started_at, now]``, which makes
        the phase intervals tile the wave exactly by construction:

        * ``markers`` — wave start until the last rank entered the wave,
        * ``drain``   — (Dcl only) until the initiator observed counter
          quiescence: every committed send was received, network empty,
        * ``flush``   — until the last rank's channels were flushed (pcl/
          dcl: the local snapshot) or logging window closed (vcl): the
          blocking protocols' stall lives here,
        * ``stream``  — until the last image upload was acknowledged,
        * ``commit``  — log shipping (vcl), done/ack collection and the
          server commit quorum.

        Emitted as ``ft.wave_phase`` trace records (timeline slices) and as
        ``ft.wave_phase_seconds`` histograms (snapshot aggregation); with
        neither a live category nor a registry this returns after two
        checks.
        """
        trace = self.sim.trace
        metrics = self.sim.metrics
        wants = trace.wants("ft.wave_phase")
        if not wants and metrics is None:
            return
        end = self.sim.now
        marks = self._phase_marks
        spans = []
        prev = started_at
        for phase, milestone in self.wave_phase_milestones:
            at = min(max(marks.get(milestone, prev), prev), end)
            spans.append((phase, prev, at))
            prev = at
        spans.append(("commit", prev, end))
        for phase, t0, t1 in spans:
            if wants:
                trace.record(end, "ft.wave_phase", wave=wave, phase=phase,
                             start=t0, end=t1, duration=t1 - t0,
                             protocol=self.protocol_name)
            if metrics is not None:
                metrics.observe("ft.wave_phase_seconds", t1 - t0,
                                protocol=self.protocol_name, phase=phase)

    def _commit_servers(self, wave: int) -> None:
        for server in self.servers:
            if server.node.alive:
                server.commit(wave)
