"""Checkpoint images and cost constants.

The paper uses system-level checkpointing (BLCR by default): the image is the
whole process — memory map, kernel state, registers — so its size is directly
proportional to the memory allocated, and "few optimizations can be used to
reduce this size" (Sec. 4.1).  Taking the image starts with a ``fork``: the
clone writes the image while the original continues computing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.mpi.context import Snapshot
from repro.mpi.message import AppPacket

__all__ = ["CheckpointImage", "FORK_LATENCY", "RUNTIME_IMAGE_OVERHEAD_BYTES"]

#: pause caused by fork() + copy-on-write page-table duplication (tens of
#: milliseconds for a tens-of-MB image); charged to the application's
#: compute via RankContext.add_stall — this is the "delay induced by the
#: checkpoint corresponds only to the local checkpointing" of Sec. 2
FORK_LATENCY = 0.02

#: image bytes beyond the application data: code, libraries, runtime buffers
RUNTIME_IMAGE_OVERHEAD_BYTES = 24e6


@dataclass
class CheckpointImage:
    """One rank's stored checkpoint for one wave."""

    rank: int
    wave: int
    nbytes: float
    snapshot: Snapshot
    #: Vcl only: in-transit messages logged for this rank during the wave,
    #: replayed by the daemon at restart
    logged_messages: List[AppPacket] = field(default_factory=list)
    logged_bytes: float = 0.0
    #: simulated time at which the image was fully stored
    stored_at: Optional[float] = None
    #: integrity checksum over the record's restore-relevant fields; set when
    #: the storing server seals the record (BLCR images carry a CRC trailer)
    checksum: Optional[int] = None
    #: a sealed record is complete — image received in full, logs (if any)
    #: attached — and eligible for commit; unsealed records are partial
    sealed: bool = False

    @property
    def total_bytes(self) -> float:
        return self.nbytes + self.logged_bytes

    # ---------------------------------------------------------------- integrity
    def compute_checksum(self) -> int:
        """CRC over the restore-relevant fields.

        The simulation carries no real payload bytes, so the checksum covers
        the metadata that determines what a restore would reconstruct: rank,
        wave, image size, and the attached log (byte count and message count).
        A corrupted replica is modelled by flipping the *stored* checksum, so
        verification fails exactly as a payload CRC mismatch would.
        """
        tag = (f"{self.rank}:{self.wave}:{self.nbytes!r}:"
               f"{self.logged_bytes!r}:{len(self.logged_messages)}")
        return zlib.crc32(tag.encode("ascii"))

    def seal(self) -> None:
        """Mark the record complete and freeze its checksum."""
        self.checksum = self.compute_checksum()
        self.sealed = True

    def verify(self) -> bool:
        """True when the record is sealed and its checksum still matches."""
        return self.sealed and self.checksum == self.compute_checksum()

    def corrupt(self) -> None:
        """Damage the stored record in place (chaos injection).

        The record stays sealed — corruption is silent until a restore
        verifies the checksum, exactly like latent media corruption.
        """
        base = self.compute_checksum()
        self.checksum = base ^ 0xFFFFFFFF

    def replica(self) -> "CheckpointImage":
        """An independent stored copy for one server.

        Each server must hold its own record so per-replica state
        (``stored_at``, ``sealed``, corruption) never leaks across servers
        or back into the sender's in-memory image.  The snapshot object is
        shared — it is immutable application state.
        """
        return CheckpointImage(
            rank=self.rank,
            wave=self.wave,
            nbytes=self.nbytes,
            snapshot=self.snapshot,
            logged_messages=list(self.logged_messages),
            logged_bytes=self.logged_bytes,
            stored_at=self.stored_at,
            checksum=self.checksum,
            sealed=self.sealed,
        )
