"""Checkpoint images and cost constants.

The paper uses system-level checkpointing (BLCR by default): the image is the
whole process — memory map, kernel state, registers — so its size is directly
proportional to the memory allocated, and "few optimizations can be used to
reduce this size" (Sec. 4.1).  Taking the image starts with a ``fork``: the
clone writes the image while the original continues computing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.mpi.context import Snapshot
from repro.mpi.message import AppPacket

__all__ = ["CheckpointImage", "FORK_LATENCY", "RUNTIME_IMAGE_OVERHEAD_BYTES"]

#: pause caused by fork() + copy-on-write page-table duplication (tens of
#: milliseconds for a tens-of-MB image); charged to the application's
#: compute via RankContext.add_stall — this is the "delay induced by the
#: checkpoint corresponds only to the local checkpointing" of Sec. 2
FORK_LATENCY = 0.02

#: image bytes beyond the application data: code, libraries, runtime buffers
RUNTIME_IMAGE_OVERHEAD_BYTES = 24e6


@dataclass
class CheckpointImage:
    """One rank's stored checkpoint for one wave."""

    rank: int
    wave: int
    nbytes: float
    snapshot: Snapshot
    #: Vcl only: in-transit messages logged for this rank during the wave,
    #: replayed by the daemon at restart
    logged_messages: List[AppPacket] = field(default_factory=list)
    logged_bytes: float = 0.0
    #: simulated time at which the image was fully stored
    stored_at: Optional[float] = None

    @property
    def total_bytes(self) -> float:
        return self.nbytes + self.logged_bytes
