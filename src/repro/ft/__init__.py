"""Fault tolerance: the paper's two coordinated checkpointing protocols.

* :class:`~repro.ft.vcl.VclProtocol` — non-blocking Chandy–Lamport snapshots
  with daemon-side message logging (MPICH-Vcl, Sec. 3/4.1).
* :class:`~repro.ft.pcl.PclProtocol` — blocking channel-flushing checkpoints
  (MPICH2-Pcl, Sec. 3/4.2).
* :class:`~repro.ft.dcl.DclProtocol` — coordinated message-drain checkpoints
  driven by send/receive counter quiescence (the topological-sort / CVC
  idiom; no logging, no delayed receives).
* :class:`~repro.ft.server.CheckpointServer` — shared image storage machinery
  with per-image checksums, K-way replica assignment and quorum-aware commit.
* :class:`~repro.ft.recovery.FTRun` — kill / rollback / restart orchestration,
  replica-aware fetch retry/backoff (:class:`~repro.ft.recovery.FetchPolicy`)
  and graceful degradation
  (:class:`~repro.ft.recovery.StorageUnrecoverableError`).
* :class:`~repro.ft.failure.FailureInjector` — task, node and checkpoint-server
  failures plus silent image corruption.
"""

from repro.ft.dcl import DclEndpoint, DclProtocol, DRAIN_BUDGET
from repro.ft.failure import FailureInjector
from repro.ft.image import CheckpointImage, FORK_LATENCY, RUNTIME_IMAGE_OVERHEAD_BYTES
from repro.ft.pcl import PclEndpoint, PclProtocol
from repro.ft.protocol import (
    BaseEndpoint,
    BaseProtocol,
    FTStats,
    LocalImageStore,
    SCHEDULER_ID,
)
from repro.ft.recovery import (
    FetchPolicy,
    FTRun,
    InstantLauncher,
    StorageUnrecoverableError,
)
from repro.ft.server import CheckpointServer, assign_replicas, assign_servers
from repro.ft.vcl import VclEndpoint, VclProtocol

__all__ = [
    "BaseEndpoint",
    "BaseProtocol",
    "CheckpointImage",
    "CheckpointServer",
    "DclEndpoint",
    "DclProtocol",
    "DRAIN_BUDGET",
    "FailureInjector",
    "FetchPolicy",
    "FORK_LATENCY",
    "FTRun",
    "FTStats",
    "InstantLauncher",
    "LocalImageStore",
    "PclEndpoint",
    "PclProtocol",
    "RUNTIME_IMAGE_OVERHEAD_BYTES",
    "SCHEDULER_ID",
    "StorageUnrecoverableError",
    "VclEndpoint",
    "VclProtocol",
    "assign_replicas",
    "assign_servers",
]
